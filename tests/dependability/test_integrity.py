"""Integrity as refinement: the photo-editing analysis (paper Sec. 5)."""

import pytest

from repro.constraints import FunctionConstraint, variable
from repro.dependability import (
    assume_unreliable,
    dependably_safe,
    integrate,
    interface_of,
    locally_refines,
)

SIZES = (256, 512, 1024, 2048, 4096)


@pytest.fixture
def photo(boolean):
    outcomp = variable("outcomp", SIZES)
    incomp = variable("incomp", SIZES)
    redbyte = variable("redbyte", SIZES)
    bwbyte = variable("bwbyte", SIZES)
    return {
        "vars": (outcomp, incomp, redbyte, bwbyte),
        "memory": FunctionConstraint(
            boolean, (incomp, outcomp), lambda i, o: i <= o, name="Memory"
        ),
        "red": FunctionConstraint(
            boolean, (redbyte, bwbyte), lambda r, b: r <= b, name="RedFilter"
        ),
        "bw": FunctionConstraint(
            boolean, (bwbyte, outcomp), lambda b, o: b <= o, name="BWFilter"
        ),
        "comp": FunctionConstraint(
            boolean, (incomp, redbyte), lambda i, r: i <= r, name="Compression"
        ),
    }


class TestCrispRefinement:
    def test_imp1_refines_memory(self, photo):
        imp1 = integrate([photo["red"], photo["bw"], photo["comp"]])
        report = locally_refines(imp1, photo["memory"], ["incomp", "outcomp"])
        assert report.holds
        assert report.witnesses == []
        assert bool(report) is True

    def test_imp2_does_not_refine_memory(self, photo, boolean):
        imp2 = integrate(
            [assume_unreliable(photo["red"]), photo["bw"], photo["comp"]],
            semiring=boolean,
        )
        report = locally_refines(imp2, photo["memory"], ["incomp", "outcomp"])
        assert not report.holds
        assert report.witnesses
        witness = report.witnesses[0]
        # every counterexample grows the image
        assert witness["incomp"] > witness["outcomp"]

    def test_witness_count_capped(self, photo, boolean):
        imp2 = integrate(
            [assume_unreliable(photo["red"]), photo["bw"], photo["comp"]],
            semiring=boolean,
        )
        report = locally_refines(
            imp2, photo["memory"], ["incomp", "outcomp"], max_witnesses=2
        )
        assert len(report.witnesses) == 2

    def test_dependably_safe_is_interface_refinement(self, photo):
        imp1 = integrate([photo["red"], photo["bw"], photo["comp"]])
        assert dependably_safe(
            imp1, photo["memory"], ["incomp", "outcomp"]
        ).holds

    def test_refinement_reflexive(self, photo):
        assert locally_refines(
            photo["memory"], photo["memory"], ["incomp", "outcomp"]
        ).holds

    def test_checked_assignment_count(self, photo):
        imp1 = integrate([photo["red"], photo["bw"], photo["comp"]])
        report = locally_refines(imp1, photo["memory"], ["incomp", "outcomp"])
        assert report.checked_assignments == len(SIZES) ** 2

    def test_interface_accepts_variable_objects(self, photo):
        outcomp, incomp, _, _ = photo["vars"]
        imp1 = integrate([photo["red"], photo["bw"], photo["comp"]])
        assert locally_refines(imp1, photo["memory"], [incomp, outcomp]).holds


class TestUnreliableAssumption:
    def test_assume_unreliable_is_top(self, photo, boolean):
        top = assume_unreliable(photo["red"])
        assert top.scope == ()
        assert top({}) is True

    def test_quantitative_variant(self, probabilistic):
        x = variable("x", (0, 1))
        module = FunctionConstraint(probabilistic, (x,), lambda v: 0.9)
        top = assume_unreliable(module)
        assert top({}) == 1.0
        assert top.semiring is module.semiring or (
            top.semiring == module.semiring
        )


class TestFuzzyRefinement:
    def test_soft_refinement_degrees(self, fuzzy):
        """Refinement generalizes: a fuzzy implementation refines a fuzzy
        requirement iff pointwise ≤ after projection."""
        x = variable("x", (0, 1, 2))
        y = variable("y", (0, 1))
        implementation = FunctionConstraint(
            fuzzy, (x, y), lambda a, b: 0.4 if b else 0.2
        )
        requirement = FunctionConstraint(fuzzy, (x,), lambda a: 0.5)
        assert locally_refines(implementation, requirement, ["x"]).holds
        stricter = FunctionConstraint(fuzzy, (x,), lambda a: 0.3)
        assert not locally_refines(implementation, stricter, ["x"]).holds


class TestInterfaceOf:
    def test_hides_internal_variables(self, photo):
        imp1 = integrate([photo["red"], photo["bw"], photo["comp"]])
        external = interface_of(imp1, ["redbyte", "bwbyte"])
        assert set(external.support) == {"incomp", "outcomp"}

    def test_interface_is_projection(self, photo):
        imp1 = integrate([photo["red"], photo["bw"], photo["comp"]])
        from repro.constraints import constraints_equal

        assert constraints_equal(
            interface_of(imp1, ["redbyte", "bwbyte"]),
            imp1.project(["incomp", "outcomp"]),
        )


class TestIntegrate:
    def test_empty_integration_needs_semiring(self, boolean):
        with pytest.raises(ValueError):
            integrate([])
        top = integrate([], semiring=boolean)
        assert top({}) is True


class TestStoreAsImplementation:
    """A broker session's store *is* an implementation: refinement routes
    its interface view through ``ConstraintStore.project``."""

    @pytest.mark.parametrize("backend", ["monolith", "factored"])
    def test_store_refines_like_its_combination(self, photo, backend):
        from repro.constraints import empty_store

        store = empty_store(photo["memory"].semiring, backend=backend)
        for module in ("red", "bw", "comp"):
            store = store.tell(photo[module])
        report = locally_refines(store, photo["memory"], ["incomp", "outcomp"])
        assert report.holds
        assert report.checked_assignments == len(SIZES) ** 2

    @pytest.mark.parametrize("backend", ["monolith", "factored"])
    def test_unreliable_module_breaks_store_refinement(
        self, photo, boolean, backend
    ):
        from repro.constraints import empty_store

        store = empty_store(boolean, backend=backend)
        for module in (
            assume_unreliable(photo["red"]),
            photo["bw"],
            photo["comp"],
        ):
            store = store.tell(module)
        report = dependably_safe(store, photo["memory"], ["incomp", "outcomp"])
        assert not report.holds
        assert report.witnesses
