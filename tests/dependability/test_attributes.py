"""The dependability attribute taxonomy (Avizienis et al.)."""

import pytest

from repro.dependability import (
    SECURITY_COMPOSITE,
    TAXONOMY,
    attribute,
    is_security_attribute,
)


class TestTaxonomy:
    def test_six_attributes(self):
        assert set(TAXONOMY) == {
            "availability",
            "reliability",
            "safety",
            "confidentiality",
            "integrity",
            "maintainability",
        }

    def test_quantifiable_flags(self):
        assert attribute("availability").quantifiable
        assert attribute("reliability").quantifiable
        assert not attribute("safety").quantifiable
        assert not attribute("confidentiality").quantifiable

    def test_lookup_error_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            attribute("karma")

    def test_default_semirings(self):
        assert attribute("availability").semiring().name == "Probabilistic"
        assert attribute("integrity").semiring().name == "Classical"
        assert attribute("maintainability").semiring().name == "Weighted"
        assert (
            attribute("confidentiality")
            .semiring(universe={"a"})
            .name
            == "SetBased"
        )


class TestSecurityComposite:
    def test_composite_members(self):
        assert SECURITY_COMPOSITE == {
            "confidentiality",
            "integrity",
            "availability",
        }

    def test_predicate(self):
        assert is_security_attribute("integrity")
        assert not is_security_attribute("maintainability")
