"""Classical dependability arithmetic and its semiring cross-checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependability import (
    MetricError,
    ObservationWindow,
    availability_from_mtbf,
    compose_series_parallel,
    downtime_hours_per_year,
    failure_rate_from_reliability,
    k_out_of_n_reliability,
    mission_reliability,
    parallel_reliability,
    series_reliability,
    wilson_lower_bound,
)
from repro.semirings import ProbabilisticSemiring


class TestAvailability:
    def test_mtbf_formula(self):
        assert availability_from_mtbf(99.0, 1.0) == pytest.approx(0.99)

    def test_zero_mttr_is_perfect(self):
        assert availability_from_mtbf(10.0, 0.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(MetricError):
            availability_from_mtbf(0.0, 1.0)
        with pytest.raises(MetricError):
            availability_from_mtbf(10.0, -1.0)

    def test_downtime_of_five_nines(self):
        downtime = downtime_hours_per_year(0.99999)
        assert downtime == pytest.approx(0.0876, rel=1e-3)

    def test_downtime_rejects_non_probability(self):
        with pytest.raises(MetricError):
            downtime_hours_per_year(1.5)


class TestMissionReliability:
    def test_exponential_model(self):
        assert mission_reliability(0.001, 1000) == pytest.approx(
            math.exp(-1.0)
        )

    def test_zero_rate_is_certain(self):
        assert mission_reliability(0.0, 1e6) == 1.0

    def test_inversion_roundtrip(self):
        rate = failure_rate_from_reliability(0.9, 100.0)
        assert mission_reliability(rate, 100.0) == pytest.approx(0.9)

    def test_invalid_inputs(self):
        with pytest.raises(MetricError):
            mission_reliability(-0.1, 10)
        with pytest.raises(MetricError):
            failure_rate_from_reliability(0.0, 10)
        with pytest.raises(MetricError):
            failure_rate_from_reliability(0.9, 0)


class TestBlockDiagrams:
    def test_series(self):
        assert series_reliability([0.9, 0.9]) == pytest.approx(0.81)

    def test_parallel(self):
        assert parallel_reliability([0.9, 0.9]) == pytest.approx(0.99)

    def test_parallel_beats_series(self):
        rs = [0.8, 0.95, 0.7]
        assert parallel_reliability(rs) > series_reliability(rs)

    def test_series_matches_probabilistic_semiring(self):
        semiring = ProbabilisticSemiring()
        rs = [0.99, 0.98, 0.9]
        assert series_reliability(rs) == pytest.approx(semiring.prod(rs))

    def test_k_out_of_n(self):
        # 2-of-3 with r=0.9: 3·0.81·0.1 + 0.729 = 0.972
        assert k_out_of_n_reliability(0.9, 2, 3) == pytest.approx(0.972)

    def test_n_out_of_n_is_series(self):
        assert k_out_of_n_reliability(0.9, 3, 3) == pytest.approx(
            series_reliability([0.9] * 3)
        )

    def test_1_out_of_n_is_parallel(self):
        assert k_out_of_n_reliability(0.9, 1, 3) == pytest.approx(
            parallel_reliability([0.9] * 3)
        )

    def test_series_parallel_composition(self):
        result = compose_series_parallel([[0.9, 0.9], [0.8]])
        assert result == pytest.approx(0.99 * 0.8)

    def test_probability_validation(self):
        with pytest.raises(MetricError):
            series_reliability([1.1])
        with pytest.raises(MetricError):
            k_out_of_n_reliability(0.9, 0, 3)


class TestObservationWindow:
    def test_reliability_estimate(self):
        window = ObservationWindow(attempts=100, failures=5)
        assert window.reliability == pytest.approx(0.95)

    def test_availability_estimate(self):
        window = ObservationWindow(
            attempts=0,
            failures=0,
            total_uptime_hours=99.0,
            total_repair_hours=1.0,
        )
        assert window.availability == pytest.approx(0.99)

    def test_empty_window_optimistic(self):
        window = ObservationWindow(attempts=0, failures=0)
        assert window.reliability == 1.0
        assert window.availability == 1.0

    def test_validation(self):
        with pytest.raises(MetricError):
            ObservationWindow(attempts=5, failures=10)
        with pytest.raises(MetricError):
            ObservationWindow(attempts=-1, failures=0)


class TestWilson:
    def test_lower_bound_below_point_estimate(self):
        assert wilson_lower_bound(95, 100) < 0.95

    def test_more_samples_tighter(self):
        small = wilson_lower_bound(9, 10)
        large = wilson_lower_bound(900, 1000)
        assert large > small

    def test_no_samples_is_zero(self):
        assert wilson_lower_bound(0, 0) == 0.0

    def test_validation(self):
        with pytest.raises(MetricError):
            wilson_lower_bound(5, 3)

    @settings(max_examples=50)
    @given(st.integers(0, 500), st.integers(0, 500))
    def test_always_a_probability(self, successes, attempts):
        if successes > attempts:
            successes, attempts = attempts, successes
        bound = wilson_lower_bound(successes, attempts)
        assert 0.0 <= bound <= 1.0
        if attempts:
            assert bound <= successes / attempts + 1e-9
