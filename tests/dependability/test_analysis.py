"""Quantitative reliability analysis (paper Sec. 5, probabilistic part)."""

import pytest

from repro.constraints import FunctionConstraint, variable
from repro.dependability import (
    best_implementation,
    compression_reliability,
    meets_requirement,
    system_reliability,
)

SIZES = (512, 1024, 2048, 4096, 8192)


@pytest.fixture
def io_vars():
    return variable("outcomp", SIZES), variable("bwbyte", SIZES)


class TestCompressionReliability:
    def test_paper_spot_value(self, io_vars):
        c1 = compression_reliability(*io_vars)
        assert c1({"outcomp": 4096, "bwbyte": 1024}) == pytest.approx(0.96)

    def test_fully_reliable_below_1mb(self, io_vars):
        c1 = compression_reliability(*io_vars)
        assert c1({"outcomp": 512, "bwbyte": 512}) == 1.0
        assert c1({"outcomp": 1024, "bwbyte": 512}) == 1.0

    def test_broken_above_4mb(self, io_vars):
        c1 = compression_reliability(*io_vars)
        assert c1({"outcomp": 8192, "bwbyte": 1024}) == 0.0

    def test_more_compression_less_reliability(self, io_vars):
        c1 = compression_reliability(*io_vars)
        aggressive = c1({"outcomp": 4096, "bwbyte": 512})
        gentle = c1({"outcomp": 4096, "bwbyte": 2048})
        assert aggressive < gentle

    def test_clamped_to_unit_interval(self, io_vars):
        c1 = compression_reliability(*io_vars)
        for o in SIZES:
            for b in SIZES:
                value = c1({"outcomp": o, "bwbyte": b})
                assert 0.0 <= value <= 1.0


class TestSystemReliability:
    def test_composition_is_product(self, probabilistic, io_vars):
        outcomp, bwbyte = io_vars
        c1 = FunctionConstraint(probabilistic, (outcomp,), lambda o: 0.9)
        c2 = FunctionConstraint(probabilistic, (bwbyte,), lambda b: 0.8)
        system = system_reliability([c1, c2])
        assert system({"outcomp": 512, "bwbyte": 512}) == pytest.approx(0.72)

    def test_needs_modules(self):
        with pytest.raises(ValueError):
            system_reliability([])

    def test_matches_block_diagram_series(self, probabilistic, io_vars):
        from repro.dependability import series_reliability

        outcomp, _ = io_vars
        levels = (0.99, 0.95, 0.9)
        modules = [
            FunctionConstraint(probabilistic, (outcomp,), lambda o, r=r: r)
            for r in levels
        ]
        system = system_reliability(modules)
        assert system({"outcomp": 512}) == pytest.approx(
            series_reliability(levels)
        )


class TestRequirementCheck:
    def test_requirement_entailed(self, probabilistic, io_vars):
        outcomp, _ = io_vars
        implementation = FunctionConstraint(
            probabilistic, (outcomp,), lambda o: 0.9
        )
        requirement = FunctionConstraint(
            probabilistic, (outcomp,), lambda o: 0.8
        )
        assert meets_requirement(requirement, implementation)
        assert not meets_requirement(implementation, requirement)


class TestRanking:
    @pytest.fixture
    def candidates(self, probabilistic, io_vars):
        outcomp, _ = io_vars
        return {
            name: FunctionConstraint(
                probabilistic, (outcomp,), lambda o, r=r: r
            )
            for name, r in (
                ("premium", 0.999),
                ("standard", 0.95),
                ("budget", 0.7),
            )
        }

    def test_ranked_best_first(self, candidates):
        ranking = best_implementation(candidates)
        assert [name for name, _ in ranking.ranked] == [
            "premium",
            "standard",
            "budget",
        ]
        assert ranking.best == ("premium", pytest.approx(0.999))

    def test_requirement_filters_candidates(self, candidates, probabilistic, io_vars):
        outcomp, _ = io_vars
        requirement = FunctionConstraint(
            probabilistic, (outcomp,), lambda o: 0.9
        )
        ranking = best_implementation(candidates, requirement)
        assert [name for name, _ in ranking.ranked] == ["premium", "standard"]

    def test_all_filtered_raises(self, candidates, probabilistic, io_vars):
        outcomp, _ = io_vars
        impossible = FunctionConstraint(
            probabilistic, (outcomp,), lambda o: 1.0
        )
        with pytest.raises(ValueError, match="no candidate"):
            best_implementation(candidates, impossible)

    def test_level_of(self, candidates):
        ranking = best_implementation(candidates)
        assert ranking.level_of("budget") == pytest.approx(0.7)
        with pytest.raises(KeyError):
            ranking.level_of("ghost")

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            best_implementation({})
