"""Semiring axioms, validated instance by instance (paper Sec. 2)."""

import pytest

from repro.semirings import (
    check_division_laws,
    check_invertibility,
    check_lub_law,
    check_order_laws,
    check_plus_laws,
    check_times_laws,
    validate_semiring,
)


class TestAllLaws:
    def test_every_instance_passes_all_laws(self, any_semiring):
        report = validate_semiring(any_semiring)
        assert report.ok, str(report)

    def test_validate_raises_on_demand(self, any_semiring):
        # A well-formed semiring must not raise.
        validate_semiring(any_semiring, raise_on_error=True)

    def test_plus_laws(self, any_semiring):
        assert check_plus_laws(any_semiring) == []

    def test_times_laws(self, any_semiring):
        assert check_times_laws(any_semiring) == []

    def test_order_laws(self, any_semiring):
        assert check_order_laws(any_semiring) == []

    def test_lub_law(self, any_semiring):
        assert check_lub_law(any_semiring) == []

    def test_division_residuation(self, any_semiring):
        assert check_division_laws(any_semiring) == []

    def test_invertibility_by_residuation(self, any_semiring):
        assert check_invertibility(any_semiring) == []


class TestBrokenSemiringDetection:
    """The validators must actually catch broken algebra, not just pass."""

    def test_wrong_unit_detected(self):
        from repro.semirings import FuzzySemiring

        class BrokenFuzzy(FuzzySemiring):
            name = "BrokenFuzzy"

            @property
            def one(self):
                return 0.5  # not the absorbing element of +

        report = validate_semiring(BrokenFuzzy())
        assert not report.ok
        laws = {violation.law for violation in report.violations}
        assert any("one" in law or "maximum" in law for law in laws)

    def test_non_monotone_division_detected(self):
        from repro.semirings import FuzzySemiring

        class BrokenDivision(FuzzySemiring):
            name = "BrokenDivision"

            def divide(self, a, b):
                return 0.0  # never maximal

        report = validate_semiring(BrokenDivision())
        assert not report.ok
        assert any(
            "division" in violation.law or "invertibility" in violation.law
            for violation in report.violations
        )

    def test_validate_raise_on_error_raises(self):
        from repro.semirings import FuzzySemiring

        class Broken(FuzzySemiring):
            def times(self, a, b):
                return max(a, b)  # breaks absorptiveness (a×b ≤ a)

        with pytest.raises(ValueError):
            validate_semiring(Broken(), raise_on_error=True)


class TestDerivedStructure:
    def test_zero_is_minimum_one_is_maximum(self, any_semiring):
        for element in any_semiring.sample_elements():
            assert any_semiring.leq(any_semiring.zero, element)
            assert any_semiring.leq(element, any_semiring.one)

    def test_sum_of_empty_is_zero(self, any_semiring):
        assert any_semiring.sum([]) == any_semiring.zero

    def test_prod_of_empty_is_one(self, any_semiring):
        assert any_semiring.prod([]) == any_semiring.one

    def test_prod_short_circuits_on_zero(self, any_semiring):
        calls = []

        def generator():
            yield any_semiring.zero
            calls.append("should not be reached")
            yield any_semiring.one

        result = any_semiring.prod(generator())
        assert result == any_semiring.zero
        assert calls == []

    def test_lub_is_plus(self, any_semiring):
        samples = any_semiring.sample_elements()
        for a in samples:
            for b in samples:
                assert any_semiring.lub(a, b) == any_semiring.plus(a, b)

    def test_max_elements_totally_ordered_is_singleton(self, total_semiring):
        samples = list(total_semiring.sample_elements())
        frontier = total_semiring.max_elements(samples)
        assert len(frontier) == 1
        assert frontier[0] == total_semiring.sum(samples)

    def test_comparable_reflexive(self, any_semiring):
        for element in any_semiring.sample_elements():
            assert any_semiring.comparable(element, element)

    def test_strict_order_irreflexive(self, any_semiring):
        for element in any_semiring.sample_elements():
            assert not any_semiring.lt(element, element)

    def test_check_element_accepts_samples(self, any_semiring):
        for element in any_semiring.sample_elements():
            assert any_semiring.check_element(element) == element

    def test_check_element_rejects_garbage(self, any_semiring):
        from repro.semirings import SemiringError

        with pytest.raises(SemiringError):
            any_semiring.check_element(object())
