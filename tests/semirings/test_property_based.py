"""Property-based law checking over randomly drawn carrier elements.

The sampled validators in :mod:`repro.semirings.properties` use small
fixed samples; here hypothesis draws arbitrary carrier elements so the
laws are exercised across the whole carrier, including awkward floats.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)

FUZZY = FuzzySemiring()
PROB = ProbabilisticSemiring()
WEIGHTED = WeightedSemiring()
BOUNDED = BoundedWeightedSemiring(cap=100.0)
BOOL = BooleanSemiring()
SETS = SetSemiring({"a", "b", "c", "d"})
PRODUCT = ProductSemiring([WEIGHTED, FUZZY])

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
costs = st.one_of(
    st.just(math.inf),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
bounded_vals = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
bools = st.booleans()
subsets = st.frozensets(st.sampled_from(["a", "b", "c", "d"]))
pairs = st.tuples(costs, unit)

CASES = [
    (FUZZY, unit),
    (PROB, unit),
    (WEIGHTED, costs),
    (BOUNDED, bounded_vals),
    (BOOL, bools),
    (SETS, subsets),
    (PRODUCT, pairs),
]


def for_all_semirings(test_fn):
    """Apply a 3-element property across every (semiring, strategy) pair."""

    @settings(max_examples=60)
    @given(st.data())
    def wrapper(data):
        for semiring, strategy in CASES:
            a = data.draw(strategy)
            b = data.draw(strategy)
            c = data.draw(strategy)
            test_fn(semiring, a, b, c)

    wrapper.__name__ = test_fn.__name__
    return wrapper


@for_all_semirings
def test_plus_commutative(s, a, b, c):
    assert s.plus(a, b) == s.plus(b, a)


@for_all_semirings
def test_plus_idempotent(s, a, b, c):
    assert s.plus(a, a) == a


@for_all_semirings
def test_plus_unit_and_absorbing(s, a, b, c):
    assert s.plus(a, s.zero) == a
    assert s.plus(a, s.one) == s.one


@for_all_semirings
def test_times_commutative(s, a, b, c):
    assert s.equiv(s.times(a, b), s.times(b, a))


@for_all_semirings
def test_times_unit_and_absorbing(s, a, b, c):
    assert s.times(a, s.one) == a
    assert s.times(a, s.zero) == s.zero


@for_all_semirings
def test_absorptive_law(s, a, b, c):
    # a × b ≤S a — combining can only worsen (the B&B bound's soundness)
    assert s.leq(s.times(a, b), a)


@for_all_semirings
def test_order_is_partial_order(s, a, b, c):
    assert s.leq(a, a)
    if s.leq(a, b) and s.leq(b, a):
        assert a == b
    if s.leq(a, b) and s.leq(b, c):
        assert s.leq(a, c)


@for_all_semirings
def test_plus_is_lub(s, a, b, c):
    lub = s.plus(a, b)
    assert s.leq(a, lub) and s.leq(b, lub)
    if s.leq(a, c) and s.leq(b, c):
        assert s.leq(lub, c)


@for_all_semirings
def test_monotonicity(s, a, b, c):
    if s.leq(a, b):
        assert s.leq(s.plus(a, c), s.plus(b, c))
        assert s.leq(s.times(a, c), s.times(b, c))


def leq_up_to_equiv(s, x, y):
    """``x ≤S y`` with float tolerance applied per product component.

    A flat ``leq or equiv`` does not compose through products: one
    component may satisfy ``leq`` strictly while another is off by an
    ulp (``equiv`` only), failing both whole-tuple checks even though
    every component is fine.
    """
    if isinstance(s, ProductSemiring):
        return all(
            leq_up_to_equiv(comp, xi, yi)
            for comp, xi, yi in zip(s.components, x, y)
        )
    return s.leq(x, y) or s.equiv(x, y)


@for_all_semirings
def test_division_feasibility(s, a, b, c):
    # b × (a ÷ b) ≤ a (residuation, up to float tolerance via equiv)
    quotient = s.divide(a, b)
    combined = s.times(b, quotient)
    assert leq_up_to_equiv(s, combined, a)


@for_all_semirings
def test_division_by_one_is_identity(s, a, b, c):
    assert s.equiv(s.divide(a, s.one), a)


@for_all_semirings
def test_division_by_zero_is_one(s, a, b, c):
    # max{x | 0 × x ≤ a} = 1 for every a
    assert s.divide(a, s.zero) == s.one


@settings(max_examples=100)
@given(unit, unit)
def test_fuzzy_invertibility(a, b):
    if a <= b:
        assert FUZZY.times(b, FUZZY.divide(a, b)) == a


@settings(max_examples=100)
@given(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_weighted_invertibility(a, b):
    # a ≤S b numerically means a ≥ b; then b + (a − b) = a exactly when
    # the subtraction is representable — assert with tolerance.
    if a >= b:
        recovered = WEIGHTED.times(b, WEIGHTED.divide(a, b))
        assert math.isclose(recovered, a, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=100)
@given(subsets, subsets)
def test_set_invertibility(a, b):
    if a <= b:
        assert SETS.times(b, SETS.divide(a, b)) == a


@settings(max_examples=100)
@given(unit, unit)
def test_probabilistic_division_is_maximal(a, b):
    quotient = PROB.divide(a, b)
    # any strictly larger x must violate b·x ≤ a
    for bump in (1e-6, 1e-3, 0.1):
        x = quotient + bump
        if x <= 1.0:
            assert b * x > a or math.isclose(b * x, a, abs_tol=1e-9)


@settings(max_examples=60)
@given(pairs, pairs)
def test_product_order_is_componentwise(pa, pb):
    assert PRODUCT.leq(pa, pb) == (
        WEIGHTED.leq(pa[0], pb[0]) and FUZZY.leq(pa[1], pb[1])
    )
