"""Instance-specific behaviour of each shipped semiring."""


import pytest

from repro.semirings import (
    INFINITY,
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SemiringError,
    SetSemiring,
    WeightedSemiring,
)


class TestBoolean:
    def test_operations(self, boolean):
        assert boolean.plus(True, False) is True
        assert boolean.times(True, False) is False
        assert boolean.zero is False and boolean.one is True

    def test_division_is_implication(self, boolean):
        assert boolean.divide(False, True) is False
        assert boolean.divide(True, True) is True
        assert boolean.divide(False, False) is True
        assert boolean.divide(True, False) is True

    def test_order(self, boolean):
        assert boolean.leq(False, True)
        assert not boolean.leq(True, False)
        assert boolean.is_total_order()
        assert boolean.is_multiplicative_idempotent()

    def test_rejects_non_bool(self, boolean):
        assert not boolean.is_element(1)
        assert not boolean.is_element(0)


class TestFuzzy:
    def test_max_min(self, fuzzy):
        assert fuzzy.plus(0.3, 0.7) == 0.7
        assert fuzzy.times(0.3, 0.7) == 0.3

    def test_goedel_division(self, fuzzy):
        assert fuzzy.divide(0.7, 0.3) == 1.0  # b ≤ a
        assert fuzzy.divide(0.3, 0.7) == 0.3  # b > a

    def test_division_recovers_under_entailment(self, fuzzy):
        # a ≤ b ⇒ b × (a ÷ b) = a
        a, b = 0.4, 0.9
        assert fuzzy.times(b, fuzzy.divide(a, b)) == a

    def test_carrier_bounds(self, fuzzy):
        assert fuzzy.is_element(0.0) and fuzzy.is_element(1.0)
        assert not fuzzy.is_element(1.0001)
        assert not fuzzy.is_element(-0.1)
        assert not fuzzy.is_element(float("nan"))
        assert not fuzzy.is_element(True)

    def test_idempotent_times(self, fuzzy):
        assert fuzzy.is_multiplicative_idempotent()
        assert fuzzy.glb(0.3, 0.8) == 0.3


class TestProbabilistic:
    def test_max_product(self, probabilistic):
        assert probabilistic.plus(0.3, 0.7) == 0.7
        assert probabilistic.times(0.5, 0.5) == 0.25

    def test_goguen_division(self, probabilistic):
        assert probabilistic.divide(0.3, 0.6) == 0.5
        assert probabilistic.divide(0.6, 0.3) == 1.0
        assert probabilistic.divide(0.5, 0.0) == 1.0

    def test_division_feasible(self, probabilistic):
        for a in (0.0, 0.2, 0.9):
            for b in (0.0, 0.4, 1.0):
                q = probabilistic.divide(a, b)
                assert probabilistic.leq(probabilistic.times(b, q), a) or (
                    abs(b * q - a) < 1e-12
                )

    def test_equiv_tolerates_float_noise(self, probabilistic):
        assert probabilistic.equiv(0.1 + 0.2, 0.3)

    def test_not_idempotent(self, probabilistic):
        assert not probabilistic.is_multiplicative_idempotent()


class TestWeighted:
    def test_min_plus(self, weighted):
        assert weighted.plus(3.0, 5.0) == 3.0
        assert weighted.times(3.0, 5.0) == 8.0
        assert weighted.zero == INFINITY and weighted.one == 0.0

    def test_inverted_order(self, weighted):
        # smaller cost is better: 3 ≥S 5
        assert weighted.leq(5.0, 3.0)
        assert weighted.gt(3.0, 5.0)
        assert weighted.leq(INFINITY, 42.0)

    def test_truncated_subtraction_division(self, weighted):
        assert weighted.divide(8.0, 3.0) == 5.0
        assert weighted.divide(3.0, 8.0) == 0.0
        assert weighted.divide(INFINITY, 3.0) == INFINITY
        assert weighted.divide(3.0, INFINITY) == 0.0
        assert weighted.divide(INFINITY, INFINITY) == 0.0

    def test_division_recovers_entailed_cost(self, weighted):
        # paper Ex. 2: (3x+5) ÷ (x+3) = 2x+2 pointwise
        for x in range(10):
            sigma = 3 * x + 5
            c = x + 3
            assert weighted.times(c, weighted.divide(sigma, c)) == sigma

    def test_integral_variant(self):
        integral = WeightedSemiring(integral=True)
        assert integral.is_element(3)
        assert not integral.is_element(3.5)
        assert integral.is_element(INFINITY)
        assert integral != WeightedSemiring()

    def test_rejects_negative(self, weighted):
        assert not weighted.is_element(-1.0)


class TestBoundedWeighted:
    def test_saturating_addition(self, bounded):
        assert bounded.times(6.0, 7.0) == 10.0
        assert bounded.times(2.0, 3.0) == 5.0
        assert bounded.zero == 10.0

    def test_division_at_cap(self, bounded):
        # a = cap: smallest x with b + x ≥ cap is cap − b
        assert bounded.divide(10.0, 4.0) == 6.0
        assert bounded.times(4.0, bounded.divide(10.0, 4.0)) == 10.0

    def test_invalid_cap_rejected(self):
        with pytest.raises(SemiringError):
            BoundedWeightedSemiring(cap=0)
        with pytest.raises(SemiringError):
            BoundedWeightedSemiring(cap=-3)

    def test_carrier_respects_cap(self, bounded):
        assert bounded.is_element(10.0)
        assert not bounded.is_element(10.5)


class TestSetBased:
    def test_union_intersection(self, setbased):
        a = frozenset({"read"})
        b = frozenset({"read", "write"})
        assert setbased.plus(a, b) == b
        assert setbased.times(a, b) == a

    def test_partial_order(self, setbased):
        a = frozenset({"read"})
        b = frozenset({"write"})
        assert not setbased.comparable(a, b)
        assert not setbased.is_total_order()

    def test_heyting_division(self, setbased):
        a = frozenset({"read"})
        b = frozenset({"write"})
        quotient = setbased.divide(a, b)
        # largest x with b ∩ x ⊆ a
        assert setbased.leq(setbased.times(b, quotient), a)
        assert quotient == frozenset({"read", "exec"})

    def test_max_elements_is_antichain(self, setbased):
        values = [
            frozenset(),
            frozenset({"read"}),
            frozenset({"write"}),
            frozenset({"read", "write"}),
        ]
        frontier = setbased.max_elements(values)
        assert frontier == [frozenset({"read", "write"})]

    def test_empty_universe_rejected(self):
        with pytest.raises(SemiringError):
            SetSemiring([])

    def test_check_element_coerces_set(self, setbased):
        assert setbased.check_element({"read"}) == frozenset({"read"})
        with pytest.raises(SemiringError):
            setbased.check_element({"nope"})


class TestProduct:
    def test_componentwise(self, product):
        a = (3.0, 0.5)
        b = (5.0, 0.8)
        assert product.times(a, b) == (8.0, 0.5)
        assert product.plus(a, b) == (3.0, 0.8)

    def test_pareto_order(self, product):
        better = (2.0, 0.9)
        worse = (5.0, 0.3)
        tradeoff = (1.0, 0.1)
        assert product.leq(worse, better)
        assert not product.comparable(better, tradeoff)

    def test_max_elements_pareto_frontier(self, product):
        values = [(2.0, 0.9), (5.0, 0.3), (1.0, 0.1), (6.0, 0.2)]
        frontier = product.max_elements(values)
        assert (2.0, 0.9) in frontier
        assert (1.0, 0.1) in frontier
        assert (5.0, 0.3) not in frontier  # dominated by (2.0, 0.9)

    def test_arity_enforced(self, product):
        assert not product.is_element((1.0,))
        assert not product.is_element((1.0, 0.5, 3.0))

    def test_empty_product_rejected(self):
        with pytest.raises(SemiringError):
            ProductSemiring([])

    def test_nested_products(self, weighted, fuzzy):
        inner = ProductSemiring([weighted, fuzzy])
        outer = ProductSemiring([inner, BooleanSemiring()])
        value = ((3.0, 0.5), True)
        assert outer.is_element(value)
        assert outer.times(value, outer.one) == value

    def test_componentwise_division(self, product):
        a = (8.0, 0.4)
        b = (3.0, 0.9)
        assert product.divide(a, b) == (5.0, 0.4)


class TestEqualityAndHash:
    def test_same_type_semirings_equal(self):
        assert FuzzySemiring() == FuzzySemiring()
        assert hash(FuzzySemiring()) == hash(FuzzySemiring())

    def test_parameterized_semirings_compare_by_parameters(self):
        assert SetSemiring({"a"}) != SetSemiring({"b"})
        assert BoundedWeightedSemiring(5) != BoundedWeightedSemiring(6)
        assert ProductSemiring([FuzzySemiring()]) == ProductSemiring(
            [FuzzySemiring()]
        )

    def test_different_types_never_equal(self):
        assert FuzzySemiring() != ProbabilisticSemiring()
