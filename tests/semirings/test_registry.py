"""The named semiring registry used by QoS documents."""

import pytest

from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    ProductSemiring,
    SemiringError,
    WeightedSemiring,
    available_semirings,
    get_semiring,
    product_of,
    register_semiring,
)


class TestLookup:
    def test_builtin_names_resolve(self):
        assert isinstance(get_semiring("fuzzy"), FuzzySemiring)
        assert isinstance(get_semiring("classical"), BooleanSemiring)
        assert isinstance(get_semiring("boolean"), BooleanSemiring)
        assert isinstance(get_semiring("weighted"), WeightedSemiring)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_semiring("FUZZY"), FuzzySemiring)

    def test_parameterized_factories(self):
        s = get_semiring("set", universe={"r", "w"})
        assert s.one == frozenset({"r", "w"})
        b = get_semiring("bounded-weighted", cap=7)
        assert b.zero == 7.0

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(SemiringError, match="known:"):
            get_semiring("tropical-deluxe")

    def test_available_contains_all_builtins(self):
        names = set(available_semirings())
        assert {
            "classical",
            "fuzzy",
            "probabilistic",
            "weighted",
            "set",
            "bounded-weighted",
        } <= names


class TestRegistration:
    def test_register_and_resolve_custom(self):
        class Custom(FuzzySemiring):
            name = "Custom"

        register_semiring("custom-test-semiring", Custom)
        try:
            assert isinstance(get_semiring("custom-test-semiring"), Custom)
        finally:  # keep the global registry clean for other tests
            from repro.semirings import registry

            registry._FACTORIES.pop("custom-test-semiring", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SemiringError, match="already registered"):
            register_semiring("fuzzy", FuzzySemiring)


class TestProductOf:
    def test_product_from_names(self):
        pair = product_of("weighted", "probabilistic")
        assert isinstance(pair, ProductSemiring)
        assert pair.arity == 2
        assert pair.one == (0.0, 1.0)

    def test_product_mixes_names_and_instances(self):
        pair = product_of(WeightedSemiring(integral=True), "fuzzy")
        assert pair.components[0].integral is True
