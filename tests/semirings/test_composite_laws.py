"""Composite semirings under the full law suite (PR 9, paper Sec. 4).

Product composites are absorptive semirings outright: every pair and
nested combination over the four lowered bases passes ``validate_semiring``
on raw samples.  Lexicographic composites are subtler — the derived order
is total and ``×`` stays absorptive (what branch & bound's pruning needs),
but full distributivity and ``×``-monotonicity hold only up to
*tie-collapse*: multiplying can flatten a strict first-component order
into a tie, promoting a later component to decider on one side of the
distributive law but not the other.  On comonotone carriers (every
component ranks the sampled tuples the same way — the diagonal) all laws
hold, and the counterexample that breaks the general case is pinned at
the bottom so nobody "fixes" the docs back to the stronger claim.
"""

import itertools

import pytest

from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    LexicographicSemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    WeightedSemiring,
    check_division_laws,
    check_lub_law,
    check_order_laws,
    check_plus_laws,
    check_times_laws,
    validate_semiring,
)

#: The four bases the dense kernels lower (tests/solver share this set).
BASES = (
    WeightedSemiring(),
    FuzzySemiring(),
    ProbabilisticSemiring(),
    BooleanSemiring(),
)

PAIRS = list(itertools.product(BASES, repeat=2))


def _pair_id(pair):
    return f"{pair[0].name}x{pair[1].name}"


# ----------------------------------------------------------------------
# Product: a full absorptive semiring on raw samples, pairs and nested
# ----------------------------------------------------------------------


class TestProductLaws:
    @pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
    def test_every_pair_passes_all_laws(self, pair):
        report = validate_semiring(ProductSemiring(list(pair)))
        assert report.ok, str(report)

    @pytest.mark.parametrize("base", BASES, ids=lambda s: s.name)
    def test_nested_product_passes_all_laws(self, base):
        nested = ProductSemiring(
            [base, ProductSemiring([FuzzySemiring(), BooleanSemiring()])]
        )
        report = validate_semiring(nested)
        assert report.ok, str(report)

    def test_triple_product_passes_all_laws(self):
        triple = ProductSemiring(
            [WeightedSemiring(), FuzzySemiring(), ProbabilisticSemiring()]
        )
        report = validate_semiring(triple)
        assert report.ok, str(report)


# ----------------------------------------------------------------------
# Lexicographic: total order, universal laws on raw samples
# ----------------------------------------------------------------------


def _diagonal(lex, values=(0.0, 0.25, 0.5, 1.0)):
    """Comonotone samples: every component at the same relative rank.

    Fuzzy/Probabilistic carriers take the value directly; Weighted maps
    ``v ∈ [0,1]`` onto its bigger-is-worse carrier via ``(1-v)/v`` so the
    derived orders still agree; Boolean thresholds at 1.  The resulting
    tuples rank identically in every component, so no tie-collapse can
    promote a later component on one side of a law but not the other.
    """

    def lift(component, v):
        if isinstance(component, WeightedSemiring):
            return float("inf") if v == 0.0 else round((1.0 - v) / v, 6)
        if isinstance(component, BooleanSemiring):
            return v >= 1.0
        if isinstance(component, (LexicographicSemiring, ProductSemiring)):
            return tuple(lift(c, v) for c in component.components)
        return v

    return [
        tuple(lift(c, v) for c in lex.components)
        for v in sorted(values)
    ]


class TestLexicographicLaws:
    @pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
    def test_total_order_on_raw_samples(self, pair):
        lex = LexicographicSemiring(list(pair))
        assert lex.is_total_order()
        for a, b in itertools.product(lex.sample_elements(), repeat=2):
            assert lex.leq(a, b) or lex.leq(b, a)

    @pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
    def test_plus_and_lub_laws_on_raw_samples(self, pair):
        lex = LexicographicSemiring(list(pair))
        assert check_plus_laws(lex) == []
        assert check_lub_law(lex) == []

    @pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
    def test_times_absorptive_on_raw_samples(self, pair):
        # a × b ≤lex a — the pruning bound branch & bound relies on.
        lex = LexicographicSemiring(list(pair))
        samples = lex.sample_elements()
        for a, b in itertools.product(samples, repeat=2):
            assert lex.leq(lex.times(a, b), a)

    @pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
    def test_division_feasible_on_raw_samples(self, pair):
        # b × (a ÷ b) ≤lex a always; exact maximality needs comonotone
        # samples (see the full-suite test below).
        lex = LexicographicSemiring(list(pair))
        for violation in check_division_laws(lex):
            assert violation.law not in (
                "division-feasibility",
                "division-closure",
            ), str(violation)

    @pytest.mark.parametrize("pair", PAIRS, ids=_pair_id)
    def test_all_laws_on_comonotone_samples(self, pair):
        lex = LexicographicSemiring(list(pair))
        report = validate_semiring(lex, elements=_diagonal(lex))
        assert report.ok, str(report)

    def test_nested_lex_all_laws_on_comonotone_samples(self):
        nested = LexicographicSemiring(
            [
                FuzzySemiring(),
                LexicographicSemiring(
                    [ProbabilisticSemiring(), FuzzySemiring()]
                ),
            ]
        )
        assert nested.is_total_order()
        report = validate_semiring(nested, elements=_diagonal(nested))
        assert report.ok, str(report)

    def test_rejects_partial_order_components(self):
        from repro.semirings import SemiringError, SetSemiring

        with pytest.raises(SemiringError, match="totally ordered"):
            LexicographicSemiring(
                [FuzzySemiring(), SetSemiring({"r", "w"})]
            )


# ----------------------------------------------------------------------
# The pinned counterexample: why Lex is *not* distributive in general
# ----------------------------------------------------------------------


class TestLexTieCollapse:
    """Tie-collapse is real — these pin the exact witnesses so the class
    docstring's scoping ("absorptive yes, distributive only on
    comonotone carriers") stays backed by executable evidence."""

    LEX = LexicographicSemiring([FuzzySemiring(), FuzzySemiring()])

    def test_distributivity_counterexample(self):
        lex = self.LEX
        a, b, c = (0.1, 1.0), (0.5, 0.2), (0.3, 0.9)
        # b ⊕ c picks b on the first component, so the left side never
        # sees c's strong tie-breaker...
        left = lex.times(a, lex.plus(b, c))
        assert left == (0.1, 0.2)
        # ...but a× collapses both first components to 0.1, and the tie
        # promotes the second component — where a×c wins.
        right = lex.plus(lex.times(a, b), lex.times(a, c))
        assert right == (0.1, 0.9)
        assert left != right

    def test_times_monotonicity_counterexample(self):
        lex = self.LEX
        a, b, c = (0.0, 0.25), (0.25, 0.0), (0.0, 0.25)
        assert lex.leq(a, b)
        # c zeroes b's first component: the products tie there and the
        # second component reverses the order.
        assert not lex.leq(lex.times(a, c), lex.times(b, c))

    def test_raw_sample_validation_reports_only_collapse_laws(self):
        # Everything that fails on raw samples is a tie-collapse law —
        # no other axiom regresses.
        report = validate_semiring(self.LEX)
        assert not report.ok
        assert {v.law for v in report.violations} <= {
            "distributivity",
            "times-monotonicity",
            "division-maximality",
            "invertibility (b × (a÷b) = a when a ≤ b)",
        }

    def test_times_laws_other_than_distributivity_hold(self):
        violations = check_times_laws(self.LEX)
        assert violations  # distributivity does fail on raw samples...
        assert {v.law for v in violations} == {"distributivity"}

    def test_order_laws_other_than_times_monotonicity_hold(self):
        violations = check_order_laws(self.LEX)
        assert violations
        assert {v.law for v in violations} == {"times-monotonicity"}
