"""Shared runtime fixtures: a tiny market and matching requests."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Polynomial,
    integer_variable,
    polynomial_constraint,
)
from repro.semirings import WeightedSemiring
from repro.soa import (
    Broker,
    ClientRequest,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)


def publish_cost_provider(registry, provider, base, slope=1.0):
    registry.publish(
        ServiceDescription(
            service_id=f"filter-{provider}",
            name="filter",
            provider=provider,
            interface=ServiceInterface(operation="filter"),
            qos=QoSDocument(
                service_name="filter",
                provider=provider,
                policies=[
                    QoSPolicy(
                        attribute="cost",
                        variables={"x": range(0, 11)},
                        polynomial=Polynomial.linear({"x": slope}, base),
                    )
                ],
            ),
        )
    )


@pytest.fixture
def market():
    registry = ServiceRegistry()
    publish_cost_provider(registry, "P1", base=5.0)
    publish_cost_provider(registry, "P2", base=3.0)
    publish_cost_provider(registry, "P3", base=8.0)
    return registry


@pytest.fixture
def broker(market):
    return Broker(market)


@pytest.fixture
def make_request():
    weighted = WeightedSemiring()
    x = integer_variable("x", 10)
    requirement = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2})
    )

    def factory(client="C"):
        return ClientRequest(
            client=client,
            operation="filter",
            attribute="cost",
            requirements=[requirement],
        )

    return factory
