"""Graceful degradation: retries exhausted ⇒ last-known SLA served."""

import random

from repro.runtime import (
    RetryPolicy,
    RuntimeConfig,
    RuntimeServer,
    SessionStatus,
)
from repro.runtime.server import _Session
from repro.soa import BurstOutage, FaultInjector
from repro.telemetry import telemetry_session

ALL_SERVICES = ("filter-P1", "filter-P2", "filter-P3")


def always_down_injector():
    injector = FaultInjector(seed=0)
    for sid in ALL_SERVICES:
        injector.attach(sid, BurstOutage(start=0, length=10_000))
    return injector


class TestDegradation:
    def test_faulted_provider_degrades_to_last_known_sla(
        self, broker, make_request
    ):
        config = RuntimeConfig(
            workers=1,
            seed=3,
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.001),
        )
        server = RuntimeServer(
            broker, config, injector=always_down_injector()
        )
        (result,) = server.run([make_request(client="C")])
        assert result.status is SessionStatus.DEGRADED
        assert result.ok and result.degraded
        assert result.attempts == 3
        assert result.retries == 2
        # The served SLA is the client's last-known one from the broker's
        # repository — signed during negotiation even though the provider
        # then failed to deliver.
        assert result.sla is not None
        assert result.sla in broker.slas.for_client("C")
        assert "serving last-known SLA" in result.detail

    def test_degradation_increments_counter_and_emits_event(
        self, broker, make_request
    ):
        config = RuntimeConfig(
            workers=1,
            seed=3,
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
        )
        with telemetry_session() as session:
            server = RuntimeServer(
                broker, config, injector=always_down_injector()
            )
            results = server.run(
                [make_request(client=f"c{i}") for i in range(3)]
            )
        assert all(r.status is SessionStatus.DEGRADED for r in results)
        counter = session.registry.get("runtime_degraded_total")
        assert counter is not None and counter.value == 3
        events = session.events.of_kind("runtime.degraded")
        assert len(events) == 3
        assert {e["client"] for e in events} == {"c0", "c1", "c2"}
        assert all(e["sla_id"] is not None for e in events)
        # the outcome-labelled session counter agrees
        sessions_total = session.registry.get("runtime_sessions_total")
        by_outcome = {
            s["labels"]["outcome"]: s["value"]
            for s in sessions_total.samples()
        }
        assert by_outcome["degraded"] == 3
        assert by_outcome["completed"] == 0

    def test_nothing_to_degrade_to_fails(self, broker, make_request):
        """A client with no usable SLA on file ends FAILED, not DEGRADED."""
        server = RuntimeServer(broker, RuntimeConfig(seed=1))
        session = _Session(
            index=0,
            request=make_request(client="stranger"),
            future=None,
            rng=random.Random(0),
            submitted_at=0.0,
            deadline_s=None,
        )
        result = server._degrade(session, attempts=3, last_error="outage")
        assert result.status is SessionStatus.FAILED
        assert result.sla is None
        assert not result.ok
        assert "no known SLA" in result.detail

    def test_degradation_ignores_other_attributes(self, broker, make_request):
        """Last-known lookup must match the requested attribute."""
        # Seed an SLA for client C (attribute "cost") the normal way.
        (first,) = RuntimeServer(
            broker, RuntimeConfig(seed=1)
        ).run([make_request(client="C")])
        assert first.status is SessionStatus.COMPLETED

        server = RuntimeServer(broker, RuntimeConfig(seed=1))
        request = make_request(client="C")
        mismatched = type(request)(
            client="C",
            operation=request.operation,
            attribute="reliability",
            requirements=request.requirements,
        )
        session = _Session(
            index=1,
            request=mismatched,
            future=None,
            rng=random.Random(0),
            submitted_at=0.0,
            deadline_s=None,
        )
        result = server._degrade(session, attempts=2, last_error="outage")
        assert result.status is SessionStatus.FAILED
