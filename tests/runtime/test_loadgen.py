"""Load generation: percentiles, profiles, open/closed loops."""

import pytest

from repro.runtime import (
    LoadGenError,
    LoadGenerator,
    LoadProfile,
    RuntimeConfig,
    RuntimeServer,
    SessionStatus,
    percentile,
    summarize,
    synthesize_market,
    synthetic_request_factory,
)
from repro.soa import Broker


@pytest.fixture
def server():
    registry = synthesize_market(seed=11)
    return RuntimeServer(Broker(registry), RuntimeConfig(workers=3, seed=11))


class TestPercentiles:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_empty_and_bounds(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(LoadGenError):
            percentile([1.0], 150)

    def test_summary_shape(self):
        digest = summarize([1.0, 2.0, 3.0, 4.0])
        assert set(digest) == {"p50", "p95", "p99", "mean", "max"}
        assert digest["mean"] == 2.5
        assert digest["max"] == 4.0


class TestProfiles:
    def test_defaults(self):
        profile = LoadProfile()
        assert profile.total_requests == profile.clients

    def test_requests_override_population(self):
        assert LoadProfile(clients=4, requests=10).total_requests == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"requests": 0},
            {"mode": "sideways"},
            {"rate": 0.0},
            {"think_time_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(LoadGenError):
            LoadProfile(**kwargs)


class TestOpenLoop:
    def test_open_loop_serves_everything(self, server):
        profile = LoadProfile(
            clients=6, requests=18, mode="open", rate=2000.0, seed=7
        )
        report = LoadGenerator(server, profile).run_sync()
        assert report.offered == 18
        assert report.completed == 18
        assert report.overloaded == 0
        assert report.throughput_rps > 0
        assert report.duration_s > 0
        assert report.latency_s["p99"] >= report.latency_s["p50"] > 0

    def test_report_is_jsonable(self, server):
        profile = LoadProfile(clients=3, mode="open", rate=2000.0, seed=7)
        report = LoadGenerator(server, profile).run_sync()
        payload = report.to_dict()
        assert payload["offered"] == 3
        assert "results" not in payload  # sessions stay out of the summary
        assert set(payload["latency_s"]) == {
            "p50", "p95", "p99", "mean", "max",
        }

    def test_same_seed_same_run(self):
        def one_run():
            registry = synthesize_market(seed=11)
            server = RuntimeServer(
                Broker(registry), RuntimeConfig(workers=3, seed=11)
            )
            profile = LoadProfile(
                clients=5, requests=15, mode="open", rate=3000.0, seed=7
            )
            report = LoadGenerator(server, profile).run_sync()
            return [
                (r.request.client, r.status, r.attempts)
                for r in report.results
            ]

        assert one_run() == one_run()


class TestClosedLoop:
    def test_closed_loop_spreads_requests_across_clients(self, server):
        profile = LoadProfile(clients=4, requests=10, mode="closed", seed=7)
        report = LoadGenerator(server, profile).run_sync()
        assert report.offered == 10
        assert report.completed == 10
        issued = sorted(r.request.client for r in report.results)
        # 10 across 4 clients: first two clients take the remainder
        assert issued.count("c0") == 3
        assert issued.count("c1") == 3
        assert issued.count("c2") == 2
        assert issued.count("c3") == 2

    def test_closed_loop_never_overloads(self):
        """A closed population can never exceed ``clients`` in flight,
        so a queue at least that deep never bounces."""
        registry = synthesize_market(seed=11)
        server = RuntimeServer(
            Broker(registry),
            RuntimeConfig(workers=2, max_queue_depth=8, seed=11),
        )
        profile = LoadProfile(clients=8, requests=24, mode="closed", seed=7)
        report = LoadGenerator(server, profile).run_sync()
        assert report.overloaded == 0
        assert report.completed == 24


class TestSyntheticMarket:
    def test_market_matches_factory(self):
        registry = synthesize_market(providers=5, seed=1)
        assert len(registry) == 5
        assert registry.operations() == ["render"]
        factory = synthetic_request_factory()
        request = factory("c0", 0)
        assert request.operation == "render"
        assert request.attribute == "cost"
        (result,) = RuntimeServer(
            Broker(registry), RuntimeConfig(seed=1)
        ).run([request])
        assert result.status is SessionStatus.COMPLETED
