"""Retry policy: exponential growth, caps, seeded jitter."""

import random

import pytest

from repro.runtime import NO_RETRY, RetryError, RetryPolicy


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(RetryError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(RetryError):
            RetryPolicy(base_backoff_s=-0.1)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(RetryError):
            RetryPolicy(multiplier=0.5)

    def test_rejects_jitter_outside_unit_interval(self):
        with pytest.raises(RetryError):
            RetryPolicy(jitter=1.5)

    def test_rejects_zeroth_attempt(self):
        with pytest.raises(RetryError):
            RetryPolicy().raw_backoff(0)


class TestBackoff:
    def test_raw_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            max_attempts=5, base_backoff_s=0.1, multiplier=2.0,
            max_backoff_s=100.0,
        )
        assert [policy.raw_backoff(a) for a in (1, 2, 3)] == [
            0.1,
            0.2,
            0.4,
        ]

    def test_raw_backoff_caps_at_max(self):
        policy = RetryPolicy(
            max_attempts=10, base_backoff_s=1.0, multiplier=10.0,
            max_backoff_s=5.0,
        )
        assert policy.raw_backoff(4) == 5.0

    def test_jitter_stays_within_spread(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.backoff(1, rng)
            assert 0.5 <= delay <= 1.5

    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=6, base_backoff_s=0.2)
        first = policy.schedule(random.Random(42))
        second = policy.schedule(random.Random(42))
        assert first == second
        assert len(first) == policy.max_retries == 5

    def test_zero_jitter_is_deterministic_without_rng_draws(self):
        policy = RetryPolicy(jitter=0.0, base_backoff_s=0.3)
        rng = random.Random(1)
        before = rng.getstate()
        assert policy.backoff(1, rng) == 0.3
        assert rng.getstate() == before  # no draw consumed


class TestNoRetry:
    def test_single_attempt_no_waits(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.max_retries == 0
        assert NO_RETRY.schedule(random.Random(0)) == []
