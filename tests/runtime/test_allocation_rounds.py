"""Allocation rounds: coalescing sessions so fairness can see contention.

:class:`RoundScheduler` is the batching layer's leader/follower machinery
one level up the stack — it coalesces *sessions* (by operation,
attribute, verify flag) instead of solves, so a window of concurrent
clients reaches the broker's allocation policy as one round.  These tests
drive it with real threads, check the cap/window/degenerate shapes, the
fan-back and error contracts, and close with the end-to-end run: a
closed-loop load generation against a fair-policy runtime server must
report a near-1 Jain index on the contention market.
"""

import threading

import pytest

from repro.runtime import (
    BatchConfig,
    BatchingError,
    LoadGenerator,
    LoadProfile,
    RoundScheduler,
    RuntimeConfig,
    RuntimeServer,
    SessionStatus,
    contention_request_factory,
    fairness_summary,
    synthesize_contention_market,
)
from repro.soa import Broker


@pytest.fixture
def contention_market():
    return synthesize_contention_market(providers=3)


def serve_concurrently(broker, requests):
    """Every session from its own thread, as the worker pool would."""
    results = [None] * len(requests)
    errors = [None] * len(requests)
    barrier = threading.Barrier(len(requests))

    def work(index):
        barrier.wait()
        try:
            results[index] = broker.serve_session(requests[index])
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            errors[index] = exc

    threads = [
        threading.Thread(target=work, args=(i,))
        for i in range(len(requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


def requests_for(count):
    factory = contention_request_factory()
    return [factory(f"c{i}", i) for i in range(count)]


class TestCoalescing:
    def test_concurrent_sessions_share_one_round(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=250.0, max_batch=12),
        )
        results, errors = serve_concurrently(broker, requests_for(12))
        assert errors == [None] * 12
        assert all(r.success for r in results)
        stats = broker.rounds.stats()
        assert stats["rounds_dispatched"] == 1
        assert stats["sessions_rounded"] == 12
        assert stats["largest_round"] == 12
        assert stats["open_groups"] == 0
        # One round means fair saw all the contention at once.
        assert {r.sla.providers[0] for r in results} == {"P0", "P1", "P2"}
        # Fan-back is by submission: every caller got its own client.
        for i, result in enumerate(results):
            assert result.request.client == f"c{i}"

    def test_max_batch_caps_round_size(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=250.0, max_batch=4),
        )
        results, errors = serve_concurrently(broker, requests_for(12))
        assert errors == [None] * 12
        assert all(r.success for r in results)
        stats = broker.rounds.stats()
        assert stats["sessions_rounded"] == 12
        assert stats["largest_round"] <= 4
        assert stats["rounds_dispatched"] >= 3

    def test_max_batch_one_dispatches_immediately(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=250.0, max_batch=1),
        )
        results, errors = serve_concurrently(broker, requests_for(4))
        assert errors == [None] * 4
        stats = broker.rounds.stats()
        assert stats["rounds_dispatched"] == 4
        assert stats["largest_round"] == 1
        # Rounds of one see no contention: everyone gets the greedy best.
        assert {r.sla.providers[0] for r in results} == {"P0"}

    def test_lone_session_round_of_one(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=1.0, max_batch=12),
        )
        result = broker.serve_session(requests_for(1)[0])
        assert result.success
        assert broker.rounds.stats()["rounds_dispatched"] == 1


class _ShortfallBroker:
    """A broker whose policy loses results — the fan-back must not hang."""

    def negotiate_round(self, requests, verify_scheduler_independence=False,
                        round_id=0):
        return []


class _ExplodingBroker:
    def negotiate_round(self, requests, verify_scheduler_independence=False,
                        round_id=0):
        raise RuntimeError("allocator crashed")


class TestErrorContracts:
    def test_shortfall_raises_instead_of_hanging(self):
        scheduler = RoundScheduler(BatchConfig(max_batch=1))
        with pytest.raises(BatchingError, match="fewer results"):
            scheduler.negotiate(_ShortfallBroker(), requests_for(1)[0])

    def test_round_errors_propagate_to_every_caller(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=250.0, max_batch=4),
        )
        broker.negotiate_round = _ExplodingBroker().negotiate_round
        results, errors = serve_concurrently(broker, requests_for(4))
        assert results == [None] * 4
        assert all(
            isinstance(error, RuntimeError) for error in errors
        )

    def test_scheduler_repr_mentions_rounds(self):
        scheduler = RoundScheduler(BatchConfig(window_ms=5.0, max_batch=8))
        assert "round" in repr(scheduler)


class TestEndToEndFairness:
    def test_closed_loop_run_reports_near_one_jain(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=60.0, max_batch=16),
        )
        server = RuntimeServer(
            broker, RuntimeConfig(workers=16, seed=7, deadline_s=None)
        )
        generator = LoadGenerator(
            server,
            LoadProfile(clients=12, mode="closed", seed=7),
            contention_request_factory(),
        )
        report = generator.run_sync()
        assert report.completed == 12
        assert report.fairness is not None
        assert report.fairness["clients"] == 12
        assert report.fairness["jain_index"] > 0.9
        assert report.fairness["min_satisfaction"] >= 0.5

    def test_greedy_run_reports_lower_fairness(self, contention_market):
        broker = Broker(
            contention_market,
            allocation_policy="greedy",
            rounds=BatchConfig(window_ms=60.0, max_batch=16),
        )
        server = RuntimeServer(
            broker, RuntimeConfig(workers=16, seed=7, deadline_s=None)
        )
        generator = LoadGenerator(
            server,
            LoadProfile(clients=12, mode="closed", seed=7),
            contention_request_factory(),
        )
        report = generator.run_sync()
        assert report.completed == 12
        assert report.fairness is not None
        # Greedy piles up; with every session on one provider the rank
        # discount spreads satisfactions wide and Jain drops.
        assert report.fairness["jain_index"] < 0.95

    def test_plain_server_reports_no_fairness_block(self, contention_market):
        server = RuntimeServer(
            Broker(contention_market),
            RuntimeConfig(workers=4, seed=7, deadline_s=None),
        )
        generator = LoadGenerator(
            server,
            LoadProfile(clients=4, mode="closed", seed=7),
            contention_request_factory(),
        )
        report = generator.run_sync()
        assert report.completed == 4
        assert report.fairness is None
        assert all(
            r.status is SessionStatus.COMPLETED for r in report.results
        )

    def test_fairness_summary_ignores_unannotated_results(
        self, contention_market
    ):
        broker = Broker(contention_market)
        results = [broker.negotiate(r) for r in requests_for(3)]
        assert fairness_summary([]) == {}

        class _Shim:
            def __init__(self, negotiation):
                self.negotiation = negotiation
                self.status = SessionStatus.COMPLETED

        assert fairness_summary([_Shim(r) for r in results]) == {}
