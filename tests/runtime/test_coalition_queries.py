"""Coalition queries as an offloadable runtime request kind."""

import asyncio

import pytest

from repro.coalitions import figure9_network, solve_engine
from repro.runtime import CoalitionQuery, RuntimeConfig, RuntimeServer
from repro.runtime.server import RuntimeError_
from repro.telemetry import telemetry_session


@pytest.fixture
def network():
    return figure9_network()


def make_queries(network, count, **overrides):
    kw = dict(
        op="avg",
        aggregate="avg",
        restarts=2,
        max_iterations=40,
        neighbour_sample=24,
    )
    kw.update(overrides)
    return [CoalitionQuery(network, **kw) for _ in range(count)]


class TestCoalitionQueries:
    def test_serves_batch(self, broker, network):
        server = RuntimeServer(broker, RuntimeConfig(workers=2, seed=1))
        solutions = server.run_coalitions(make_queries(network, 4))
        assert len(solutions) == 4
        assert all(s.found for s in solutions)
        assert all(s.method == "engine" for s in solutions)

    def test_explicit_seed_matches_direct_engine_call(
        self, broker, network
    ):
        server = RuntimeServer(broker, RuntimeConfig(workers=2, seed=1))
        (served,) = server.run_coalitions(
            make_queries(network, 1, seed=42)
        )
        direct = solve_engine(
            network,
            op="avg",
            aggregate="avg",
            seed=42,
            restarts=2,
            max_iterations=40,
            neighbour_sample=24,
        )
        assert served.partition == direct.partition
        assert served.trust == direct.trust

    def test_seedless_queries_reproduce_under_config_seed(
        self, broker, network
    ):
        def batch():
            server = RuntimeServer(
                broker, RuntimeConfig(workers=3, seed=99)
            )
            return server.run_coalitions(make_queries(network, 5))

        first, second = batch(), batch()
        assert [s.partition for s in first] == [
            s.partition for s in second
        ]

    def test_mixed_with_negotiations(self, broker, network, make_request):
        # One server lifecycle can interleave both request kinds.
        async def drive():
            server = RuntimeServer(
                broker, RuntimeConfig(workers=2, seed=7)
            )
            async with server:
                negotiation = server.submit(make_request(client="c0"))
                coalition = asyncio.ensure_future(
                    server.solve_coalitions(
                        make_queries(network, 1)[0]
                    )
                )
                return await asyncio.gather(negotiation, coalition)

        session, solution = asyncio.run(drive())
        assert session.ok
        assert solution.found

    def test_requires_started_server(self, broker, network):
        server = RuntimeServer(broker, RuntimeConfig(seed=1))

        async def call_unstarted():
            await server.solve_coalitions(make_queries(network, 1)[0])

        with pytest.raises(RuntimeError_):
            asyncio.run(call_unstarted())

    def test_emits_outcome_counter(self, broker, network):
        with telemetry_session() as session:
            server = RuntimeServer(broker, RuntimeConfig(workers=2, seed=1))
            solutions = server.run_coalitions(make_queries(network, 3))
        counter = session.registry.get("runtime_coalition_queries_total")
        assert counter is not None
        stable = sum(1 for s in solutions if s.stable)
        assert counter.labels("stable").value == stable
        assert counter.labels("unstable").value == len(solutions) - stable
        spans = [
            s
            for s in session.tracer.finished
            if s.name == "runtime.coalitions"
        ]
        assert len(spans) == 3
