"""RuntimeServer: admission, workers, deadlines, retries, seeds."""

import asyncio

import pytest

from repro.runtime import (
    Overloaded,
    RetryPolicy,
    RuntimeConfig,
    RuntimeServer,
    SessionStatus,
)
from repro.runtime.server import RuntimeError_
from repro.soa import BernoulliCrash, ClientRequest, FaultInjector
from repro.telemetry import telemetry_session


def sessions_for(broker, make_request, count):
    return [make_request(client=f"c{i}") for i in range(count)]


class TestServing:
    def test_serves_concurrent_sessions(self, broker, make_request):
        server = RuntimeServer(broker, RuntimeConfig(workers=3, seed=1))
        results = server.run(sessions_for(broker, make_request, 8))
        assert len(results) == 8
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        assert all(r.sla is not None for r in results)
        assert all(r.attempts == 1 for r in results)
        # results come back in submission order with their admission index
        assert [r.index for r in results] == list(range(8))

    def test_each_client_gets_its_own_sla(self, broker, make_request):
        server = RuntimeServer(broker, RuntimeConfig(seed=1))
        results = server.run(sessions_for(broker, make_request, 5))
        assert len({r.sla.sla_id for r in results}) == 5

    def test_rejected_when_no_provider_matches(self, broker):
        server = RuntimeServer(broker, RuntimeConfig(seed=1))
        impossible = ClientRequest(
            client="C", operation="no-such-op", attribute="cost"
        )
        (result,) = server.run([impossible])
        assert result.status is SessionStatus.REJECTED
        assert result.attempts == 1  # permanent: not worth retrying
        assert not result.ok

    def test_submit_before_start_raises(self, broker, make_request):
        server = RuntimeServer(broker)
        with pytest.raises(RuntimeError_):
            asyncio.run(self._submit_unstarted(server, make_request()))

    @staticmethod
    async def _submit_unstarted(server, request):
        server.submit(request)


class TestAdmissionControl:
    def test_queue_overflow_yields_typed_overload(self, broker, make_request):
        async def flood():
            config = RuntimeConfig(
                workers=1, max_queue_depth=2, seed=1, probe_interval_s=0
            )
            async with RuntimeServer(broker, config) as server:
                # Submit synchronously without yielding: the single
                # worker cannot drain, so the 3rd+ submissions bounce.
                futures = [
                    server.submit(make_request(client=f"c{i}"))
                    for i in range(6)
                ]
                return await asyncio.gather(*futures)

        results = asyncio.run(flood())
        bounced = [r for r in results if isinstance(r, Overloaded)]
        assert len(bounced) >= 3
        assert all(
            r.status is SessionStatus.OVERLOADED and "queue full" in r.detail
            for r in bounced
        )
        served = [r for r in results if not isinstance(r, Overloaded)]
        assert served and all(
            r.status is SessionStatus.COMPLETED for r in served
        )

    def test_bounced_sessions_never_occupy_a_worker(
        self, broker, make_request
    ):
        async def flood():
            config = RuntimeConfig(workers=1, max_queue_depth=1, seed=1)
            async with RuntimeServer(broker, config) as server:
                futures = [
                    server.submit(make_request(client=f"c{i}"))
                    for i in range(4)
                ]
                return await asyncio.gather(*futures)

        results = asyncio.run(flood())
        assert all(
            r.attempts == 0
            for r in results
            if r.status is SessionStatus.OVERLOADED
        )


class TestDeadlines:
    def test_zero_budget_expires_in_queue(self, broker, make_request):
        server = RuntimeServer(broker, RuntimeConfig(workers=1, seed=1))

        async def submit_with_tiny_deadline():
            async with server:
                future = server.submit(make_request(), deadline_s=1e-9)
                return await future

        result = asyncio.run(submit_with_tiny_deadline())
        assert result.status is SessionStatus.DEADLINE_EXCEEDED
        assert not result.ok

    def test_generous_deadline_completes(self, broker, make_request):
        server = RuntimeServer(
            broker, RuntimeConfig(deadline_s=30.0, seed=1)
        )
        (result,) = server.run([make_request()])
        assert result.status is SessionStatus.COMPLETED


class TestRetries:
    def test_transient_faults_are_retried(self, broker, make_request):
        injector = FaultInjector(seed=5)
        for sid in ("filter-P1", "filter-P2", "filter-P3"):
            injector.attach(sid, BernoulliCrash(0.6))
        config = RuntimeConfig(
            workers=2,
            seed=5,
            retry=RetryPolicy(
                max_attempts=5, base_backoff_s=0.001, jitter=0.5
            ),
        )
        server = RuntimeServer(broker, config, injector=injector)
        results = server.run(sessions_for(broker, make_request, 12))
        assert sum(r.retries for r in results) > 0
        assert all(r.ok for r in results)  # retried or degraded, never lost

    def test_retry_metrics_and_events(self, broker, make_request):
        injector = FaultInjector(seed=5)
        for sid in ("filter-P1", "filter-P2", "filter-P3"):
            injector.attach(sid, BernoulliCrash(0.6))
        config = RuntimeConfig(
            workers=2,
            seed=5,
            retry=RetryPolicy(max_attempts=5, base_backoff_s=0.001),
        )
        with telemetry_session() as session:
            server = RuntimeServer(broker, config, injector=injector)
            results = server.run(sessions_for(broker, make_request, 12))
        retries = sum(r.retries for r in results)
        assert retries > 0
        counter = session.registry.get("runtime_retries_total")
        assert counter is not None and counter.value == retries
        retry_events = session.events.of_kind("runtime.retry")
        assert len(retry_events) == retries
        assert all(e["backoff_s"] >= 0 for e in retry_events)


class TestReproducibility:
    def run_with_seed(self, broker_factory, make_request, seed):
        broker = broker_factory()
        injector = FaultInjector(seed=seed)
        for sid in ("filter-P1", "filter-P2", "filter-P3"):
            injector.attach(sid, BernoulliCrash(0.5))
        config = RuntimeConfig(
            workers=3,
            seed=seed,
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.001),
        )
        server = RuntimeServer(broker, config, injector=injector)
        results = server.run(
            [make_request(client=f"c{i}") for i in range(10)]
        )
        return [(r.status, r.attempts, r.retries) for r in results]

    def test_one_seed_reproduces_a_concurrent_run(
        self, market, make_request
    ):
        from repro.soa import Broker

        first = self.run_with_seed(lambda: Broker(market), make_request, 9)
        second = self.run_with_seed(lambda: Broker(market), make_request, 9)
        assert first == second

    def test_different_seeds_diverge(self, market, make_request):
        from repro.soa import Broker

        runs = {
            tuple(
                self.run_with_seed(lambda: Broker(market), make_request, s)
            )
            for s in range(6)
        }
        assert len(runs) > 1  # the seed actually steers fault decisions


class TestOffloading:
    def test_solves_never_block_the_event_loop(self, broker, make_request):
        """While the workers grind CPU-bound solves, a loop-side task
        must keep ticking — solves run on executor threads."""

        async def scenario():
            ticks = 0

            async def ticker():
                nonlocal ticks
                while True:
                    await asyncio.sleep(0.001)
                    ticks += 1

            config = RuntimeConfig(workers=2, seed=1)
            async with RuntimeServer(broker, config) as server:
                probe = asyncio.create_task(ticker())
                futures = [
                    server.submit(make_request(client=f"c{i}"))
                    for i in range(10)
                ]
                results = await asyncio.gather(*futures)
                probe.cancel()
                return results, ticks

        results, ticks = asyncio.run(scenario())
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        assert ticks > 0

    def test_broker_spans_nest_under_session_spans(
        self, broker, make_request
    ):
        with telemetry_session() as session:
            server = RuntimeServer(broker, RuntimeConfig(workers=3, seed=1))
            server.run([make_request(client=f"c{i}") for i in range(3)])
        roots = session.tracer.finished
        assert [r.name for r in roots].count("runtime.session") == 3
        for root in roots:
            assert root.name == "runtime.session"
            (child,) = root.children
            assert child.name == "broker.request"
            assert [c.name for c in child.children] == [
                "broker.step1-request",
                "broker.step2-registry-search",
                "broker.step3-negotiation",
                "broker.step4-compare",
                "broker.step5-sla",
            ]
