"""The batch scheduler: coalescing, fan-back, and bit-identity.

Unit tests drive :class:`BatchScheduler` with real threads (the shape
the runtime's worker pool produces) and check the coalescing contract:
same-topology solves share one stacked sweep, every caller gets *its
own* result back, errors propagate to every member, non-lowerable
semirings bypass batching, and a warm solve cache short-circuits the
window.  The regression at the bottom is the acceptance criterion: a
full loadgen run against one broker with batching on must produce
agreements bit-identical to the same run with batching off, at both
degenerate and maximal batch settings.
"""

import threading

import pytest

from repro.constraints import TableConstraint, variable
from repro.runtime import (
    BatchConfig,
    BatchScheduler,
    BatchingError,
    LoadGenerator,
    LoadProfile,
    RuntimeConfig,
    RuntimeServer,
    synthesize_market,
)
from repro.semirings import SetSemiring, WeightedSemiring
from repro.solver import SCSP, SolveCache, solve_elimination
from repro.soa import Broker, BrokerError
from repro.telemetry import telemetry_session

from ..telemetry.test_instrumentation import counter_total


def _problem(offset, weighted=WeightedSemiring()):
    """Same topology for every offset, different tables."""
    x = variable("x", (0, 1, 2))
    y = variable("y", (0, 1))
    return SCSP(
        [
            TableConstraint(
                weighted,
                [x, y],
                {
                    (i, j): float((i * 2 + j + offset) % 5)
                    for i in range(3)
                    for j in range(2)
                },
            )
        ],
        con=["x"],
    )


def _solve_many(scheduler, problems, cache=None):
    """Submit every problem from its own thread, as the worker pool
    would; returns results in submission order."""
    results = [None] * len(problems)
    errors = [None] * len(problems)
    barrier = threading.Barrier(len(problems))

    def work(index):
        barrier.wait()
        try:
            results[index] = scheduler.solve(problems[index], cache=cache)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors[index] = exc

    threads = [
        threading.Thread(target=work, args=(i,))
        for i in range(len(problems))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class TestBatchConfig:
    def test_defaults(self):
        config = BatchConfig()
        assert config.window_ms == 2.0
        assert config.max_batch == 32

    @pytest.mark.parametrize(
        "kwargs", [{"window_ms": -1.0}, {"max_batch": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(BatchingError):
            BatchConfig(**kwargs)


class TestCoalescing:
    def test_full_group_coalesces_into_one_batch(self):
        scheduler = BatchScheduler(
            BatchConfig(window_ms=2000.0, max_batch=4)
        )
        problems = [_problem(k) for k in range(4)]
        results, errors = _solve_many(scheduler, problems)
        assert errors == [None] * 4
        # One stacked sweep served all four sessions (a full group never
        # waits out the window).
        assert scheduler.batches_dispatched == 1
        assert scheduler.sessions_batched == 4
        assert scheduler.largest_batch == 4
        # ... and each caller got its own answer, bit-identical to an
        # unbatched elimination solve of its problem.
        for problem, result in zip(problems, results):
            single = solve_elimination(problem, backend="dense")
            assert result.blevel == single.blevel
            assert result.frontier == single.frontier
            assert result.optima == single.optima

    def test_max_batch_caps_group_size(self):
        scheduler = BatchScheduler(
            BatchConfig(window_ms=2000.0, max_batch=2)
        )
        problems = [_problem(k) for k in range(6)]
        results, errors = _solve_many(scheduler, problems)
        assert errors == [None] * 6
        assert scheduler.sessions_batched == 6
        assert scheduler.largest_batch <= 2
        assert scheduler.batches_dispatched >= 3
        for problem, result in zip(problems, results):
            assert result.blevel == solve_elimination(problem).blevel

    def test_zero_window_still_answers_everyone(self):
        scheduler = BatchScheduler(BatchConfig(window_ms=0.0, max_batch=8))
        problems = [_problem(k) for k in range(5)]
        results, errors = _solve_many(scheduler, problems)
        assert errors == [None] * 5
        assert scheduler.sessions_batched == 5
        for problem, result in zip(problems, results):
            assert result.blevel == solve_elimination(problem).blevel

    def test_different_topologies_never_share_a_batch(self):
        scheduler = BatchScheduler(
            BatchConfig(window_ms=2000.0, max_batch=2)
        )
        weighted = WeightedSemiring()
        z = variable("z", (0, 1))
        other = SCSP(
            [TableConstraint(weighted, [z], {(0,): 1.0, (1,): 3.0})],
            con=["z"],
        )
        results, errors = _solve_many(scheduler, [_problem(0), other])
        assert errors == [None, None]
        assert results[0].blevel == solve_elimination(_problem(0)).blevel
        assert results[1].blevel == solve_elimination(other).blevel
        # Two topologies → two groups; sizes stay 1 each.
        assert scheduler.largest_batch == 1


class TestRouting:
    def test_solo_mode_skips_grouping(self):
        scheduler = BatchScheduler(BatchConfig(window_ms=5.0, max_batch=1))
        with telemetry_session() as session:
            result = scheduler.solve(_problem(1))
        assert result.blevel == solve_elimination(_problem(1)).blevel
        assert scheduler.batches_dispatched == 0
        assert counter_total(
            session.registry, "runtime_batches_total"
        ) == 0

    def test_non_lowerable_semiring_bypasses(self):
        semiring = SetSemiring(frozenset({"r", "w"}))
        x = variable("x", (0, 1))
        problem = SCSP(
            [
                TableConstraint(
                    semiring,
                    [x],
                    {(0,): frozenset({"r"}), (1,): frozenset({"w"})},
                )
            ]
        )
        scheduler = BatchScheduler()
        result = scheduler.solve(problem)
        assert result.blevel == frozenset({"r", "w"})
        assert scheduler.batches_dispatched == 0
        assert scheduler.stats()["open_groups"] == 0

    def test_warm_cache_short_circuits_the_window(self):
        scheduler = BatchScheduler(
            BatchConfig(window_ms=2000.0, max_batch=8)
        )
        cache = SolveCache()
        problem = _problem(2)
        first = scheduler.solve(problem, cache=cache)
        dispatched = scheduler.batches_dispatched
        # The repeat must answer from the cache without ever joining a
        # group (a 2-second window would hang this test otherwise).
        second = scheduler.solve(problem, cache=cache)
        assert scheduler.batches_dispatched == dispatched
        assert second.blevel == first.blevel
        assert second.optima == first.optima

    def test_batch_and_singleton_solves_share_cache_keys(self):
        cache = SolveCache()
        problem = _problem(3)
        scheduler = BatchScheduler(BatchConfig(window_ms=0.0, max_batch=4))
        batched = scheduler.solve(problem, cache=cache)
        stats = cache.stats()
        assert stats["size"] == 1
        # An unbatched elimination solve through the ordinary solve()
        # path now hits the same entry.
        from repro.solver import solve

        hit = solve(
            problem, method="elimination", backend="auto", cache=cache
        )
        assert cache.stats()["hits"] > stats["hits"]
        assert hit.blevel == batched.blevel


class TestErrorPropagation:
    def test_batch_failure_reaches_every_member(self, monkeypatch):
        import repro.runtime.batching as batching

        def boom(problems, backend="auto"):
            raise RuntimeError("stacked solve exploded")

        monkeypatch.setattr(batching, "solve_elimination_batch", boom)
        scheduler = BatchScheduler(
            BatchConfig(window_ms=2000.0, max_batch=3)
        )
        problems = [_problem(k) for k in range(3)]
        results, errors = _solve_many(scheduler, problems)
        assert results == [None] * 3
        assert all(
            isinstance(error, RuntimeError) for error in errors
        )
        assert scheduler.batches_dispatched == 0
        assert scheduler.stats()["open_groups"] == 0

    def test_stats_shape(self):
        scheduler = BatchScheduler()
        stats = scheduler.stats()
        assert stats == {
            "batches_dispatched": 0,
            "sessions_batched": 0,
            "largest_batch": 0,
            "open_groups": 0,
        }


class TestBrokerWiring:
    def test_broker_accepts_config_and_scheduler(self, monkeypatch):
        registry = synthesize_market(seed=3)
        by_config = Broker(registry, batching=BatchConfig(max_batch=4))
        assert by_config.batcher is not None
        assert by_config.batcher.config.max_batch == 4
        scheduler = BatchScheduler()
        shared = Broker(registry, batching=scheduler)
        assert shared.batcher is scheduler
        with pytest.raises(BrokerError):
            Broker(registry, batching="yes please")

    def test_batching_broker_matches_plain_broker(self):
        registry = synthesize_market(seed=5)
        from repro.runtime import synthetic_request_factory

        make_request = synthetic_request_factory()
        plain = Broker(registry).negotiate(make_request("c0", 0))
        batched = Broker(
            registry, batching=BatchConfig(window_ms=0.0, max_batch=8)
        ).negotiate(make_request("c0", 0))
        assert batched.success == plain.success
        assert batched.sla.providers == plain.sla.providers
        assert batched.sla.agreed_level == plain.sla.agreed_level
        assert (
            batched.sla.resource_assignment == plain.sla.resource_assignment
        )


def _agreement_fingerprint(result):
    """Everything observable about one session's agreement except the
    globally-monotonic ``sla_id``."""
    sla = result.sla
    return (
        result.status.value,
        None
        if sla is None
        else (
            sla.client,
            sla.providers,
            sla.attribute,
            sla.agreed_level,
            tuple(sorted(sla.resource_assignment.items())),
            sla.service_ids,
        ),
    )


def _run_loadgen(batching):
    registry = synthesize_market(seed=11)
    broker = Broker(registry, batching=batching)
    server = RuntimeServer(broker, RuntimeConfig(workers=4, seed=11))
    profile = LoadProfile(
        clients=6, requests=18, mode="open", rate=4000.0, seed=7
    )
    report = LoadGenerator(server, profile).run_sync()
    assert report.completed == 18
    return [_agreement_fingerprint(r) for r in report.results]


class TestLoadgenBitIdentity:
    """The acceptance regression: batching on ≡ batching off."""

    def test_agreements_identical_across_batch_settings(self):
        baseline = _run_loadgen(None)
        for config in (
            BatchConfig(window_ms=0.0, max_batch=1),
            BatchConfig(window_ms=0.0, max_batch=32),
            BatchConfig(window_ms=25.0, max_batch=1),
            BatchConfig(window_ms=25.0, max_batch=32),
        ):
            assert _run_loadgen(config) == baseline, config
