"""Scheduler independence under concurrency (satellite of PR 2).

The paper's negotiation semantics is nondeterministic; the broker can
certify (by exhaustive nmsccp exploration) that an outcome holds under
*every* scheduler.  Here we check the property survives the concurrent
runtime: many sessions served in parallel, each certificate positive,
and the agreed levels identical to a sequential reference run.

Keyed sessions extend the same idea across *placements*: a session
submitted with an explicit ``session_key`` draws its RNG from
``(master seed, key)`` — not from admission order or worker
interleaving — which is what lets the fleet prove shard-count
independence on top of this layer.
"""

import asyncio

from repro.runtime import (
    RuntimeConfig,
    RuntimeServer,
    SessionStatus,
    derive_session_seed,
)
from repro.soa import BernoulliCrash, Broker, FaultInjector


class TestSchedulerIndependenceUnderLoad:
    def test_concurrent_sessions_are_certified_independent(
        self, market, make_request
    ):
        config = RuntimeConfig(workers=3, seed=1, verify_independence=True)
        server = RuntimeServer(Broker(market), config)
        results = server.run(
            [make_request(client=f"c{i}") for i in range(6)]
        )
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        for result in results:
            outcome = result.negotiation.outcome
            assert outcome is not None
            assert outcome.scheduler_independent is True

    def test_concurrent_levels_match_sequential_reference(
        self, market, make_request
    ):
        reference = Broker(market).negotiate(
            make_request(client="ref"), verify_scheduler_independence=True
        )
        assert reference.success

        config = RuntimeConfig(workers=4, seed=2, verify_independence=True)
        server = RuntimeServer(Broker(market), config)
        results = server.run(
            [make_request(client=f"c{i}") for i in range(8)]
        )
        levels = {r.sla.agreed_level for r in results}
        assert levels == {reference.sla.agreed_level}


class TestDeriveSessionSeed:
    def test_deterministic_and_key_sensitive(self):
        assert derive_session_seed(7, "s0/c0/op") == derive_session_seed(
            7, "s0/c0/op"
        )
        assert derive_session_seed(7, "s0/c0/op") != derive_session_seed(
            7, "s1/c0/op"
        )
        assert derive_session_seed(7, "s0/c0/op") != derive_session_seed(
            8, "s0/c0/op"
        )

    def test_none_master_seed_still_derives(self):
        # An unseeded server can still serve keyed sessions
        # reproducibly relative to its own (None) master.
        assert derive_session_seed(None, "k") == derive_session_seed(
            None, "k"
        )


class TestKeyedSessions:
    def crashy(self, market):
        injector = FaultInjector(seed=11)
        for description in market.find():
            injector.attach(description.service_id, BernoulliCrash(0.5))
        return injector

    def run_keyed(self, market, make_request, workers, order):
        from repro.runtime import RetryPolicy

        server = RuntimeServer(
            Broker(market),
            RuntimeConfig(
                workers=workers,
                seed=9,
                retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
                deadline_s=None,
            ),
            injector=self.crashy(market),
        )

        async def drive():
            async with server:
                futures = {
                    key: server.submit(
                        make_request(client=key),
                        session_key=f"key-{key}",
                        tick=tick,
                    )
                    for tick, key in enumerate(order)
                }
                return {
                    key: await future
                    for key, future in futures.items()
                }

        return {
            key: (result.status, result.attempts)
            for key, result in asyncio.run(drive()).items()
        }

    def test_outcome_depends_on_key_not_placement(
        self, market, make_request
    ):
        order = [f"c{i}" for i in range(12)]
        narrow = self.run_keyed(market, make_request, 1, order)
        wide = self.run_keyed(market, make_request, 4, order)
        assert narrow == wide
        assert any(
            attempts > 1 for _, attempts in narrow.values()
        )  # faults actually fired

    def test_results_carry_their_session_key(self, market, make_request):
        server = RuntimeServer(
            Broker(market), RuntimeConfig(seed=1, deadline_s=None)
        )

        async def drive():
            async with server:
                return await server.submit(
                    make_request(), session_key="the-key"
                )

        result = asyncio.run(drive())
        assert result.session_key == "the-key"
        assert result.status is SessionStatus.COMPLETED


class TestDrainingStop:
    def test_drain_finishes_queued_sessions(self, market, make_request):
        server = RuntimeServer(
            Broker(market),
            RuntimeConfig(workers=2, seed=3, deadline_s=None),
        )

        async def drive():
            await server.start()
            futures = [
                server.submit(make_request(client=f"c{i}"))
                for i in range(8)
            ]
            await server.stop(drain=True)
            return futures

        futures = asyncio.run(drive())
        assert all(f.done() for f in futures)
        assert all(
            f.result().status is SessionStatus.COMPLETED for f in futures
        )
