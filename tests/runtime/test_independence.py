"""Scheduler independence under concurrency (satellite of PR 2).

The paper's negotiation semantics is nondeterministic; the broker can
certify (by exhaustive nmsccp exploration) that an outcome holds under
*every* scheduler.  Here we check the property survives the concurrent
runtime: many sessions served in parallel, each certificate positive,
and the agreed levels identical to a sequential reference run.
"""

from repro.runtime import RuntimeConfig, RuntimeServer, SessionStatus
from repro.soa import Broker


class TestSchedulerIndependenceUnderLoad:
    def test_concurrent_sessions_are_certified_independent(
        self, market, make_request
    ):
        config = RuntimeConfig(workers=3, seed=1, verify_independence=True)
        server = RuntimeServer(Broker(market), config)
        results = server.run(
            [make_request(client=f"c{i}") for i in range(6)]
        )
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        for result in results:
            outcome = result.negotiation.outcome
            assert outcome is not None
            assert outcome.scheduler_independent is True

    def test_concurrent_levels_match_sequential_reference(
        self, market, make_request
    ):
        reference = Broker(market).negotiate(
            make_request(client="ref"), verify_scheduler_independence=True
        )
        assert reference.success

        config = RuntimeConfig(workers=4, seed=2, verify_independence=True)
        server = RuntimeServer(Broker(market), config)
        results = server.run(
            [make_request(client=f"c{i}") for i in range(8)]
        )
        levels = {r.sla.agreed_level for r in results}
        assert levels == {reference.sla.agreed_level}
