"""Property-based round-trip tests for the JSON wire format."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialization as ser
from repro.coalitions import TrustNetwork
from repro.constraints import (
    Polynomial,
    TableConstraint,
    constraints_equal,
    variable,
)
from repro.semirings import FuzzySemiring, WeightedSemiring
from repro.solver import SCSP, solve_exhaustive

FUZZY = FuzzySemiring()
WEIGHTED = WeightedSemiring()

_X = variable("x", (0, 1, 2))
_Y = variable("y", (0, 1))

fuzzy_levels = st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0))
weights = st.sampled_from((0.0, 1.0, 2.5, 7.0, float("inf")))


def table_strategy(semiring, scope, values):
    keys = list(itertools.product(*[v.domain for v in scope]))
    return st.lists(values, min_size=len(keys), max_size=len(keys)).map(
        lambda vs: TableConstraint(semiring, scope, dict(zip(keys, vs)))
    )


@settings(max_examples=50)
@given(table_strategy(FUZZY, (_X, _Y), fuzzy_levels))
def test_fuzzy_table_round_trip(constraint):
    clone = ser.constraint_from_dict(ser.constraint_to_dict(constraint))
    assert constraints_equal(constraint, clone)


@settings(max_examples=50)
@given(table_strategy(WEIGHTED, (_X,), weights))
def test_weighted_table_round_trip_including_infinity(constraint):
    clone = ser.constraint_from_dict(ser.constraint_to_dict(constraint))
    assert constraints_equal(constraint, clone)


@settings(max_examples=30)
@given(
    table_strategy(FUZZY, (_X,), fuzzy_levels),
    table_strategy(FUZZY, (_X, _Y), fuzzy_levels),
)
def test_problem_round_trip_preserves_blevel_and_optima(unary, binary):
    problem = SCSP([unary, binary], con=["x"])
    clone = ser.problem_from_dict(ser.problem_to_dict(problem))
    original = solve_exhaustive(problem)
    reloaded = solve_exhaustive(clone)
    assert original.blevel == reloaded.blevel
    assert {tuple(sorted(d.items())) for d in original.optima[0]} == {
        tuple(sorted(d.items())) for d in reloaded.optima[0]
    }


@settings(max_examples=50)
@given(
    st.dictionaries(
        st.tuples(
            st.sampled_from(("a", "b", "c")),
            st.sampled_from(("a", "b", "c")),
        ),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        max_size=9,
    )
)
def test_trust_network_round_trip(scores):
    network = TrustNetwork(["a", "b", "c"], scores, default=0.5)
    clone = ser.trust_network_from_dict(ser.trust_network_to_dict(network))
    assert clone.known_scores() == network.known_scores()
    assert clone.default == 0.5


@settings(max_examples=40)
@given(
    st.dictionaries(
        st.sampled_from(("x", "y")),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        max_size=2,
    ),
    st.floats(min_value=-10, max_value=10, allow_nan=False),
)
def test_polynomial_round_trip(terms, constant):
    polynomial = Polynomial.linear(terms, constant)
    clone = ser.polynomial_from_dict(ser.polynomial_to_dict(polynomial))
    assert clone == polynomial
