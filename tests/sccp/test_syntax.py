"""nmsccp abstract syntax: builders, grammar restrictions, substitution."""

import pytest

from repro.constraints import ConstantConstraint, FunctionConstraint, variable
from repro.sccp import (
    SUCCESS,
    Ask,
    Parallel,
    Sum,
    SyntaxError_,
    Tell,
    ask,
    call,
    choice,
    exists,
    nask,
    parallel,
    sequence,
    tell,
    update,
)


@pytest.fixture
def c(fuzzy):
    x = variable("x", [0, 1])
    return FunctionConstraint(fuzzy, (x,), lambda v: 0.5, name="c")


class TestBuilders:
    def test_tell_defaults_to_success(self, c):
        agent = tell(c)
        assert isinstance(agent, Tell)
        assert agent.continuation == SUCCESS

    def test_sequence_nests_continuations(self, c):
        agent = sequence(tell(c), ask(c), SUCCESS)
        assert isinstance(agent, Tell)
        assert isinstance(agent.continuation, Ask)
        assert agent.continuation.continuation == SUCCESS

    def test_sequence_requires_agent_tail(self, c):
        with pytest.raises(SyntaxError_):
            sequence(tell(c), "not an agent")

    def test_sequence_requires_prefixable_heads(self, c):
        with pytest.raises(SyntaxError_):
            sequence(SUCCESS, tell(c))

    def test_empty_sequence_is_success(self):
        assert sequence() == SUCCESS

    def test_parallel_folds_right(self, c):
        agent = parallel(tell(c), ask(c), nask(c))
        assert isinstance(agent, Parallel)
        assert isinstance(agent.right, Parallel)

    def test_parallel_single_agent_passthrough(self, c):
        assert parallel(tell(c)) == tell(c)

    def test_parallel_needs_agents(self):
        with pytest.raises(SyntaxError_):
            parallel()

    def test_then_replaces_continuation(self, c):
        first = tell(c)
        second = first.then(ask(c))
        assert first.continuation == SUCCESS
        assert isinstance(second.continuation, Ask)


class TestGrammarRestrictions:
    def test_sum_accepts_only_guards(self, c):
        valid = Sum([ask(c), nask(c)])
        assert len(valid.branches) == 2
        with pytest.raises(SyntaxError_, match="grammar E"):
            Sum([tell(c)])

    def test_sum_flattens_nested_sums(self, c):
        nested = Sum([Sum([ask(c), nask(c)]), ask(c)])
        assert len(nested.branches) == 3

    def test_choice_of_one_guard_unwrapped(self, c):
        assert isinstance(choice(ask(c)), Ask)

    def test_choice_rejects_non_guard_single(self, c):
        with pytest.raises(SyntaxError_):
            choice(tell(c))

    def test_empty_sum_rejected(self):
        with pytest.raises(SyntaxError_):
            Sum([])

    def test_update_needs_variables(self, c):
        with pytest.raises(SyntaxError_):
            update([], c)

    def test_check_semiring_must_match_constraint(self, c, weighted):
        from repro.sccp import interval

        with pytest.raises(SyntaxError_, match="check over"):
            tell(c, interval(weighted, lower=5.0, upper=0.0))


class TestSubstitution:
    def test_tell_substitution_renames_constraint(self, fuzzy):
        x = variable("x", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        agent = tell(con).substitute({"x": "y"})
        assert agent.constraint.support == ("y",)

    def test_substitution_reaches_continuation(self, fuzzy):
        x = variable("x", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        agent = sequence(tell(con), ask(con), SUCCESS).substitute({"x": "y"})
        assert agent.constraint.support == ("y",)
        assert agent.continuation.constraint.support == ("y",)

    def test_exists_shields_bound_variable(self, fuzzy):
        x = variable("x", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        hidden = exists("x", tell(con))
        renamed = hidden.substitute({"x": "y"})
        # the bound x must not be renamed
        assert renamed.body.constraint.support == ("x",)

    def test_exists_renames_free_variables(self, fuzzy):
        x = variable("x", [0, 1])
        z = variable("z", [0, 1])
        con = FunctionConstraint(fuzzy, (x, z), lambda a, b: 0.5)
        hidden = exists("x", tell(con))
        renamed = hidden.substitute({"z": "w"})
        assert set(renamed.body.constraint.support) == {"x", "w"}

    def test_update_substitution_renames_target_variables(self, fuzzy):
        con = ConstantConstraint(fuzzy, 0.5)
        agent = update(["x", "z"], con).substitute({"x": "y"})
        assert agent.variables == ("y", "z")

    def test_call_substitution_renames_actuals(self):
        agent = call("p", "x", "z").substitute({"x": "y"})
        assert agent.actuals == ("y", "z")

    def test_substitution_renames_check_thresholds(self, fuzzy):
        from repro.sccp import CheckSpec

        x = variable("x", [0, 1])
        phi = FunctionConstraint(fuzzy, (x,), lambda v: 0.9)
        con = ConstantConstraint(fuzzy, 0.5)
        agent = tell(con, CheckSpec(fuzzy, upper=phi)).substitute({"x": "y"})
        assert agent.check.upper.support == ("y",)


class TestDescribe:
    def test_describe_round_trips_structure(self, c):
        agent = parallel(sequence(tell(c), ask(c), SUCCESS), nask(c))
        text = agent.describe()
        assert "tell" in text and "ask" in text and "nask" in text
        assert "‖" in text

    def test_success_description(self):
        assert SUCCESS.describe() == "success"

    def test_exists_description(self, c):
        assert exists("x", tell(c)).describe().startswith("∃x.")

    def test_call_description(self):
        assert call("p", "a", "b").describe() == "p(a, b)"
