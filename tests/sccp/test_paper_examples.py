"""The paper's negotiation Examples 1–3, verbatim (Sec. 4.1)."""


from repro.constraints import (
    Polynomial,
    constraints_equal,
    polynomial_constraint,
)
from repro.sccp import (
    SUCCESS,
    RandomScheduler,
    Status,
    ask,
    explore,
    interval,
    parallel,
    retract,
    run,
    sequence,
    tell,
    update,
)


def example1_agents(weighted, fig7, sync_flags):
    p1 = sequence(
        tell(fig7["c4"]),
        tell(sync_flags["sp2"]),
        ask(sync_flags["sp1"], interval(weighted, lower=10.0, upper=2.0)),
        SUCCESS,
    )
    p2 = sequence(
        tell(fig7["c3"]),
        tell(sync_flags["sp1"]),
        ask(sync_flags["sp2"], interval(weighted, lower=4.0, upper=1.0)),
        SUCCESS,
    )
    return parallel(p1, p2)


class TestExample1:
    def test_negotiation_fails_with_consistency_5(
        self, weighted, fig7, sync_flags
    ):
        agents = example1_agents(weighted, fig7, sync_flags)
        result = run(agents, semiring=weighted)
        assert result.status is Status.DEADLOCK
        assert result.consistency() == 5.0

    def test_merged_store_is_3x_plus_5(self, weighted, fig7, sync_flags):
        agents = example1_agents(weighted, fig7, sync_flags)
        result = run(agents, semiring=weighted)
        target = polynomial_constraint(
            weighted, [fig7["x"]], Polynomial.linear({"x": 3}, 5)
        )
        assert constraints_equal(result.store.project(["x"]), target)

    def test_failure_is_scheduler_independent(
        self, weighted, fig7, sync_flags
    ):
        agents = example1_agents(weighted, fig7, sync_flags)
        exploration = explore(agents, semiring=weighted)
        assert exploration.never_succeeds
        assert len(exploration.deadlocks) >= 1

    def test_failure_under_random_schedules(self, weighted, fig7, sync_flags):
        for seed in range(5):
            agents = example1_agents(weighted, fig7, sync_flags)
            result = run(
                agents, semiring=weighted, scheduler=RandomScheduler(seed)
            )
            assert result.status is Status.DEADLOCK

    def test_p1_alone_would_succeed(self, weighted, fig7, sync_flags):
        """P1's interval [2, 10] admits σ⇓∅ = 5 — only P2 blocks."""
        p1 = sequence(
            tell(fig7["c4"]),
            tell(fig7["c3"]),  # play both policies into the store
            tell(sync_flags["sp1"]),
            ask(sync_flags["sp1"], interval(weighted, lower=10.0, upper=2.0)),
            SUCCESS,
        )
        result = run(p1, semiring=weighted)
        assert result.status is Status.SUCCESS


class TestExample2:
    def build(self, weighted, fig7, sync_flags):
        p1 = sequence(
            tell(fig7["c4"]),
            tell(sync_flags["sp2"]),
            ask(sync_flags["sp1"], interval(weighted, lower=10.0, upper=2.0)),
            retract(fig7["c1"], interval(weighted, lower=10.0, upper=2.0)),
            SUCCESS,
        )
        p2 = sequence(
            tell(fig7["c3"]),
            tell(sync_flags["sp1"]),
            ask(sync_flags["sp2"], interval(weighted, lower=4.0, upper=1.0)),
            SUCCESS,
        )
        return parallel(p1, p2)

    def test_both_succeed_at_consistency_2(self, weighted, fig7, sync_flags):
        result = run(self.build(weighted, fig7, sync_flags), semiring=weighted)
        assert result.status is Status.SUCCESS
        assert result.consistency() == 2.0

    def test_final_store_is_2x_plus_2(self, weighted, fig7, sync_flags):
        result = run(self.build(weighted, fig7, sync_flags), semiring=weighted)
        target = polynomial_constraint(
            weighted, [fig7["x"]], Polynomial.linear({"x": 2}, 2)
        )
        assert constraints_equal(result.store.project(["x"]), target)

    def test_success_is_scheduler_independent(
        self, weighted, fig7, sync_flags
    ):
        exploration = explore(
            self.build(weighted, fig7, sync_flags), semiring=weighted
        )
        assert exploration.always_succeeds
        assert set(exploration.success_consistencies()) == {2.0}

    def test_retract_used_c1_never_told(self, weighted, fig7):
        """The paper stresses c1 was never told — retract still works
        because the merged store entails it (partial removal)."""
        from repro.constraints import empty_store

        store = (
            empty_store(weighted).tell(fig7["c4"]).tell(fig7["c3"])
        )
        assert store.entails(fig7["c1"])


class TestExample3:
    def test_update_yields_y_plus_4(self, weighted, fig7):
        agent = sequence(tell(fig7["c1"]), update(["x"], fig7["c2"]), SUCCESS)
        result = run(agent, semiring=weighted)
        assert result.status is Status.SUCCESS
        target = polynomial_constraint(
            weighted, [fig7["y"]], Polynomial.linear({"y": 1}, 4)
        )
        assert constraints_equal(result.store.constraint, target)

    def test_constant_3_survives_from_old_policy(self, weighted, fig7):
        """'the 3 component of the final store derives from the old c1'"""
        agent = sequence(tell(fig7["c1"]), update(["x"], fig7["c2"]), SUCCESS)
        result = run(agent, semiring=weighted)
        assert result.store.value({"y": 0}) == 4.0  # 3 (from c1) + 1

    def test_consistency_now_depends_only_on_y(self, weighted, fig7):
        agent = sequence(tell(fig7["c1"]), update(["x"], fig7["c2"]), SUCCESS)
        result = run(agent, semiring=weighted)
        assert result.store.support == ("y",)
