"""The transition rules R1–R10, one by one (paper Fig. 4)."""

import pytest

from repro.constraints import (
    FunctionConstraint,
    empty_store,
    integer_variable,
    variable,
)
from repro.sccp import (
    SUCCESS,
    Configuration,
    ProcedureTable,
    ask,
    call,
    exists,
    interval,
    nask,
    parallel,
    retract,
    successors,
    tell,
    update,
    Sum,
)


@pytest.fixture
def fuzzy_setup(fuzzy):
    x = variable("x", [0, 1, 2])
    strong = FunctionConstraint(
        fuzzy, (x,), lambda v: 0.9 if v == 0 else 0.1, name="strong"
    )
    weak = FunctionConstraint(fuzzy, (x,), lambda v: 0.9, name="weak")
    return x, strong, weak


def step_once(agent, store, procedures=None):
    from repro.sccp import EMPTY_PROCEDURES

    return successors(
        Configuration(agent, store), procedures or EMPTY_PROCEDURES
    )


class TestR1Tell:
    def test_tell_adds_constraint(self, fuzzy, fuzzy_setup):
        x, strong, _ = fuzzy_setup
        steps = step_once(tell(strong), empty_store(fuzzy))
        assert len(steps) == 1
        assert steps[0].rule == "R1-Tell"
        assert steps[0].configuration.store.entails(strong)

    def test_tell_checks_next_step_store(self, fuzzy, fuzzy_setup):
        x, strong, _ = fuzzy_setup
        # after telling, σ⇓∅ = 0.9; a lower bound of 0.95 must block it
        blocked = tell(strong, interval(fuzzy, lower=0.95, upper=None))
        assert step_once(blocked, empty_store(fuzzy)) == []
        allowed = tell(strong, interval(fuzzy, lower=0.9, upper=None))
        assert len(step_once(allowed, empty_store(fuzzy))) == 1


class TestR2Ask:
    def test_ask_enabled_when_entailed(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(strong)
        steps = step_once(ask(weak), store)
        assert len(steps) == 1
        assert steps[0].rule == "R2-Ask"
        # ask does not change the store
        assert steps[0].configuration.store is store

    def test_ask_blocked_when_not_entailed(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(weak)
        assert step_once(ask(strong), store) == []

    def test_ask_checks_current_store(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(strong)  # σ⇓∅ = 0.9
        blocked = ask(weak, interval(fuzzy, lower=0.95, upper=None))
        assert step_once(blocked, store) == []


class TestR6Nask:
    def test_nask_enabled_when_absent(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(weak)
        steps = step_once(nask(strong), store)
        assert len(steps) == 1
        assert steps[0].rule == "R6-Nask"

    def test_nask_blocked_when_entailed(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(strong)
        assert step_once(nask(weak), store) == []


class TestR7Retract:
    def test_retract_divides_store(self, weighted):
        x = integer_variable("x", 5)
        sigma = FunctionConstraint(weighted, (x,), lambda v: 3.0 * v + 5)
        c = FunctionConstraint(weighted, (x,), lambda v: v + 3.0)
        store = empty_store(weighted).tell(sigma)
        steps = step_once(retract(c), store)
        assert len(steps) == 1
        assert steps[0].rule == "R7-Retract"
        assert steps[0].configuration.store.value({"x": 1}) == 4.0  # 2x+2

    def test_retract_blocked_without_entailment(self, weighted):
        x = integer_variable("x", 5)
        sigma = FunctionConstraint(weighted, (x,), lambda v: float(v))
        c = FunctionConstraint(weighted, (x,), lambda v: v + 3.0)
        store = empty_store(weighted).tell(sigma)
        assert step_once(retract(c), store) == []

    def test_retract_checks_resulting_store(self, weighted):
        x = integer_variable("x", 5)
        sigma = FunctionConstraint(weighted, (x,), lambda v: 3.0 * v + 5)
        c = FunctionConstraint(weighted, (x,), lambda v: v + 3.0)
        store = empty_store(weighted).tell(sigma)
        # resulting consistency is 2; demanding at least 1 (upper bound
        # numerically) blocks a result that good? No: upper=1 means the
        # store must cost at least 1 hour — 2 passes; lower=1 fails.
        assert step_once(
            retract(c, interval(weighted, lower=10.0, upper=1.0)), store
        )
        assert (
            step_once(
                retract(c, interval(weighted, lower=1.0, upper=0.0)), store
            )
            == []
        )


class TestR8Update:
    def test_update_refreshes_variables(self, weighted):
        x = integer_variable("x", 5)
        y = integer_variable("y", 5)
        c1 = FunctionConstraint(weighted, (x,), lambda v: v + 3.0)
        c2 = FunctionConstraint(weighted, (y,), lambda v: v + 1.0)
        store = empty_store(weighted).tell(c1)
        steps = step_once(update(["x"], c2), store)
        assert len(steps) == 1
        assert steps[0].rule == "R8-Update"
        new_store = steps[0].configuration.store
        assert "x" not in new_store.support
        assert new_store.value({"y": 0}) == 4.0


class TestR5Sum:
    def test_all_enabled_guards_offered(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(strong)
        both = Sum([ask(weak), ask(strong)])
        steps = step_once(both, store)
        assert len(steps) == 2
        assert all(step.rule == "R5-Nondet" for step in steps)

    def test_only_enabled_guards_offered(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        store = empty_store(fuzzy).tell(weak)
        mixed = Sum([ask(strong), nask(strong)])
        steps = step_once(mixed, store)
        assert len(steps) == 1
        assert "choose#1" in steps[0].action


class TestR3R4Parallel:
    def test_interleaving_offers_both_sides(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        agent = parallel(tell(strong), tell(weak))
        steps = step_once(agent, empty_store(fuzzy))
        assert len(steps) == 2
        assert {step.action[:2] for step in steps} == {"L:", "R:"}

    def test_terminating_side_disappears(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        agent = parallel(tell(strong), tell(weak))
        steps = step_once(agent, empty_store(fuzzy))
        left_step = next(s for s in steps if s.action.startswith("L:"))
        # tell's continuation is success, so R4 reduces A ‖ B to B
        assert left_step.rule == "R4-Parall2"
        assert left_step.configuration.agent == tell(weak)

    def test_nonterminating_side_stays_parallel(self, fuzzy, fuzzy_setup):
        _, strong, weak = fuzzy_setup
        from repro.sccp import Parallel, sequence

        agent = parallel(sequence(tell(strong), ask(weak), SUCCESS), tell(weak))
        steps = step_once(agent, empty_store(fuzzy))
        left_step = next(s for s in steps if s.action.startswith("L:"))
        assert left_step.rule == "R3-Parall1"
        assert isinstance(left_step.configuration.agent, Parallel)


class TestR9Hide:
    def test_hidden_variable_renamed_fresh(self, fuzzy):
        x = variable("x", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        agent = exists("x", tell(con))
        steps = step_once(agent, empty_store(fuzzy))
        assert len(steps) == 1
        assert steps[0].rule == "R9-Hide"
        support = steps[0].configuration.store.support
        assert support != ("x",)
        assert support[0].startswith("x'")

    def test_fresh_names_never_repeat(self, fuzzy):
        x = variable("x", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        agent = exists("x", tell(con))
        first = step_once(agent, empty_store(fuzzy))[0]
        second = step_once(agent, empty_store(fuzzy))[0]
        assert (
            first.configuration.store.support
            != second.configuration.store.support
        )


class TestR10Call:
    def test_call_expands_and_steps(self, fuzzy):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        procedures = ProcedureTable()
        procedures.declare("p", ["x"], tell(con))
        steps = step_once(call("p", "y"), empty_store(fuzzy), procedures)
        assert len(steps) == 1
        assert steps[0].rule == "R10-PCall"
        assert steps[0].configuration.store.support == ("y",)

    def test_success_has_no_successors(self, fuzzy):
        assert step_once(SUCCESS, empty_store(fuzzy)) == []
