"""The check function C1–C4 (paper Fig. 3)."""

import pytest

from repro.constraints import (
    ConstantConstraint,
    FunctionConstraint,
    empty_store,
    integer_variable,
)
from repro.sccp import CheckError, CheckSpec, interval, unchecked


@pytest.fixture
def weighted_store(weighted):
    """A store with consistency 5 (the paper's Example 1 store)."""
    x = integer_variable("x", 10)
    sigma = FunctionConstraint(weighted, (x,), lambda v: 3.0 * v + 5)
    return empty_store(weighted).tell(sigma)


class TestC1LevelInterval:
    def test_classification(self, weighted):
        spec = interval(weighted, lower=10.0, upper=2.0)
        assert spec.case == "C1"

    def test_paper_example1_interval(self, weighted, weighted_store):
        # σ⇓∅ = 5 is inside [2, 10] hours but outside [1, 4].
        assert interval(weighted, lower=10.0, upper=2.0).holds(weighted_store)
        assert not interval(weighted, lower=4.0, upper=1.0).holds(
            weighted_store
        )

    def test_boundary_values_included(self, weighted, weighted_store):
        assert interval(weighted, lower=5.0, upper=5.0).holds(weighted_store)

    def test_upper_violation(self, weighted, weighted_store):
        # store too good: best allowed is 7 hours, store has 5
        assert not interval(weighted, lower=20.0, upper=7.0).holds(
            weighted_store
        )

    def test_open_sides(self, weighted, weighted_store):
        assert interval(weighted, lower=None, upper=2.0).holds(weighted_store)
        assert interval(weighted, lower=10.0, upper=None).holds(
            weighted_store
        )

    def test_unchecked_always_true(self, weighted, weighted_store):
        assert unchecked(weighted).holds(weighted_store)

    def test_intrinsically_wrong_interval_rejected(self, weighted):
        # lower (worst acceptable) strictly better than upper: 2 >S 5
        with pytest.raises(CheckError, match="intrinsically wrong"):
            interval(weighted, lower=2.0, upper=5.0)

    def test_fuzzy_interval(self, fuzzy):
        store = empty_store(fuzzy).tell(ConstantConstraint(fuzzy, 0.6))
        assert interval(fuzzy, lower=0.5, upper=0.8).holds(store)
        assert not interval(fuzzy, lower=0.7, upper=1.0).holds(store)
        assert not interval(fuzzy, lower=0.0, upper=0.5).holds(store)


class TestConstraintThresholds:
    def test_c2_classification(self, weighted):
        x = integer_variable("x", 5)
        phi = FunctionConstraint(weighted, (x,), lambda v: float(v))
        spec = CheckSpec(weighted, lower=10.0, upper=phi)
        assert spec.case == "C2"

    def test_c2_upper_constraint(self, weighted, weighted_store):
        x = integer_variable("x", 10)
        # φ2 = 2x (cheaper than σ = 3x+5 everywhere): σ ⊑ φ2 holds.
        phi2 = FunctionConstraint(weighted, (x,), lambda v: 2.0 * v)
        assert CheckSpec(weighted, lower=20.0, upper=phi2).holds(
            weighted_store
        )
        # φ2' = 4x+9 (worse than σ): σ ⋢ φ2'.
        phi2_bad = FunctionConstraint(weighted, (x,), lambda v: 4.0 * v + 9)
        assert not CheckSpec(weighted, lower=20.0, upper=phi2_bad).holds(
            weighted_store
        )

    def test_c3_lower_constraint(self, weighted, weighted_store):
        x = integer_variable("x", 10)
        # φ1 = 5x+20 is worse than σ everywhere: σ ⊒ φ1 holds.
        phi1 = FunctionConstraint(weighted, (x,), lambda v: 5.0 * v + 20)
        spec = CheckSpec(weighted, lower=phi1, upper=2.0)
        assert spec.case == "C3"
        assert spec.holds(weighted_store)
        # φ1' = x+2 (better than σ on most points): σ is worse than the
        # worst acceptable constraint, so the check must fail.
        phi1_bad = FunctionConstraint(weighted, (x,), lambda v: v + 2.0)
        assert not CheckSpec(weighted, lower=phi1_bad, upper=2.0).holds(
            weighted_store
        )

    def test_c3_lower_best_level_better_than_upper_rejected(self, weighted):
        x = integer_variable("x", 10)
        # φ1 = x has best level 0, strictly better than the upper 2.0:
        # the parenthesized Fig. 3 condition φ1⇓∅ ≯ a2 is violated.
        phi1 = FunctionConstraint(weighted, (x,), lambda v: float(v))
        with pytest.raises(CheckError, match="intrinsically wrong"):
            CheckSpec(weighted, lower=phi1, upper=2.0)

    def test_c4_both_constraints(self, weighted, weighted_store):
        x = integer_variable("x", 10)
        phi1 = FunctionConstraint(weighted, (x,), lambda v: 5.0 * v + 20)
        phi2 = FunctionConstraint(weighted, (x,), lambda v: 1.0 * v)
        spec = CheckSpec(weighted, lower=phi1, upper=phi2)
        assert spec.case == "C4"
        assert spec.holds(weighted_store)

    def test_c4_wrong_interval_rejected(self, weighted):
        x = integer_variable("x", 5)
        better = FunctionConstraint(weighted, (x,), lambda v: float(v))
        worse = FunctionConstraint(weighted, (x,), lambda v: v + 10.0)
        # lower=better, upper=worse violates φ1 ⊑ φ2
        with pytest.raises(CheckError):
            CheckSpec(weighted, lower=better, upper=worse)

    def test_cross_semiring_threshold_rejected(self, weighted, fuzzy):
        with pytest.raises(CheckError, match="lives in"):
            CheckSpec(weighted, lower=ConstantConstraint(fuzzy, 0.5))

    def test_invalid_level_rejected(self, fuzzy):
        from repro.semirings import SemiringError

        with pytest.raises(SemiringError):
            CheckSpec(fuzzy, lower=2.5)


class TestPartialOrderChecks:
    def test_incomparable_consistency_passes_level_bounds(self, setbased):
        # On Set semirings ¬(<) admits incomparable stores — Fig. 3 uses
        # the negated forms precisely for this.
        store = empty_store(setbased).tell(
            ConstantConstraint(setbased, frozenset({"read"}))
        )
        lower = frozenset({"write"})  # incomparable with {read}
        spec = CheckSpec(setbased, lower=lower, upper=None)
        assert spec.holds(store)
