"""Scheduled runs, deadlock detection and exhaustive exploration."""

import pytest

from repro.constraints import (
    ConstantConstraint,
    FunctionConstraint,
    variable,
)
from repro.sccp import (
    SUCCESS,
    DeterministicScheduler,
    ProcedureTable,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    Status,
    Sum,
    ask,
    call,
    explore,
    nask,
    parallel,
    run,
    sequence,
    tell,
)


@pytest.fixture
def flags(fuzzy):
    a_var = variable("a", [0, 1])
    b_var = variable("b", [0, 1])
    flag_a = FunctionConstraint(
        fuzzy, (a_var,), lambda v: 1.0 if v == 1 else 0.0, name="flag_a"
    )
    flag_b = FunctionConstraint(
        fuzzy, (b_var,), lambda v: 1.0 if v == 1 else 0.0, name="flag_b"
    )
    return flag_a, flag_b


class TestRun:
    def test_success_run(self, fuzzy, flags):
        flag_a, _ = flags
        result = run(tell(flag_a), semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.succeeded
        assert result.steps == 1
        assert result.store.entails(flag_a)

    def test_deadlock_on_blocked_ask(self, fuzzy, flags):
        flag_a, _ = flags
        result = run(ask(flag_a), semiring=fuzzy)
        assert result.status is Status.DEADLOCK
        assert not result.succeeded

    def test_producer_consumer_synchronization(self, fuzzy, flags):
        flag_a, flag_b = flags
        producer = tell(flag_a)
        consumer = sequence(ask(flag_a), tell(flag_b), SUCCESS)
        result = run(parallel(consumer, producer), semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.store.entails(flag_b)

    def test_needs_store_or_semiring(self, flags):
        flag_a, _ = flags
        with pytest.raises(ValueError):
            run(tell(flag_a))

    def test_max_steps_reports_exhaustion(self, fuzzy, flags):
        flag_a, flag_b = flags
        procedures = ProcedureTable()
        # an endless ping-pong loop
        procedures.declare(
            "loop", [], sequence(tell(flag_a), call("loop"))
        )
        result = run(
            call("loop"), semiring=fuzzy, procedures=procedures, max_steps=25
        )
        assert result.status is Status.EXHAUSTED
        assert result.steps == 25

    def test_trace_records_rules_and_consistency(self, fuzzy, flags):
        flag_a, flag_b = flags
        result = run(
            sequence(tell(flag_a), tell(flag_b), SUCCESS), semiring=fuzzy
        )
        assert result.trace.rules_applied() == ["R1-Tell", "R1-Tell"]
        assert result.trace.consistencies() == [1.0, 1.0]

    def test_run_result_consistency_shortcut(self, fuzzy, flags):
        flag_a, _ = flags
        result = run(tell(flag_a), semiring=fuzzy)
        assert result.consistency() == result.store.consistency()


class TestSchedulers:
    def test_deterministic_prefers_left(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = parallel(tell(flag_a), tell(flag_b))
        result = run(agent, semiring=fuzzy, scheduler=DeterministicScheduler())
        assert result.trace.events[0].action.startswith("L:")

    def test_random_scheduler_reproducible_with_seed(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = parallel(tell(flag_a), tell(flag_b))
        first = run(agent, semiring=fuzzy, scheduler=RandomScheduler(seed=3))
        second = run(agent, semiring=fuzzy, scheduler=RandomScheduler(seed=3))
        assert [e.action for e in first.trace] == [
            e.action for e in second.trace
        ]

    def test_scripted_scheduler_follows_script(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = parallel(tell(flag_a), tell(flag_b))
        result = run(
            agent, semiring=fuzzy, scheduler=ScriptedScheduler([1])
        )
        assert result.trace.events[0].action.startswith("R:")

    def test_round_robin_rotates(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = parallel(
            sequence(tell(flag_a), tell(flag_a), SUCCESS),
            sequence(tell(flag_b), tell(flag_b), SUCCESS),
        )
        result = run(agent, semiring=fuzzy, scheduler=RoundRobinScheduler())
        assert result.status is Status.SUCCESS

    def test_all_schedulers_reach_same_confluent_result(self, fuzzy, flags):
        # tells commute: every scheduler must reach the same final store
        flag_a, flag_b = flags
        agent = parallel(tell(flag_a), tell(flag_b))
        stores = []
        for scheduler in (
            DeterministicScheduler(),
            RandomScheduler(seed=1),
            RoundRobinScheduler(),
            ScriptedScheduler([1, 0]),
        ):
            result = run(agent, semiring=fuzzy, scheduler=scheduler)
            assert result.status is Status.SUCCESS
            stores.append(result.store)
        from repro.constraints import constraints_equal

        for store in stores[1:]:
            assert constraints_equal(stores[0].constraint, store.constraint)


class TestExplore:
    def test_confluent_program_always_succeeds(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = parallel(tell(flag_a), tell(flag_b))
        result = explore(agent, semiring=fuzzy)
        assert result.always_succeeds
        assert not result.deadlocks

    def test_blocked_program_never_succeeds(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = parallel(ask(flag_a), ask(flag_b))
        result = explore(agent, semiring=fuzzy)
        assert result.never_succeeds
        assert result.deadlocks

    def test_choice_dependent_outcome_is_neither(self, fuzzy, flags):
        flag_a, flag_b = flags
        # one branch succeeds, the other blocks forever afterwards
        agent = Sum(
            [
                nask(flag_a, then=tell(flag_a)),
                nask(flag_b, then=ask(flag_a)),
            ]
        )
        result = explore(agent, semiring=fuzzy)
        assert result.successes and result.deadlocks
        assert not result.always_succeeds
        assert not result.never_succeeds

    def test_distinct_terminal_stores_reported(self, fuzzy, flags):
        flag_a, flag_b = flags
        agent = Sum(
            [
                nask(flag_a, then=tell(flag_a)),
                nask(flag_b, then=tell(flag_b)),
            ]
        )
        result = explore(agent, semiring=fuzzy)
        assert len(result.successes) == 2

    def test_livelock_with_finite_stores_terminates(self, fuzzy, flags):
        # Re-telling an idempotent constraint loops over a *finite* store
        # lattice: dedup closes the exploration without truncation, and
        # there is no terminal state at all.
        flag_a, _ = flags
        procedures = ProcedureTable()
        procedures.declare("loop", [], sequence(tell(flag_a), call("loop")))
        result = explore(
            call("loop"), semiring=fuzzy, procedures=procedures
        )
        assert not result.truncated
        assert result.never_succeeds
        assert not result.deadlocks

    def test_truncation_reported_on_growing_stores(self, weighted):
        # On the Weighted semiring each re-tell adds cost: the store keeps
        # changing, the state space is infinite, the budget must trip.
        from repro.constraints import ConstantConstraint

        cost = ConstantConstraint(weighted, 1.0)
        procedures = ProcedureTable()
        procedures.declare("spend", [], sequence(tell(cost), call("spend")))
        result = explore(
            call("spend"),
            semiring=weighted,
            procedures=procedures,
            max_configurations=5,
        )
        assert result.truncated

    def test_success_consistencies(self, fuzzy, flags):
        flag_a, _ = flags
        result = explore(tell(flag_a), semiring=fuzzy)
        assert result.success_consistencies() == [1.0]
