"""The timed nmsccp extension: delay, timeout, maximal progress."""

import pytest

from repro.constraints import FunctionConstraint, variable
from repro.sccp import (
    SUCCESS,
    Status,
    SyntaxError_,
    ask,
    interval,
    parallel,
    retract,
    sequence,
    tell,
)
from repro.sccp.timed import Delay, Timeout, delay, tick, timed_run, timeout


@pytest.fixture
def flag(fuzzy):
    flag_var = variable("f", [0, 1])
    return FunctionConstraint(
        fuzzy, (flag_var,), lambda v: 1.0 if v == 1 else 0.0, name="flag"
    )


class TestDelay:
    def test_delay_postpones_action(self, fuzzy, flag):
        result = timed_run(delay(3, tell(flag)), semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.ticks == 3
        assert result.store.entails(flag)

    def test_zero_delay_is_transparent(self, fuzzy, flag):
        result = timed_run(delay(0, tell(flag)), semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.ticks == 0

    def test_negative_delay_rejected(self, flag):
        with pytest.raises(SyntaxError_):
            delay(-1, tell(flag))

    def test_parallel_delay_lets_other_side_work_first(self, fuzzy, flag):
        consumer = ask(flag)
        producer = delay(2, tell(flag))
        result = timed_run(parallel(consumer, producer), semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.ticks == 2

    def test_substitution_reaches_delayed_body(self, fuzzy, flag):
        agent = delay(1, tell(flag)).substitute({"f": "g"})
        assert agent.body.constraint.support == ("g",)


class TestTimeout:
    def test_guard_fires_when_enabled(self, fuzzy, flag):
        agent = parallel(
            timeout(ask(flag), 5, tell(flag)),  # fallback never needed
            tell(flag),
        )
        result = timed_run(agent, semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.ticks == 0

    def test_fallback_after_expiry(self, fuzzy, flag):
        # nobody ever tells the flag: the guard cannot fire; after 3
        # ticks the fallback tells it itself.
        agent = timeout(ask(flag), 3, tell(flag))
        result = timed_run(agent, semiring=fuzzy)
        assert result.status is Status.SUCCESS
        assert result.ticks == 4  # 3 waiting ticks + expiry tick
        assert result.store.entails(flag)

    def test_timeout_guard_must_be_ask_or_nask(self, flag):
        with pytest.raises(SyntaxError_, match="ask or nask"):
            timeout(tell(flag), 2, SUCCESS)

    def test_timed_retract_scenario(self, weighted, fig7):
        """The paper's motivation: a provider relaxes its policy when the
        negotiation stalls — retract c1 after a timeout."""
        blocked_guard = ask(
            fig7["c1"], interval(weighted, lower=4.0, upper=1.0)
        )
        provider = sequence(
            tell(fig7["c4"]),
            tell(fig7["c3"]),
            SUCCESS,
        )
        relaxer = timeout(
            blocked_guard,
            2,
            retract(fig7["c1"], interval(weighted, lower=10.0, upper=2.0)),
        )
        result = timed_run(parallel(provider, relaxer), semiring=weighted)
        assert result.status is Status.SUCCESS
        # after the timed retract the store is 2x+2 with consistency 2
        assert result.consistency() == 2.0
        assert result.ticks >= 1


class TestTick:
    def test_tick_decrements_delay(self, flag):
        agent = Delay(2, tell(flag))
        ticked = tick(agent)
        assert isinstance(ticked, Delay)
        assert ticked.ticks == 1
        assert tick(ticked) == tell(flag)

    def test_tick_expires_timeout_to_fallback(self, flag):
        agent = Timeout(ask(flag), 0, tell(flag))
        assert tick(agent) == tell(flag)

    def test_tick_descends_into_parallel(self, flag):
        agent = parallel(Delay(1, tell(flag)), ask(flag))
        ticked = tick(agent)
        assert ticked.left == tell(flag)

    def test_tick_on_untimed_agent_is_identity(self, flag):
        agent = ask(flag)
        assert tick(agent) == agent


class TestTimedDeadlock:
    def test_blocked_untimed_agent_deadlocks(self, fuzzy, flag):
        result = timed_run(ask(flag), semiring=fuzzy)
        assert result.status is Status.DEADLOCK

    def test_tick_budget_reports_exhaustion(self, fuzzy, flag):
        # an infinite chain of delays around an unsatisfiable ask
        agent = delay(5, ask(flag))
        result = timed_run(agent, semiring=fuzzy, max_ticks=3)
        assert result.status is Status.EXHAUSTED
        assert result.ticks >= 3

    def test_describe_renders_timing(self, flag):
        assert "delay(2)" in delay(2, tell(flag)).describe()
        assert "timeout(" in timeout(ask(flag), 1, SUCCESS).describe()
