"""Procedure declarations and parameter passing (rule R10)."""

import pytest

from repro.constraints import FunctionConstraint, variable
from repro.sccp import (
    ProcedureError,
    ProcedureTable,
    Status,
    SyntaxError_,
    call,
    run,
    sequence,
    tell,
    SUCCESS,
)


@pytest.fixture
def table(fuzzy):
    x = variable("x", [0, 1])
    con = FunctionConstraint(fuzzy, (x,), lambda v: 0.8, name="body")
    procedures = ProcedureTable()
    procedures.declare("p", ["x"], tell(con))
    return procedures, con


class TestDeclaration:
    def test_declare_and_contains(self, table):
        procedures, _ = table
        assert "p" in procedures
        assert list(procedures.names()) == ["p"]
        assert len(procedures) == 1

    def test_duplicate_declaration_rejected(self, table, fuzzy):
        procedures, con = table
        with pytest.raises(ProcedureError, match="already declared"):
            procedures.declare("p", ["z"], tell(con))

    def test_duplicate_formals_rejected(self, fuzzy):
        x = variable("x", [0, 1])
        con = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        procedures = ProcedureTable()
        with pytest.raises(ProcedureError, match="duplicate formal"):
            procedures.declare("q", ["x", "x"], tell(con))


class TestExpansion:
    def test_expand_renames_formals(self, table):
        procedures, _ = table
        body = procedures.expand(call("p", "y"))
        assert body.constraint.support == ("y",)

    def test_expand_identity_when_actual_equals_formal(self, table):
        procedures, _ = table
        body = procedures.expand(call("p", "x"))
        assert body.constraint.support == ("x",)

    def test_unknown_procedure(self, table):
        procedures, _ = table
        with pytest.raises(ProcedureError, match="unknown procedure"):
            procedures.expand(call("q"))

    def test_arity_mismatch(self, table):
        procedures, _ = table
        with pytest.raises(ProcedureError, match="expects 1"):
            procedures.expand(call("p", "a", "b"))

    def test_aliasing_actuals_rejected(self, fuzzy):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        con = FunctionConstraint(fuzzy, (x, y), lambda a, b: 0.5)
        procedures = ProcedureTable()
        procedures.declare("r", ["x", "y"], tell(con))
        with pytest.raises(SyntaxError_, match="alias"):
            procedures.expand(call("r", "z", "z"))


class TestRecursion:
    def test_bounded_recursion_via_guard(self, fuzzy):
        """A recursive countdown: tell progressively weaker constraints,
        stopping when the store already entails the next one."""
        from repro.sccp import nask, Sum, ask

        x = variable("x", [0, 1])
        marker = FunctionConstraint(
            fuzzy, (x,), lambda v: 1.0 if v == 1 else 0.0, name="marker"
        )
        procedures = ProcedureTable()
        procedures.declare(
            "settle",
            [],
            Sum(
                [
                    nask(marker, then=sequence(tell(marker), call("settle"))),
                    ask(marker, then=SUCCESS),
                ]
            ),
        )
        result = run(call("settle"), semiring=fuzzy, procedures=procedures)
        assert result.status is Status.SUCCESS
        assert result.store.entails(marker)

    def test_mutual_recursion_terminates_on_guard(self, fuzzy):
        from repro.sccp import Sum, ask, nask

        x = variable("x", [0, 1])
        flag = FunctionConstraint(
            fuzzy, (x,), lambda v: 1.0 if v == 1 else 0.0
        )
        procedures = ProcedureTable()
        procedures.declare(
            "ping", [], Sum([nask(flag, then=call("pong")), ask(flag)])
        )
        procedures.declare("pong", [], tell(flag, then=call("ping")))
        result = run(call("ping"), semiring=fuzzy, procedures=procedures)
        assert result.status is Status.SUCCESS
