"""Round-robin fairness: no agent starves, ever (PR 2 satellite).

The paper's ‖ is fair only if the scheduler is: a scheduler that always
favours the leftmost enabled step can starve the right agent for the
whole run.  :class:`RoundRobinScheduler` rotates its pick, so over N
steps with k simultaneously enabled steps every position is chosen
⌊N/k⌋ or ⌈N/k⌉ times — and in a parallel composition of always-enabled
agents, progress interleaves step for step.
"""

from collections import Counter

import pytest

from repro.constraints import FunctionConstraint, variable
from repro.sccp import (
    DeterministicScheduler,
    RoundRobinScheduler,
    Status,
    parallel,
    run,
    sequence,
    tell,
)
from repro.sccp.syntax import SUCCESS


def flag(fuzzy, name):
    var = variable(name, [0, 1])
    return FunctionConstraint(
        fuzzy, (var,), lambda v: 1.0 if v == 1 else 0.0, name=name
    )


def tell_chain(constraint, length):
    agent = SUCCESS
    for _ in range(length):
        agent = sequence(tell(constraint), agent)
    return agent


class TestChoiceFairness:
    def test_constant_step_set_is_shared_evenly(self):
        scheduler = RoundRobinScheduler()
        steps = ["s0", "s1", "s2"]  # choose() only indexes the sequence
        picks = Counter(scheduler.choose(steps) for _ in range(300))
        assert picks == Counter({"s0": 100, "s1": 100, "s2": 100})

    def test_uneven_rounds_differ_by_at_most_one(self):
        scheduler = RoundRobinScheduler()
        steps = ["s0", "s1", "s2", "s3"]
        picks = Counter(scheduler.choose(steps) for _ in range(10))
        assert set(picks) == set(steps)  # nobody starved
        assert max(picks.values()) - min(picks.values()) <= 1

    def test_no_position_starves_over_many_steps(self):
        scheduler = RoundRobinScheduler()
        n, k = 1000, 7
        steps = list(range(k))
        picks = Counter(scheduler.choose(steps) for _ in range(n))
        for position in steps:
            assert picks[position] >= n // k

    def test_single_step_always_picked(self):
        scheduler = RoundRobinScheduler()
        assert all(scheduler.choose(["only"]) == "only" for _ in range(5))


class TestParallelFairness:
    @pytest.fixture
    def fuzzy(self):
        from repro.semirings import FuzzySemiring

        return FuzzySemiring()

    @staticmethod
    def remaining_work(agent_after):
        """Per-branch pending tells of "(left ‖ right)" descriptions."""
        if "‖" not in agent_after:
            return None
        left, right = agent_after.split("‖", 1)
        return left.count("tell"), right.count("tell")

    def test_round_robin_interleaves_two_tell_chains(self, fuzzy):
        """Both branches stay always-enabled, so round robin must
        alternate: pending work never diverges by more than one step."""
        chain_a = tell_chain(flag(fuzzy, "a"), 6)
        chain_b = tell_chain(flag(fuzzy, "b"), 6)
        result = run(
            parallel(chain_a, chain_b),
            semiring=fuzzy,
            scheduler=RoundRobinScheduler(),
        )
        assert result.status is Status.SUCCESS
        gaps = [
            abs(left - right)
            for event in result.trace
            if (work := self.remaining_work(event.agent_after)) is not None
            for left, right in [work]
        ]
        assert gaps and max(gaps) <= 1

    def test_deterministic_scheduler_starves_the_right_agent(self, fuzzy):
        """The contrast case: leftmost-first drains agent A completely
        before agent B moves — the starvation round robin prevents."""
        chain_a = tell_chain(flag(fuzzy, "a"), 6)
        chain_b = tell_chain(flag(fuzzy, "b"), 6)
        result = run(
            parallel(chain_a, chain_b),
            semiring=fuzzy,
            scheduler=DeterministicScheduler(),
        )
        assert result.status is Status.SUCCESS
        gaps = [
            abs(left - right)
            for event in result.trace
            if (work := self.remaining_work(event.agent_after)) is not None
            for left, right in [work]
        ]
        # A ran 5 steps ahead before B ever moved (the ‖ collapses when
        # A's chain finishes, so the 6-step gap itself is never printed).
        assert max(gaps) == 5

    def test_many_agents_all_progress_each_cycle(self, fuzzy):
        """With k parallel chains, every agent advances before any
        advances twice (tells are always enabled)."""
        chains = [tell_chain(flag(fuzzy, f"f{i}"), 3) for i in range(4)]
        result = run(
            parallel(*chains),
            semiring=fuzzy,
            scheduler=RoundRobinScheduler(),
            max_steps=200,
        )
        assert result.status is Status.SUCCESS
