"""Property-based tests of nmsccp semantic invariants (hypothesis).

Random tell-only programs are *confluent* (the store is a commutative
fold of ⊗), consistency is antitone along any run, and exploration
verdicts agree with scheduled runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TableConstraint, constraints_equal, variable
from repro.sccp import (
    SUCCESS,
    RandomScheduler,
    Status,
    ask,
    explore,
    nask,
    parallel,
    run,
    sequence,
    tell,
)
from repro.semirings import FuzzySemiring

FUZZY = FuzzySemiring()
_X = variable("x", (0, 1, 2))
_Y = variable("y", (0, 1))

levels = st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0))


def unary_constraint(draw_values):
    return TableConstraint(
        FUZZY, (_X,), {(d,): v for d, v in zip(_X.domain, draw_values)}
    )


constraint_strategy = st.lists(levels, min_size=3, max_size=3).map(
    unary_constraint
)
constraint_lists = st.lists(constraint_strategy, min_size=1, max_size=4)


@settings(max_examples=40, deadline=None)
@given(constraint_lists, st.integers(0, 2**16))
def test_tell_programs_are_confluent(constraints, seed):
    """Any interleaving of parallel tells reaches the same store."""
    agents = parallel(*[tell(c) for c in constraints])
    deterministic = run(agents, semiring=FUZZY)
    randomized = run(
        agents, semiring=FUZZY, scheduler=RandomScheduler(seed)
    )
    assert deterministic.status is Status.SUCCESS
    assert randomized.status is Status.SUCCESS
    assert constraints_equal(
        deterministic.store.constraint, randomized.store.constraint
    )


@settings(max_examples=40, deadline=None)
@given(constraint_lists)
def test_final_store_is_commutative_fold(constraints):
    """The terminal store of a tell-only program equals ⊗ of the tells."""
    from repro.constraints import combine

    agents = sequence(*[tell(c) for c in constraints], SUCCESS)
    result = run(agents, semiring=FUZZY)
    expected = combine(constraints, semiring=FUZZY)
    assert constraints_equal(result.store.constraint, expected)


@settings(max_examples=40, deadline=None)
@given(constraint_lists)
def test_consistency_is_antitone_along_tell_runs(constraints):
    agents = sequence(*[tell(c) for c in constraints], SUCCESS)
    result = run(agents, semiring=FUZZY)
    profile = result.trace.consistencies()
    for earlier, later in zip(profile, profile[1:]):
        assert FUZZY.leq(later, earlier)


@settings(max_examples=40, deadline=None)
@given(constraint_strategy, constraint_strategy)
def test_ask_after_tell_always_fires(told, asked):
    """σ ⊢ c once c was told — the ask can never block afterwards."""
    agents = sequence(tell(told), tell(asked), ask(asked), SUCCESS)
    result = run(agents, semiring=FUZZY)
    assert result.status is Status.SUCCESS


@settings(max_examples=40, deadline=None)
@given(constraint_strategy)
def test_ask_nask_dichotomy(constraint):
    """Exactly one of ask(c)/nask(c) is enabled in any store."""
    from repro.constraints import empty_store
    from repro.sccp import Configuration, successors

    store = empty_store(FUZZY)
    ask_steps = successors(Configuration(ask(constraint), store))
    nask_steps = successors(Configuration(nask(constraint), store))
    assert (len(ask_steps) == 1) != (len(nask_steps) == 1)


@settings(max_examples=25, deadline=None)
@given(constraint_lists, st.integers(0, 2**16))
def test_exploration_agrees_with_scheduled_runs(constraints, seed):
    """If exploration says every path succeeds, any scheduler succeeds;
    if it says none do, no scheduler can."""
    agents = parallel(*[tell(c) for c in constraints])
    exploration = explore(agents, semiring=FUZZY)
    outcome = run(agents, semiring=FUZZY, scheduler=RandomScheduler(seed))
    if exploration.always_succeeds:
        assert outcome.status is Status.SUCCESS
    if exploration.never_succeeds:
        assert outcome.status is not Status.SUCCESS


@settings(max_examples=40, deadline=None)
@given(constraint_strategy, constraint_strategy)
def test_retract_after_tell_restores_store(base, extra):
    """⟨tell(b) tell(e) retract(e)⟩ never tightens below ⟨tell(b)⟩."""
    from repro.constraints import constraint_leq
    from repro.sccp import retract

    with_roundtrip = run(
        sequence(tell(base), tell(extra), retract(extra), SUCCESS),
        semiring=FUZZY,
    )
    baseline = run(tell(base), semiring=FUZZY)
    assert with_roundtrip.status is Status.SUCCESS
    assert constraint_leq(
        baseline.store.constraint, with_roundtrip.store.constraint
    )
