"""Trace recording and rendering."""

import pytest

from repro.constraints import FunctionConstraint, variable
from repro.sccp import SUCCESS, Trace, ask, run, sequence, tell


@pytest.fixture
def two_step_result(fuzzy):
    x = variable("x", [0, 1])
    strong = FunctionConstraint(
        fuzzy, (x,), lambda v: 0.8 if v == 1 else 0.0, name="strong"
    )
    weak = FunctionConstraint(fuzzy, (x,), lambda v: 0.9, name="weak")
    agent = sequence(tell(weak), tell(strong), ask(weak), SUCCESS)
    return run(agent, semiring=fuzzy)


class TestTrace:
    def test_event_sequence(self, two_step_result):
        trace = two_step_result.trace
        assert len(trace) == 3
        assert trace.rules_applied() == ["R1-Tell", "R1-Tell", "R2-Ask"]

    def test_consistency_profile(self, two_step_result):
        assert two_step_result.trace.consistencies() == [0.9, 0.8, 0.8]

    def test_event_indices_increase(self, two_step_result):
        indices = [event.index for event in two_step_result.trace]
        assert indices == [0, 1, 2]

    def test_events_copy_is_stable(self, two_step_result):
        events = two_step_result.trace.events
        events.clear()
        assert len(two_step_result.trace) == 3

    def test_render_contains_rules_and_levels(self, two_step_result):
        text = two_step_result.trace.render()
        assert "R1-Tell" in text
        assert "σ⇓∅" in text
        assert "0.8" in text

    def test_empty_trace_render(self):
        assert Trace().render() == "(empty trace)"

    def test_event_str(self, two_step_result):
        event = two_step_result.trace.events[0]
        text = str(event)
        assert "R1-Tell" in text and "0.9" in text

    def test_agent_after_is_recorded(self, two_step_result):
        final_event = two_step_result.trace.events[-1]
        assert final_event.agent_after == "success"
