"""Invariant and reachability checking over the configuration graph."""

import pytest

from repro.constraints import (
    FunctionConstraint,
    variable,
)
from repro.sccp import (
    SUCCESS,
    ask,
    nask,
    parallel,
    retract,
    sequence,
    tell,
    Sum,
)
from repro.sccp.verification import (
    check_eventually,
    check_invariant,
    consistency_invariant,
)


@pytest.fixture
def flags(fuzzy):
    a = variable("a", [0, 1])
    b = variable("b", [0, 1])
    flag_a = FunctionConstraint(
        fuzzy, (a,), lambda v: 1.0 if v == 1 else 0.2, name="flag_a"
    )
    flag_b = FunctionConstraint(
        fuzzy, (b,), lambda v: 1.0 if v == 1 else 0.5, name="flag_b"
    )
    return flag_a, flag_b


class TestInvariant:
    def test_holds_on_gentle_program(self, fuzzy, flags):
        flag_a, flag_b = flags
        agents = parallel(tell(flag_a), tell(flag_b))
        result = check_invariant(
            agents,
            consistency_invariant(fuzzy, 0.2),
            semiring=fuzzy,
        )
        assert result.holds
        assert result.counterexample is None
        assert result.configurations_checked >= 3

    def test_violation_returns_shortest_path(self, fuzzy, flags):
        flag_a, flag_b = flags
        # telling flag_a drops consistency to 1.0 → fine; combined store
        # min is 1.0 then flag_b keeps 1.0 — use a harsher constraint
        harsh = FunctionConstraint(
            fuzzy, (variable("h", [0]),), lambda v: 0.1, name="harsh"
        )
        agents = sequence(tell(flag_a), tell(harsh), SUCCESS)
        result = check_invariant(
            agents, consistency_invariant(fuzzy, 0.5), semiring=fuzzy
        )
        assert not result.holds
        assert result.counterexample is not None
        assert result.counterexample.length == 2  # tell, tell
        assert "invariant" in result.counterexample.reason
        assert "R1-Tell" in result.counterexample.describe()

    def test_initial_violation_detected(self, fuzzy, flags):
        flag_a, _ = flags
        from repro.constraints import ConstantConstraint, empty_store

        bad_store = empty_store(fuzzy).tell(ConstantConstraint(fuzzy, 0.1))
        result = check_invariant(
            tell(flag_a),
            consistency_invariant(fuzzy, 0.5),
            store=bad_store,
        )
        assert not result.holds
        assert result.counterexample.length == 0

    def test_needs_store_or_semiring(self, flags):
        flag_a, _ = flags
        with pytest.raises(ValueError):
            check_invariant(tell(flag_a), lambda s: True)

    def test_paper_example2_consistency_floor(self, weighted, fig7, sync_flags):
        """Along every interleaving of Example 2 the store never costs
        more than 5 hours (the pre-retract worst case)."""
        p1 = sequence(
            tell(fig7["c4"]),
            tell(sync_flags["sp2"]),
            ask(sync_flags["sp1"]),
            retract(fig7["c1"]),
            SUCCESS,
        )
        p2 = sequence(
            tell(fig7["c3"]), tell(sync_flags["sp1"]), ask(sync_flags["sp2"]),
            SUCCESS,
        )
        result = check_invariant(
            parallel(p1, p2),
            consistency_invariant(weighted, 5.0),
            semiring=weighted,
        )
        assert result.holds
        # and a tighter floor (max 4 hours) is refuted with a witness
        refuted = check_invariant(
            parallel(p1, p2),
            consistency_invariant(weighted, 4.0),
            semiring=weighted,
        )
        assert not refuted.holds


class TestEventually:
    def test_every_run_reaches_agreement(self, fuzzy, flags):
        flag_a, flag_b = flags
        agents = parallel(tell(flag_a), tell(flag_b))

        def both_told(store):
            return store.entails(flag_a) and store.entails(flag_b)

        result = check_eventually(agents, both_told, semiring=fuzzy)
        assert result.holds

    def test_blocked_run_refutes_eventually(self, fuzzy, flags):
        flag_a, flag_b = flags
        agents = ask(flag_a, then=tell(flag_b))
        result = check_eventually(
            agents, lambda store: store.entails(flag_b), semiring=fuzzy
        )
        assert not result.holds
        assert "maximal run" in result.counterexample.reason

    def test_branch_dependent_eventuality_fails(self, fuzzy, flags):
        flag_a, flag_b = flags
        # one branch tells flag_a, the other only flag_b
        agents = Sum(
            [
                nask(flag_a, then=tell(flag_a)),
                nask(flag_b, then=tell(flag_b)),
            ]
        )
        result = check_eventually(
            agents, lambda store: store.entails(flag_a), semiring=fuzzy
        )
        assert not result.holds

    def test_require_success_distinguishes_deadlock(self, fuzzy, flags):
        flag_a, _ = flags
        # predicate holds immediately, but the run deadlocks
        agents = ask(flag_a)
        trivially_true = check_eventually(
            agents, lambda store: True, semiring=fuzzy
        )
        assert trivially_true.holds
        strict = check_eventually(
            agents,
            lambda store: True,
            semiring=fuzzy,
            require_success=True,
        )
        assert not strict.holds

    def test_example2_always_ends_at_two_hours(
        self, weighted, fig7, sync_flags
    ):
        p1 = sequence(
            tell(fig7["c4"]),
            tell(sync_flags["sp2"]),
            ask(sync_flags["sp1"]),
            retract(fig7["c1"]),
            SUCCESS,
        )
        p2 = sequence(
            tell(fig7["c3"]), tell(sync_flags["sp1"]), ask(sync_flags["sp2"]),
            SUCCESS,
        )

        def at_two_hours(store):
            return store.consistency() == 2.0

        result = check_eventually(
            parallel(p1, p2),
            at_two_hours,
            semiring=weighted,
            require_success=True,
        )
        assert result.holds
