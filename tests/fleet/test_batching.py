"""Per-shard batch scheduling over the shared L2: bit-identity holds.

A 4-shard fleet with ``FleetConfig(batching=...)`` must hand every
session the same agreement the unbatched fleet hands it — the batch
scheduler sits below the tiered cache, so write-through still warms
every shard — and ``cache_stats()`` must surface per-shard dispatch
counters under the ``"batching"`` key.
"""

from repro.fleet import FleetConfig, FleetFrontend
from repro.runtime import BatchConfig

from .conftest import OPERATIONS


def _fingerprints(frontend):
    return {
        key: (
            result.status,
            None
            if result.sla is None
            else (
                result.sla.providers,
                result.sla.agreed_level,
                tuple(sorted(result.sla.resource_assignment.items())),
            ),
        )
        for key, result in frontend.results_by_key().items()
    }


def _run(market, make_request, batching, shards=4):
    frontend = FleetFrontend(
        market,
        FleetConfig(
            shards=shards, seed=7, deadline_s=None, batching=batching
        ),
    )
    requests = [
        make_request(
            client=f"c{i % 4}", operation=OPERATIONS[i % len(OPERATIONS)]
        )
        for i in range(24)
    ]
    frontend.run(requests)
    return frontend


class TestFleetBatching:
    def test_agreements_identical_with_and_without_batching(
        self, market, make_request
    ):
        baseline = _fingerprints(_run(market, make_request, None))
        assert len(baseline) == 24
        for config in (
            BatchConfig(window_ms=0.0, max_batch=1),
            BatchConfig(window_ms=10.0, max_batch=32),
        ):
            batched = _fingerprints(
                _run(market, make_request, config)
            )
            assert batched == baseline, config

    def test_single_shard_matches_quad_shard_under_batching(
        self, market, make_request
    ):
        config = BatchConfig(window_ms=10.0, max_batch=16)
        single = _fingerprints(_run(market, make_request, config, shards=1))
        quad = _fingerprints(_run(market, make_request, config, shards=4))
        assert single == quad

    def test_cache_stats_surface_batching_counters(
        self, market, make_request
    ):
        frontend = _run(
            market,
            make_request,
            BatchConfig(window_ms=5.0, max_batch=16),
        )
        stats = frontend.cache_stats()
        assert "batching" in stats
        per_shard = stats["batching"]
        assert set(per_shard) == set(frontend.results_by_shard)
        for row in per_shard.values():
            assert set(row) == {
                "batches_dispatched",
                "sessions_batched",
                "largest_batch",
                "open_groups",
            }
            assert row["open_groups"] == 0

    def test_unbatched_fleet_reports_no_batching_key(
        self, market, make_request
    ):
        frontend = _run(market, make_request, None)
        assert "batching" not in frontend.cache_stats()
