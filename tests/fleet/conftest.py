"""Shared fleet fixtures: a small multi-operation market."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Polynomial,
    integer_variable,
    polynomial_constraint,
)
from repro.semirings import WeightedSemiring
from repro.soa import (
    ClientRequest,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)

OPERATIONS = ("render", "store", "index")


def publish_provider(registry, operation, provider, base, slope=1.0):
    registry.publish(
        ServiceDescription(
            service_id=f"{operation}-{provider}",
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(
                        attribute="cost",
                        variables={"x": range(0, 11)},
                        polynomial=Polynomial.linear({"x": slope}, base),
                    )
                ],
            ),
        )
    )


@pytest.fixture
def market():
    """Three operations × three providers, cheapest provider distinct."""
    registry = ServiceRegistry()
    for operation in OPERATIONS:
        publish_provider(registry, operation, "P1", base=5.0)
        publish_provider(registry, operation, "P2", base=3.0)
        publish_provider(registry, operation, "P3", base=8.0)
    return registry


@pytest.fixture
def make_request():
    weighted = WeightedSemiring()
    x = integer_variable("x", 10)
    requirement = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2})
    )

    def factory(client="C", operation="render"):
        return ClientRequest(
            client=client,
            operation=operation,
            attribute="cost",
            requirements=[requirement],
        )

    return factory
