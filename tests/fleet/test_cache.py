"""The two-tier solve cache: L1/L2 tiering, promotion, TTL expiry."""

import pytest

from repro.caching import LRUCache
from repro.constraints import TableConstraint, variable
from repro.fleet import (
    CacheBackend,
    InProcessCacheBackend,
    TieredSolveCache,
)
from repro.semirings import WeightedSemiring
from repro.solver import SCSP, problem_fingerprint, solve
from repro.telemetry import telemetry_session


def make_problem(weight=3.0):
    semiring = WeightedSemiring()
    x = variable("x", [0, 1])
    y = variable("y", [0, 1])
    c1 = TableConstraint(
        semiring, [x, y], {(0, 0): weight, (1, 1): 1.0}, default=5.0
    )
    c2 = TableConstraint(semiring, [y], {(0,): 2.0, (1,): 0.0})
    return SCSP([c1, c2])


def solved(weight=3.0):
    problem = make_problem(weight)
    key = problem_fingerprint(problem, "branch-bound")
    return problem, key, solve(problem, method="branch-bound")


class TestProtocol:
    def test_in_process_backend_satisfies_it(self):
        assert isinstance(InProcessCacheBackend(), CacheBackend)

    def test_a_plain_dict_wrapper_satisfies_it(self):
        class DictBackend:
            def __init__(self):
                self.data = {}

            def get(self, key):
                return self.data.get(key)

            def put(self, key, entry):
                self.data[key] = entry

            def stats(self):
                return {"size": len(self.data)}

        backend = DictBackend()
        assert isinstance(backend, CacheBackend)
        # and the tier stack runs on it unchanged
        tiered = TieredSolveCache(backend)
        problem, key, result = solved()
        tiered.store(key, result)
        assert key in backend.data
        assert tiered.fetch(key, make_problem()) is not None


class TestTiering:
    def test_store_writes_through_both_tiers(self):
        l2 = InProcessCacheBackend()
        tiered = TieredSolveCache(l2)
        problem, key, result = solved()
        tiered.store(key, result)
        assert len(tiered) == 1  # L1
        assert len(l2) == 1

    def test_l1_hit_needs_no_l2(self):
        l2 = InProcessCacheBackend()
        tiered = TieredSolveCache(l2)
        problem, key, result = solved()
        tiered.store(key, result)
        l2.clear()  # prove the fetch below never consults L2
        fetched = tiered.fetch(key, make_problem())
        assert fetched is not None
        assert fetched.blevel == result.blevel

    def test_l2_hit_promotes_into_l1(self):
        l2 = InProcessCacheBackend()
        warm = TieredSolveCache(l2)
        cold = TieredSolveCache(l2)  # another shard, same L2
        problem, key, result = solved()
        warm.store(key, result)
        assert len(cold) == 0
        fetched = cold.fetch(key, make_problem())
        assert fetched is not None
        assert fetched.blevel == result.blevel
        assert cold.promotions == 1
        assert len(cold) == 1  # promoted: next fetch is pure-local
        l2.clear()
        assert cold.fetch(key, make_problem()) is not None

    def test_full_miss_returns_none(self):
        tiered = TieredSolveCache(InProcessCacheBackend())
        assert tiered.fetch("no-such-fingerprint", make_problem()) is None

    def test_clear_keeps_the_shared_l2(self):
        l2 = InProcessCacheBackend()
        tiered = TieredSolveCache(l2)
        problem, key, result = solved()
        tiered.store(key, result)
        tiered.clear()
        assert len(tiered) == 0
        assert len(l2) == 1

    def test_results_rebind_to_the_callers_problem(self):
        l2 = InProcessCacheBackend()
        warm = TieredSolveCache(l2)
        cold = TieredSolveCache(l2)
        problem, key, result = solved()
        warm.store(key, result)
        other = make_problem()
        assert cold.fetch(key, other).problem is other

    def test_stats_expose_both_tiers_and_promotions(self):
        l2 = InProcessCacheBackend()
        tiered = TieredSolveCache(l2)
        problem, key, result = solved()
        tiered.store(key, result)
        tiered.fetch(key, make_problem())
        stats = tiered.stats()
        assert stats["l1"]["tier"] == "l1"
        assert stats["l2"]["tier"] == "l2"
        assert stats["l1"]["hits"] == 1
        assert stats["promotions"] == 0

    def test_tier_outcomes_flow_to_telemetry(self):
        problem, key, result = solved()
        l2 = InProcessCacheBackend()
        warm = TieredSolveCache(l2)
        cold = TieredSolveCache(l2)
        with telemetry_session() as session:
            warm.fetch(key, problem)  # l2 miss
            warm.store(key, result)
            warm.fetch(key, problem)  # l1 hit
            cold.fetch(key, problem)  # l2 hit + promotion
            requests = session.registry.get(
                "fleet_solve_cache_requests_total"
            )
            assert requests.labels("l1", "hit").value == 1
            assert requests.labels("l2", "hit").value == 1
            assert requests.labels("l2", "miss").value == 1
            promotions = session.registry.get("fleet_l2_promotions_total")
            assert promotions.value == 1


class TestTTL:
    def test_entries_expire_on_the_injected_clock(self):
        now = [0.0]
        l2 = InProcessCacheBackend(ttl=10.0, clock=lambda: now[0])
        problem, key, result = solved()
        tiered = TieredSolveCache(l2)
        tiered.store(key, result)
        tiered.clear()  # force the next fetch through L2
        assert tiered.fetch(key, make_problem()) is not None
        tiered.clear()
        now[0] = 10.0  # expiry is inclusive at exactly ttl
        assert tiered.fetch(key, make_problem()) is None
        assert l2.stats()["expirations"] == 1

    def test_no_ttl_never_consults_the_clock(self):
        def forbidden():  # pragma: no cover - would fail the test
            raise AssertionError("clock consulted without a TTL")

        backend = InProcessCacheBackend(clock=forbidden)
        backend.put("k", "v")
        assert backend.get("k") == "v"


class TestLRUTierLabel:
    def test_tier_appears_in_stats_and_labels(self):
        cache = LRUCache(maxsize=2, name="probe", tier="l9")
        with telemetry_session() as session:
            cache.get("missing")
            misses = session.registry.get("cache_misses_total")
            assert misses.labels("probe", "l9").value == 1
        assert cache.stats()["tier"] == "l9"
