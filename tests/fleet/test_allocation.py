"""Fleet-level allocation: greedy invisibility and fair spread at scale.

The satellite regression for PR 9: a fleet configured with the
``greedy`` allocation policy must reproduce the policy-free fleet's
agreements *keyed per session* — same provider, agreed level and service
ids for every session key — at any shard count and round shape, because
greedy is defined as the legacy path behind the seam.
:meth:`FleetFrontend.results_by_key` is the shard-count-independent view
that makes the comparison well-defined.  The fair half: with contention,
every shard's rounds spread sessions across providers and the fleet-wide
Jain index clears 0.9.
"""

import pytest

from repro.fleet import FleetConfig, FleetFrontend
from repro.fleet.loadgen import FleetLoadGenerator
from repro.runtime import (
    BatchConfig,
    LoadProfile,
    SessionStatus,
    contention_request_factory,
    jain_index,
    synthesize_contention_market,
)

from .conftest import OPERATIONS


def mixed_requests(make_request, count):
    return [
        make_request(
            client=f"c{i % 4}", operation=OPERATIONS[i % len(OPERATIONS)]
        )
        for i in range(count)
    ]


def agreements(frontend):
    """Session-keyed agreement facts, independent of sharding."""
    return {
        key: (
            result.status,
            result.sla.providers if result.sla else None,
            result.sla.agreed_level if result.sla else None,
            result.sla.service_ids if result.sla else None,
        )
        for key, result in frontend.results_by_key().items()
    }


class TestGreedyBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_greedy_fleet_matches_plain_fleet(
        self, market, make_request, shards
    ):
        requests = mixed_requests(make_request, 18)
        plain = FleetFrontend(
            market, FleetConfig(shards=shards, seed=5, deadline_s=None)
        )
        baseline = plain.run(requests)
        assert all(
            r.status is SessionStatus.COMPLETED for r in baseline
        )

        seamed = FleetFrontend(
            market,
            FleetConfig(
                shards=shards,
                seed=5,
                deadline_s=None,
                allocation_policy="greedy",
                rounds=BatchConfig(window_ms=40.0, max_batch=8),
            ),
        )
        seamed.run(requests)
        assert agreements(seamed) == agreements(plain)

    def test_greedy_identity_across_shard_counts(self, market, make_request):
        requests = mixed_requests(make_request, 18)
        keyed = []
        for shards in (1, 3):
            frontend = FleetFrontend(
                market,
                FleetConfig(
                    shards=shards,
                    seed=5,
                    deadline_s=None,
                    allocation_policy="greedy",
                    rounds=BatchConfig(window_ms=40.0, max_batch=8),
                ),
            )
            frontend.run(requests)
            keyed.append(agreements(frontend))
        assert keyed[0] == keyed[1]

    def test_round_stats_surface_in_cache_stats(self, market, make_request):
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=2,
                seed=5,
                deadline_s=None,
                allocation_policy="greedy",
                rounds=BatchConfig(window_ms=20.0, max_batch=8),
            ),
        )
        frontend.run(mixed_requests(make_request, 12))
        stats = frontend.cache_stats()
        assert "allocation_rounds" in stats
        rounded = sum(
            shard_stats["sessions_rounded"]
            for shard_stats in stats["allocation_rounds"].values()
        )
        assert rounded == 12


class TestFairFleet:
    def test_fair_fleet_spreads_and_clears_jain(self):
        market = synthesize_contention_market(providers=3)
        factory = contention_request_factory()
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=2,
                seed=9,
                deadline_s=None,
                workers_per_shard=16,
                allocation_policy="fair",
                rounds=BatchConfig(window_ms=60.0, max_batch=16),
            ),
        )
        generator = FleetLoadGenerator(
            frontend,
            LoadProfile(clients=24, mode="closed", seed=9),
            factory,
        )
        report = generator.run_sync()
        assert report.fleet.completed == 24
        assert report.fairness is not None
        assert report.fairness["clients"] == 24
        assert report.fairness["jain_index"] > 0.9
        # Both shards actually ran allocation rounds.
        rounds = report.cache["allocation_rounds"]
        assert len(rounds) == 2
        assert all(
            shard_stats["rounds_dispatched"] >= 1
            for shard_stats in rounds.values()
        )

    def test_fair_beats_greedy_fleet_wide(self):
        market = synthesize_contention_market(providers=3)
        factory = contention_request_factory()
        scores = {}
        for policy in ("greedy", "fair"):
            frontend = FleetFrontend(
                market,
                FleetConfig(
                    shards=2,
                    seed=9,
                    deadline_s=None,
                    workers_per_shard=16,
                    allocation_policy=policy,
                    rounds=BatchConfig(window_ms=60.0, max_batch=16),
                ),
            )
            generator = FleetLoadGenerator(
                frontend,
                LoadProfile(clients=24, mode="closed", seed=9),
                factory,
            )
            report = generator.run_sync()
            assert report.fairness is not None
            scores[policy] = report.fairness
        assert (
            scores["fair"]["jain_index"]
            > scores["greedy"]["jain_index"]
        )
        assert (
            scores["fair"]["min_satisfaction"]
            > scores["greedy"]["min_satisfaction"]
        )

    def test_jain_index_basics(self):
        assert jain_index([]) == 0.0
        assert jain_index([0.0, 0.0]) == 0.0
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)
        uneven = jain_index([1.0, 0.1, 0.1])
        assert 0.0 < uneven < 0.6
