"""Report merging: fleet percentiles come from raw samples, never from
averaging per-shard percentiles — plus the fleet load generator."""

import pytest

from repro.fleet import FleetConfig, FleetFrontend, FleetLoadGenerator
from repro.runtime import (
    LoadGenError,
    LoadProfile,
    SessionResult,
    SessionStatus,
    build_report,
    merge_reports,
    percentile,
)


def result(latency, wait=0.0, status=SessionStatus.COMPLETED, retries=0):
    request = None
    sample = SessionResult(request=request, status=status)
    sample.latency_s = latency
    sample.queue_wait_s = wait
    sample.attempts = 1
    sample.retries = retries
    return sample


def report_of(latencies, duration):
    return build_report([result(value) for value in latencies], duration)


class TestMergeReports:
    def test_percentiles_come_from_concatenated_samples(self):
        # Skewed shards: shard A fast, shard B slow.  Averaging the
        # per-shard p95s gives ~5.25; the true fleet p95 is 10.0.
        fast = report_of([0.1, 0.2, 0.3, 0.4, 0.5], duration=1.0)
        slow = report_of([8.0, 9.0, 10.0], duration=2.0)
        merged = merge_reports([fast, slow])
        samples = [0.1, 0.2, 0.3, 0.4, 0.5, 8.0, 9.0, 10.0]
        assert merged.latency_s["p95"] == percentile(samples, 95)
        assert merged.latency_s["p50"] == percentile(samples, 50)
        averaged = (fast.latency_s["p95"] + slow.latency_s["p95"]) / 2
        assert merged.latency_s["p95"] != pytest.approx(averaged)

    def test_counts_and_retries_sum(self):
        a = build_report(
            [result(0.1), result(0.2, retries=2)], duration=1.0
        )
        b = build_report(
            [result(0.3, status=SessionStatus.DEGRADED, retries=1)],
            duration=1.0,
        )
        merged = merge_reports([a, b])
        assert merged.offered == 3
        assert merged.completed == 2
        assert merged.degraded == 1
        assert merged.retries_total == 3

    def test_duration_is_the_longest_window(self):
        # Shards run concurrently: the fleet window is the slowest
        # shard's window, and throughput is total work over it.
        fast = report_of([0.1, 0.1], duration=1.0)
        slow = report_of([0.2, 0.2], duration=4.0)
        merged = merge_reports([fast, slow])
        assert merged.duration_s == 4.0
        assert merged.throughput_rps == pytest.approx(4 / 4.0)

    def test_refuses_empty_input(self):
        with pytest.raises(LoadGenError):
            merge_reports([])

    def test_refuses_digests_without_raw_samples(self):
        digest = report_of([0.1, 0.2], duration=1.0)
        digest.results = []  # summary-only (e.g. deserialized JSON)
        with pytest.raises(LoadGenError):
            merge_reports([digest])

    def test_single_report_round_trips(self):
        only = report_of([0.1, 0.5, 0.9], duration=2.0)
        merged = merge_reports([only])
        assert merged.latency_s == only.latency_s
        assert merged.offered == only.offered


class TestFleetLoadGenerator:
    def test_per_shard_rows_sum_to_the_fleet_row(
        self, market, make_request
    ):
        frontend = FleetFrontend(
            market, FleetConfig(shards=3, seed=9, deadline_s=None)
        )

        def factory(client, index):
            return make_request(client=client)

        generator = FleetLoadGenerator(
            frontend,
            LoadProfile(clients=4, requests=20, mode="closed", seed=9),
            factory,
        )
        report = generator.run_sync()
        assert report.fleet.offered == 20
        assert report.fleet.completed == 20
        assert report.shards == 3
        assert sum(
            row.offered for row in report.per_shard.values()
        ) == 20
        # the fleet row was merged from the shard rows it summarizes
        all_latencies = sorted(
            r.latency_s
            for row in report.per_shard.values()
            for r in row.results
        )
        assert report.fleet.latency_s["p50"] == percentile(
            all_latencies, 50
        )
        payload = report.to_dict()
        assert set(payload) == {
            "fleet",
            "per_shard",
            "shards",
            "redirects",
            "cache",
        }

    def test_ingress_bounces_fall_back_to_the_generator_digest(
        self, market, make_request
    ):
        frontend = FleetFrontend(
            market,
            FleetConfig(shards=2, ingress_depth=1, deadline_s=None),
        )

        def factory(client, index):
            return make_request(client=client)

        generator = FleetLoadGenerator(
            frontend,
            # an open loop at a very high rate floods the 1-deep ingress
            LoadProfile(clients=4, requests=30, rate=100000.0, seed=1),
            factory,
        )
        report = generator.run_sync()
        assert report.fleet.offered == 30
        if report.fleet.overloaded:
            # bounced sessions belong to no shard, but the fleet row
            # still accounts for every offered session
            covered = sum(
                row.offered for row in report.per_shard.values()
            )
            assert covered < 30
