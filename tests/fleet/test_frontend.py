"""FleetFrontend: routing, backpressure, resharding, determinism."""

import asyncio

import pytest

from repro.fleet import (
    FleetConfig,
    FleetError,
    FleetFrontend,
    partition_registry,
)
from repro.fleet.frontend import _FleetItem
from repro.runtime import RetryPolicy, SessionStatus
from repro.soa import BernoulliCrash, FaultInjector

from .conftest import OPERATIONS


def requests_for(make_request, count):
    return [
        make_request(
            client=f"c{i % 4}", operation=OPERATIONS[i % len(OPERATIONS)]
        )
        for i in range(count)
    ]


def crashy_injector_factory(market, probability=0.4, seed=123):
    service_ids = [d.service_id for d in market.find()]

    def factory(shard_id):
        injector = FaultInjector(seed=seed)
        for service_id in service_ids:
            injector.attach(service_id, BernoulliCrash(probability))
        return injector

    return factory


class TestConfig:
    def test_rejects_bad_shapes(self):
        with pytest.raises(FleetError):
            FleetConfig(shards=0)
        with pytest.raises(FleetError):
            FleetConfig(workers_per_shard=0)
        with pytest.raises(FleetError):
            FleetConfig(ingress_depth=0)
        with pytest.raises(FleetError):
            FleetConfig(route_by="client")

    def test_partitioning_requires_operation_routing(self):
        with pytest.raises(FleetError):
            FleetConfig(partition_registry=True, route_by="session")
        FleetConfig(partition_registry=True, route_by="operation")


class TestServing:
    def test_serves_across_shards(self, market, make_request):
        frontend = FleetFrontend(
            market, FleetConfig(shards=3, seed=1, deadline_s=None)
        )
        results = frontend.run(requests_for(make_request, 24))
        assert len(results) == 24
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        # the cheapest provider wins on every shard, like a single broker
        assert all("P2" in r.sla.providers for r in results)
        # the session space actually spread over the shards
        busy = [
            shard
            for shard, rs in frontend.results_by_shard.items()
            if rs
        ]
        assert len(busy) == 3
        assert sum(
            len(rs) for rs in frontend.results_by_shard.values()
        ) == 24

    def test_submit_before_start_raises(self, market, make_request):
        frontend = FleetFrontend(market, FleetConfig(shards=2))
        with pytest.raises(FleetError):
            asyncio.run(self._submit_unstarted(frontend, make_request()))

    @staticmethod
    async def _submit_unstarted(frontend, request):
        frontend.submit(request)

    def test_results_by_key_indexes_every_session(
        self, market, make_request
    ):
        frontend = FleetFrontend(
            market, FleetConfig(shards=2, seed=3, deadline_s=None)
        )
        frontend.run(requests_for(make_request, 10))
        by_key = frontend.results_by_key()
        assert len(by_key) == 10
        assert all(key.startswith("s") for key in by_key)


class TestBackpressure:
    def test_full_ingress_bounces_with_typed_overload(
        self, market, make_request
    ):
        frontend = FleetFrontend(
            market,
            FleetConfig(shards=2, ingress_depth=1, deadline_s=None),
        )
        results = asyncio.run(self._flood(frontend, make_request))
        overloaded = [
            r for r in results if r.status is SessionStatus.OVERLOADED
        ]
        assert overloaded  # the ingress bound actually bit
        assert all("ingress" in r.detail for r in overloaded)
        served = [
            r for r in results if r.status is SessionStatus.COMPLETED
        ]
        assert served  # and admitted sessions still finished

    @staticmethod
    async def _flood(frontend, make_request):
        async with frontend:
            # submit() is synchronous: no yield between calls, so the
            # dispatcher cannot drain the 1-deep ingress in between.
            futures = [
                frontend.submit(make_request(client=f"c{i}"))
                for i in range(6)
            ]
            return await asyncio.gather(*futures)


class TestResharding:
    def test_redirect_forwards_a_moved_key(self, market, make_request):
        asyncio.run(self._redirect(market, make_request))

    @staticmethod
    async def _redirect(market, make_request):
        frontend = FleetFrontend(
            market, FleetConfig(shards=2, seed=0, deadline_s=None)
        )
        async with frontend:
            # A key owned by shard-1, planted on shard-0's queue —
            # exactly what a reshard racing the dispatcher produces.
            key = next(
                f"k{i}"
                for i in range(1000)
                if frontend.ring.assign(f"k{i}") == "shard-1"
            )
            loop = asyncio.get_running_loop()
            item = _FleetItem(
                seq=0,
                key=key,
                route_key=key,
                request=make_request(),
                future=loop.create_future(),
                deadline_s=None,
            )
            await frontend.shards["shard-0"].queue.put(item)
            result = await item.future
        assert result.status is SessionStatus.COMPLETED
        assert frontend.redirects == 1
        assert frontend.assignments[key] == "shard-1"

    def test_add_shard_mid_run(self, market, make_request):
        asyncio.run(self._grow(market, make_request))

    @staticmethod
    async def _grow(market, make_request):
        frontend = FleetFrontend(
            market, FleetConfig(shards=2, seed=2, deadline_s=None)
        )
        async with frontend:
            first = await asyncio.gather(
                *[
                    frontend.submit(r)
                    for r in requests_for(make_request, 8)
                ]
            )
            joined = await frontend.add_shard()
            assert joined == "shard-2"
            second = await asyncio.gather(
                *[
                    frontend.submit(r)
                    for r in requests_for(make_request, 16)
                ]
            )
        results = first + second
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        assert frontend.results_by_shard["shard-2"]  # newcomer served

    def test_remove_shard_drains_gracefully(self, market, make_request):
        asyncio.run(self._shrink(market, make_request))

    @staticmethod
    async def _shrink(market, make_request):
        frontend = FleetFrontend(
            market, FleetConfig(shards=3, seed=2, deadline_s=None)
        )
        async with frontend:
            first = await asyncio.gather(
                *[
                    frontend.submit(r)
                    for r in requests_for(make_request, 9)
                ]
            )
            await frontend.remove_shard("shard-1")
            assert "shard-1" not in frontend.shards
            second = await asyncio.gather(
                *[
                    frontend.submit(r)
                    for r in requests_for(make_request, 9)
                ]
            )
        assert all(
            r.status is SessionStatus.COMPLETED for r in first + second
        )

    def test_cannot_remove_the_last_shard(self, market):
        frontend = FleetFrontend(market, FleetConfig(shards=1))
        with pytest.raises(FleetError):
            asyncio.run(frontend.remove_shard("shard-0"))

    def test_partitioned_fleets_refuse_to_reshard(self, market):
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=2, route_by="operation", partition_registry=True
            ),
        )
        with pytest.raises(FleetError):
            asyncio.run(frontend.add_shard())


class TestDrainingShutdown:
    def test_stop_finishes_admitted_sessions(self, market, make_request):
        futures = asyncio.run(self._stop_early(market, make_request))
        assert all(f.done() for f in futures)
        assert all(
            f.result().status is SessionStatus.COMPLETED for f in futures
        )

    @staticmethod
    async def _stop_early(market, make_request):
        frontend = FleetFrontend(
            market, FleetConfig(shards=2, seed=4, deadline_s=None)
        )
        await frontend.start()
        futures = [
            frontend.submit(r) for r in requests_for(make_request, 12)
        ]
        await frontend.stop()  # drains: no future left behind
        return futures


class TestShardCountIndependence:
    def run_fleet(self, market, make_request, shards):
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=shards,
                seed=7,
                deadline_s=None,
                retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
            ),
            injector_factory=crashy_injector_factory(market),
        )
        frontend.run(requests_for(make_request, 24))
        return {
            key: (
                result.status,
                result.attempts,
                None
                if result.sla is None
                else tuple(result.sla.providers),
            )
            for key, result in frontend.results_by_key().items()
        }

    def test_agreements_identical_for_1_and_4_shards(
        self, market, make_request
    ):
        single = self.run_fleet(market, make_request, 1)
        quad = self.run_fleet(market, make_request, 4)
        assert len(single) == 24
        assert single == quad
        # the faults actually fired: some session needed a retry
        assert any(attempts > 1 for _, attempts, _ in single.values())


class TestOperationRouting:
    def test_partition_covers_every_service_once(self, market):
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=3, route_by="operation", partition_registry=True
            ),
        )
        parts = partition_registry(market, frontend.ring)
        all_ids = {d.service_id for d in market.find()}
        seen = [
            d.service_id
            for part in parts.values()
            for d in part.find()
        ]
        assert sorted(seen) == sorted(all_ids)
        # an operation's services all land on one shard
        for part in parts.values():
            for description in part.find():
                owner = frontend.ring.assign(
                    description.interface.operation
                )
                assert parts[owner].find(
                    operation=description.interface.operation
                )

    def test_operation_routed_fleet_serves_from_partitions(
        self, market, make_request
    ):
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=3,
                seed=1,
                deadline_s=None,
                route_by="operation",
                partition_registry=True,
            ),
        )
        results = frontend.run(requests_for(make_request, 12))
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        # every session of one operation lands on the owning shard
        for key, shard in frontend.assignments.items():
            operation = key.rsplit("/", 1)[1]
            assert frontend.ring.assign(operation) == shard


class TestCaching:
    def test_l2_warms_sibling_shards(self, market, make_request):
        frontend = FleetFrontend(
            market, FleetConfig(shards=4, seed=5, deadline_s=None)
        )
        # one operation only: every shard solves the same fingerprint
        requests = [
            make_request(client=f"c{i}", operation="render")
            for i in range(16)
        ]
        frontend.run(requests)
        stats = frontend.cache_stats()
        assert stats["l2"] is not None
        # the problem was solved by the first shard to see it; other
        # shards promoted it from the L2 instead of re-solving
        assert stats["l2"]["misses"] >= 1
        promotions = sum(
            shard["promotions"] for shard in stats["per_shard"].values()
        )
        busy = sum(
            1
            for results in frontend.results_by_shard.values()
            if results
        )
        assert promotions >= busy - 1

    def test_l2_can_be_disabled(self, market, make_request):
        frontend = FleetFrontend(
            market,
            FleetConfig(shards=2, seed=5, deadline_s=None, l2_cache=False),
        )
        results = frontend.run(requests_for(make_request, 6))
        assert all(r.status is SessionStatus.COMPLETED for r in results)
        stats = frontend.cache_stats()
        assert stats["l2"] is None
        # shards fall back to their private single-tier solve caches
        assert stats["per_shard"]
