"""Consistent-hash ring properties: determinism, balance, minimal
disruption (the guarantees `repro.fleet` routing rests on)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import DEFAULT_VNODES, HashRing, RingError, hash_key

KEYS = [f"key-{i}" for i in range(600)]

shard_counts = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def build(n, seed=0, vnodes=DEFAULT_VNODES):
    return HashRing(
        [f"shard-{i}" for i in range(n)], vnodes=vnodes, seed=seed
    )


class TestConstruction:
    def test_rejects_empty_assign(self):
        with pytest.raises(RingError):
            HashRing().assign("k")

    def test_rejects_duplicate_shards(self):
        ring = build(2)
        with pytest.raises(RingError):
            ring.add_shard("shard-0")

    def test_rejects_unknown_removal(self):
        with pytest.raises(RingError):
            build(2).remove_shard("shard-9")

    def test_rejects_zero_vnodes(self):
        with pytest.raises(RingError):
            HashRing(["a"], vnodes=0)

    def test_membership_and_len(self):
        ring = build(3)
        assert len(ring) == 3
        assert "shard-1" in ring
        assert ring.shards == ["shard-0", "shard-1", "shard-2"]

    def test_version_bumps_on_reshard(self):
        ring = build(2)
        version = ring.version
        ring.add_shard("extra")
        assert ring.version == version + 1
        ring.remove_shard("extra")
        assert ring.version == version + 2

    def test_hash_key_is_stable(self):
        # Pinned: assignment must not depend on PYTHONHASHSEED or the
        # Python version (SHA-256, not hash()).
        assert hash_key("key-0") == hash_key("key-0")
        assert hash_key("key-0") != hash_key("key-1")


class TestDeterminism:
    @given(n=shard_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_assignments(self, n, seed):
        first, second = build(n, seed), build(n, seed)
        for key in KEYS[:100]:
            assert first.assign(key) == second.assign(key)

    def test_insertion_order_does_not_matter(self):
        forward = HashRing(["a", "b", "c"], seed=3)
        backward = HashRing(["c", "b", "a"], seed=3)
        for key in KEYS:
            assert forward.assign(key) == backward.assign(key)


class TestBalance:
    @given(n=st.integers(min_value=2, max_value=8), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_every_shard_owns_keys(self, n, seed):
        counts = build(n, seed).spread(KEYS)
        assert sum(counts.values()) == len(KEYS)
        assert all(count > 0 for count in counts.values())

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_max_load_is_bounded(self, seed):
        # With 64 vnodes the worst shard stays within ~2.5× the mean —
        # loose enough to never flake, tight enough to catch a broken
        # point distribution (a naive ring without vnodes fails this).
        counts = build(4, seed).spread(KEYS)
        mean = len(KEYS) / 4
        assert max(counts.values()) <= 2.5 * mean

    def test_more_vnodes_tighten_balance(self):
        coarse = build(4, seed=11, vnodes=4).spread(KEYS)
        fine = build(4, seed=11, vnodes=256).spread(KEYS)

        def imbalance(counts):
            mean = sum(counts.values()) / len(counts)
            return max(abs(c - mean) for c in counts.values())

        assert imbalance(fine) <= imbalance(coarse)


class TestMinimalDisruption:
    @given(n=st.integers(min_value=1, max_value=7), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_add_shard_moves_only_keys_to_the_newcomer(self, n, seed):
        ring = build(n, seed)
        before = {key: ring.assign(key) for key in KEYS}
        ring.add_shard("newcomer")
        moved = 0
        for key in KEYS:
            after = ring.assign(key)
            if after != before[key]:
                # consistent hashing: a moved key can only move TO the
                # shard that just joined, never between old shards
                assert after == "newcomer"
                moved += 1
        # expected K/(N+1); allow generous slack for hash variance
        expected = len(KEYS) / (n + 1)
        assert moved <= 2.5 * expected + 10

    @given(n=st.integers(min_value=2, max_value=8), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_remove_shard_moves_only_its_keys(self, n, seed):
        ring = build(n, seed)
        victim = "shard-0"
        before = {key: ring.assign(key) for key in KEYS}
        ring.remove_shard(victim)
        for key in KEYS:
            if before[key] != victim:
                # keys on surviving shards do not move at all
                assert ring.assign(key) == before[key]
            else:
                assert ring.assign(key) != victim

    def test_add_then_remove_restores_assignments(self):
        ring = build(3, seed=5)
        before = {key: ring.assign(key) for key in KEYS}
        ring.add_shard("transient")
        ring.remove_shard("transient")
        assert {key: ring.assign(key) for key in KEYS} == before


class TestSpread:
    def test_reports_zero_for_idle_shards(self):
        ring = build(2, seed=0)
        counts = ring.spread([])
        assert counts == {"shard-0": 0, "shard-1": 0}
