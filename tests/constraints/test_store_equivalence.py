"""Randomized factored-vs-monolith store equivalence.

The factored store is a *representation* change, not a semantics change:
on identical tell/retract/update traces both backends must answer
``consistency()`` and ``entails()`` **bit-identically** (``==`` on the
raw values, not ``semiring.equiv``).

Bitwise equality across different combine/project association is only
meaningful when every arithmetic step is exact, so each semiring gets a
value sampler chosen to keep float operations lossless:

* Weighted — integer-valued floats (+/− exact far below 2⁵³);
* Fuzzy — any floats (min/max return an operand bit-for-bit);
* Probabilistic — dyadics ``k/8`` (≤ 3 mantissa bits each; a 14-op
  trace multiplies at most 14 of them — ≤ 42 bits, inside the 53-bit
  mantissa, so every product and exact-quotient is lossless);
* Boolean — exact by construction;
* SetBased — frozensets, the required **non-lowerable** semiring (no
  dense kernel; the solver must take the dict path).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.constraints import (
    StoreError,
    TableConstraint,
    empty_store,
    variable,
)
from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    SetSemiring,
    WeightedSemiring,
)

# ----------------------------------------------------------------------
# Per-semiring exact value samplers
# ----------------------------------------------------------------------

_SET_UNIVERSE = ("read", "write", "exec")


def _weighted_value(rng: random.Random):
    if rng.random() < 0.08:
        return WeightedSemiring().zero  # INFINITY
    return float(rng.randint(0, 12))


def _fuzzy_value(rng: random.Random):
    return rng.random()


def _probabilistic_value(rng: random.Random):
    return rng.randint(0, 8) / 8.0


def _boolean_value(rng: random.Random):
    return rng.random() < 0.8


def _set_value(rng: random.Random):
    return frozenset(
        item for item in _SET_UNIVERSE if rng.random() < 0.6
    )


#: (semiring factory, sampler, max live factors keeping arithmetic exact)
CASES = [
    pytest.param(WeightedSemiring, _weighted_value, 12, id="Weighted"),
    pytest.param(FuzzySemiring, _fuzzy_value, 12, id="Fuzzy"),
    pytest.param(
        ProbabilisticSemiring, _probabilistic_value, 12, id="Probabilistic"
    ),
    pytest.param(BooleanSemiring, _boolean_value, 12, id="Boolean"),
    pytest.param(
        lambda: SetSemiring(_SET_UNIVERSE), _set_value, 12, id="SetBased"
    ),
]

SEEDS = [7, 23, 101, 443, 977]


# ----------------------------------------------------------------------
# Trace machinery
# ----------------------------------------------------------------------


def _variables():
    return [
        variable("x", ["a", "b"]),
        variable("y", ["a", "b", "c"]),
        variable("z", [0, 1]),
    ]


def _random_constraint(rng, semiring, variables, sampler):
    scope = rng.sample(variables, k=rng.randint(1, 2))
    table = {
        assignment: sampler(rng)
        for assignment in itertools.product(*(v.domain for v in scope))
    }
    return TableConstraint(semiring, scope, table)


def _assert_agreement(mono, fact, probes):
    assert mono.consistency() == fact.consistency()
    for probe in probes:
        assert mono.entails(probe) == fact.entails(probe)


@pytest.mark.parametrize("make_semiring,sampler,max_factors", CASES)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_traces_agree_bitwise(make_semiring, sampler, max_factors, seed):
    """Same trace, both backends, every step: identical answers."""
    rng = random.Random(seed)
    semiring = make_semiring()
    variables = _variables()

    mono = empty_store(semiring, backend="monolith")
    fact = empty_store(semiring, backend="factored")
    told = []

    for _ in range(14):
        op = rng.random()
        if op < 0.55 and len(told) < max_factors:
            constraint = _random_constraint(rng, semiring, variables, sampler)
            mono = mono.tell(constraint)
            fact = fact.tell(constraint)
            told.append(constraint)
        elif op < 0.75 and told:
            constraint = rng.choice(told)
            try:
                next_mono = mono.retract(constraint)
            except StoreError:
                # Both backends must agree the R7 premise fails.
                with pytest.raises(StoreError, match="R7"):
                    fact.retract(constraint)
            else:
                mono = next_mono
                fact = fact.retract(constraint)
                told.remove(constraint)
        elif op < 0.9:
            names = [v.name for v in rng.sample(variables, k=rng.randint(1, 2))]
            constraint = _random_constraint(rng, semiring, variables, sampler)
            mono = mono.update(names, constraint)
            fact = fact.update(names, constraint)
            told = [constraint]

        probes = [
            _random_constraint(rng, semiring, variables, sampler)
            for _ in range(2)
        ]
        if told:
            probes.append(rng.choice(told))
        _assert_agreement(mono, fact, probes)

    # Full-assignment valuations agree bit-for-bit too.
    for _ in range(5):
        assignment = {v.name: rng.choice(v.domain) for v in variables}
        assert mono.value(assignment) == fact.value(assignment)


@pytest.mark.parametrize("make_semiring,sampler,max_factors", CASES)
def test_told_factors_are_entailed_by_both(make_semiring, sampler, max_factors):
    rng = random.Random(5)
    semiring = make_semiring()
    variables = _variables()
    mono = empty_store(semiring, backend="monolith")
    fact = empty_store(semiring, backend="factored")
    told = [
        _random_constraint(rng, semiring, variables, sampler)
        for _ in range(min(4, max_factors))
    ]
    for constraint in told:
        mono = mono.tell(constraint)
        fact = fact.tell(constraint)
    for constraint in told:
        # σ = c ⊗ rest ⊑ c (× is decreasing) — both must say so.
        assert mono.entails(constraint)
        assert fact.entails(constraint)


def test_retract_traces_agree_on_weighted_exact_path():
    """The weighted exact-removal fast path stays bit-identical to the
    monolith's residuated division (Example 2 shape, many factors)."""
    rng = random.Random(99)
    semiring = WeightedSemiring()
    variables = _variables()
    mono = empty_store(semiring, backend="monolith")
    fact = empty_store(semiring, backend="factored")
    told = []
    for _ in range(6):
        # Finite integer costs only: with an ∞ anywhere the residuation
        # ∞ ÷ ∞ = 0 erases the other factors' contribution at that
        # point, and the R7 premise can then fail mid-trace.
        constraint = _random_constraint(
            rng, semiring, variables, lambda r: float(r.randint(0, 12))
        )
        mono = mono.tell(constraint)
        fact = fact.tell(constraint)
        told.append(constraint)
    rng.shuffle(told)
    for constraint in told:
        mono = mono.retract(constraint)
        fact = fact.retract(constraint)
        _assert_agreement(mono, fact, told[:2])
    assert mono.consistency() == fact.consistency() == semiring.one
