"""Property-based tests of the constraint algebra (hypothesis).

Random table constraints over random small scopes exercise the laws the
paper's framework relies on: ⊗ associativity/commutativity, projection
commuting with combination on disjoint scopes, retract-after-tell
round-trips, and entailment monotonicity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    TableConstraint,
    combine,
    constraint_leq,
    constraints_equal,
    empty_store,
    variable,
)
from repro.semirings import FuzzySemiring, WeightedSemiring

FUZZY = FuzzySemiring()
WEIGHTED = WeightedSemiring()

_X = variable("x", (0, 1, 2))
_Y = variable("y", (0, 1))
_Z = variable("z", (0, 1))

fuzzy_levels = st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0))
weights = st.sampled_from((0.0, 1.0, 2.0, 5.0, 9.0))


def table_strategy(semiring, scope, values):
    import itertools

    keys = list(itertools.product(*[v.domain for v in scope]))
    return st.lists(values, min_size=len(keys), max_size=len(keys)).map(
        lambda vs: TableConstraint(semiring, scope, dict(zip(keys, vs)))
    )


fuzzy_unary_x = table_strategy(FUZZY, (_X,), fuzzy_levels)
fuzzy_binary_xy = table_strategy(FUZZY, (_X, _Y), fuzzy_levels)
fuzzy_unary_z = table_strategy(FUZZY, (_Z,), fuzzy_levels)
weighted_unary_x = table_strategy(WEIGHTED, (_X,), weights)
weighted_binary_xy = table_strategy(WEIGHTED, (_X, _Y), weights)


@settings(max_examples=50)
@given(fuzzy_unary_x, fuzzy_binary_xy, fuzzy_unary_z)
def test_combination_associative_and_commutative(a, b, c):
    left = a.combine(b).combine(c)
    right = a.combine(b.combine(c))
    assert constraints_equal(left, right)
    assert constraints_equal(a.combine(b), b.combine(a))


@settings(max_examples=50)
@given(fuzzy_unary_x, fuzzy_binary_xy)
def test_combination_lower_bounds_both(a, b):
    combined = a.combine(b)
    assert constraint_leq(combined, a)
    assert constraint_leq(combined, b)


@settings(max_examples=50)
@given(fuzzy_binary_xy)
def test_projection_shrinks_or_keeps_levels(c):
    projected = c.project(["x"])
    # projecting sums (max) over y: the projection dominates the original
    assert constraint_leq(c, projected)


@settings(max_examples=50)
@given(fuzzy_binary_xy)
def test_double_projection_composes(c):
    via_y = c.project(["x"]).project([])
    direct = c.project([])
    assert constraints_equal(via_y, direct)
    assert via_y({}) == c.consistency()


@settings(max_examples=50)
@given(fuzzy_unary_x, fuzzy_unary_z)
def test_projection_distributes_over_disjoint_combination(cx, cz):
    # (cx ⊗ cz) ⇓ x = cx ⊗ (cz ⇓ ∅) when scopes are disjoint
    left = cx.combine(cz).project(["x"])
    right = cx.combine(cz.project([]))
    assert constraints_equal(left, right)


@settings(max_examples=50)
@given(weighted_unary_x, weighted_binary_xy)
def test_tell_retract_roundtrip_weighted(base, extra):
    store = empty_store(WEIGHTED).tell(base)
    roundtrip = store.tell(extra).retract(extra)
    assert constraints_equal(roundtrip.constraint, store.constraint)


@settings(max_examples=50)
@given(fuzzy_unary_x, fuzzy_binary_xy)
def test_tell_retract_roundtrip_is_weaker_or_equal_fuzzy(base, extra):
    # Fuzzy division is not exactly inverse below the entailed region, but
    # the round trip never *tightens* the store.
    store = empty_store(FUZZY).tell(base)
    roundtrip = store.tell(extra).retract(extra)
    assert constraint_leq(store.constraint, roundtrip.constraint)


@settings(max_examples=50)
@given(fuzzy_unary_x, fuzzy_binary_xy)
def test_store_entails_every_told_constraint(a, b):
    store = empty_store(FUZZY).tell(a).tell(b)
    assert store.entails(a)
    assert store.entails(b)


@settings(max_examples=50)
@given(weighted_unary_x, weighted_binary_xy)
def test_weighted_store_entails_every_told_constraint(a, b):
    store = empty_store(WEIGHTED).tell(a).tell(b)
    assert store.entails(a)
    assert store.entails(b)


@settings(max_examples=50)
@given(fuzzy_unary_x, fuzzy_binary_xy)
def test_consistency_antitone_under_tell(a, b):
    store = empty_store(FUZZY).tell(a)
    told = store.tell(b)
    assert FUZZY.leq(told.consistency(), store.consistency())


@settings(max_examples=50)
@given(fuzzy_binary_xy, st.sampled_from(["x", "y"]))
def test_update_removes_variable_from_support(c, var_name):
    store = empty_store(FUZZY).tell(c)
    from repro.constraints import ConstantConstraint

    updated = store.update([var_name], ConstantConstraint(FUZZY, 1.0))
    assert var_name not in updated.support
