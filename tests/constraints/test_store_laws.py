"""Randomized algebraic laws of the store, on both backends.

These are the paper's store identities, checked per backend (the
equivalence suite separately pins the two backends to each other):

* tell is ⊑-decreasing: ``σ ⊗ c ⊑ σ``;
* R7 premise: retract demands ``σ ⊑ c`` and raises otherwise;
* retract is a relaxation: ``σ ⊑ σ ÷ c``;
* tell/retract round-trips restore the store on cancellative ×
  (Weighted), and never produce something stricter than the base;
* update is transactional: ``update(X, c) = (σ ⇓_{V∖X}) ⊗ c`` in one
  step, with X gone from the support.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.constraints import (
    StoreError,
    TableConstraint,
    constraint_leq,
    constraints_equal,
    empty_store,
    variable,
)
from repro.constraints.operations import combine
from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    SetSemiring,
    WeightedSemiring,
)

BACKENDS = ["monolith", "factored"]

LAW_SEMIRINGS = [
    pytest.param(WeightedSemiring(), id="Weighted"),
    pytest.param(FuzzySemiring(), id="Fuzzy"),
    pytest.param(ProbabilisticSemiring(), id="Probabilistic"),
    pytest.param(BooleanSemiring(), id="Boolean"),
    pytest.param(SetSemiring({"read", "write"}), id="SetBased"),
]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _vars():
    return [variable("x", ["a", "b"]), variable("y", [0, 1, 2])]


def _sample(rng, semiring):
    elements = semiring.sample_elements()
    return elements[rng.randrange(len(elements))]


def _random_constraint(rng, semiring, variables):
    scope = rng.sample(variables, k=rng.randint(1, len(variables)))
    return TableConstraint(
        semiring,
        scope,
        {
            assignment: _sample(rng, semiring)
            for assignment in itertools.product(*(v.domain for v in scope))
        },
    )


@pytest.mark.parametrize("semiring", LAW_SEMIRINGS)
def test_tell_is_decreasing(semiring, backend):
    rng = random.Random(3)
    variables = _vars()
    store = empty_store(semiring, backend=backend)
    for _ in range(5):
        constraint = _random_constraint(rng, semiring, variables)
        told = store.tell(constraint)
        assert constraint_leq(told.constraint, store.constraint)
        assert told.entails(constraint)
        store = told


@pytest.mark.parametrize("semiring", LAW_SEMIRINGS)
def test_retract_premise_and_relaxation(semiring, backend):
    rng = random.Random(17)
    variables = _vars()
    for _ in range(6):
        store = empty_store(semiring, backend=backend)
        told = [_random_constraint(rng, semiring, variables) for _ in range(3)]
        for constraint in told:
            store = store.tell(constraint)
        victim = rng.choice(told)
        relaxed = store.retract(victim)
        # σ ⊑ σ ÷ c: retraction only ever relaxes.
        assert constraint_leq(store.constraint, relaxed.constraint)


@pytest.mark.parametrize("semiring", LAW_SEMIRINGS)
def test_retract_unentailed_raises_r7(semiring, backend):
    variables = _vars()
    x = variables[0]
    best = TableConstraint(
        semiring, [x], {(d,): semiring.one for d in x.domain}
    )
    worst = TableConstraint(
        semiring, [x], {(d,): semiring.zero for d in x.domain}
    )
    store = empty_store(semiring, backend=backend).tell(best)
    with pytest.raises(StoreError, match="R7"):
        store.retract(worst)


def test_weighted_roundtrip_restores_store(backend):
    semiring = WeightedSemiring()
    rng = random.Random(29)
    variables = _vars()
    store = empty_store(semiring, backend=backend)
    for _ in range(3):
        var = rng.choice(variables)
        store = store.tell(
            TableConstraint(
                semiring,
                [var],
                {(d,): float(rng.randint(0, 9)) for d in var.domain},
            )
        )
    x = variables[0]
    extra = TableConstraint(
        semiring, [x], {(d,): float(rng.randint(0, 9)) for d in x.domain}
    )
    roundtrip = store.tell(extra).retract(extra)
    assert constraints_equal(roundtrip.constraint, store.constraint)


@pytest.mark.parametrize("semiring", LAW_SEMIRINGS)
def test_update_is_transactional(semiring, backend):
    """``update(X, c)`` must equal the one-step ``(σ ⇓_{V∖X}) ⊗ c``."""
    rng = random.Random(41)
    variables = _vars()
    for _ in range(6):
        store = empty_store(semiring, backend=backend)
        for _ in range(3):
            store = store.tell(_random_constraint(rng, semiring, variables))
        target = rng.choice(variables)
        fresh = _random_constraint(rng, semiring, variables)
        updated = store.update([target.name], fresh)

        keep = [v for v in variables if v.name != target.name]
        expected = combine(
            [store.constraint.project([v.name for v in keep]), fresh],
            semiring=semiring,
        )
        assert constraints_equal(updated.constraint, expected)
        if target.name not in fresh.support:
            assert target.name not in updated.support


@pytest.mark.parametrize("semiring", LAW_SEMIRINGS)
def test_update_on_unknown_variable_just_tells(semiring, backend):
    rng = random.Random(53)
    variables = _vars()
    store = empty_store(semiring, backend=backend).tell(
        _random_constraint(rng, semiring, variables)
    )
    fresh = _random_constraint(rng, semiring, variables)
    updated = store.update(["nonexistent"], fresh)
    assert constraints_equal(
        updated.constraint, store.constraint.combine(fresh)
    )


class TestConstructionFastPath:
    """Seeding a store with an already-tabulated constraint must not
    re-run compaction (the redundant ``to_table`` the refactor removed)."""

    def test_monolith_keeps_table_identity(self, weighted):
        x = variable("x", ["a", "b"])
        table = TableConstraint(weighted, [x], {("a",): 1.0, ("b",): 2.0})
        store = empty_store(weighted, backend="monolith").tell(table)
        assert store.constraint is not None
        from repro.constraints.store import MonolithStore

        seeded = MonolithStore(weighted, table)
        assert seeded.constraint is table

    def test_factored_keeps_table_identity(self, weighted):
        x = variable("x", ["a", "b"])
        table = TableConstraint(weighted, [x], {("a",): 1.0, ("b",): 2.0})
        from repro.constraints.store import FactoredStore

        seeded = FactoredStore(weighted, table)
        assert seeded.factors == (table,)
        assert seeded.factors[0] is table


class TestBackendSelection:
    def test_auto_resolves_to_factored(self, weighted):
        from repro.constraints.store import FactoredStore

        assert isinstance(empty_store(weighted), FactoredStore)
        assert isinstance(empty_store(weighted, backend="auto"), FactoredStore)

    def test_explicit_backends(self, weighted):
        from repro.constraints.store import FactoredStore, MonolithStore

        assert isinstance(
            empty_store(weighted, backend="monolith"), MonolithStore
        )
        assert isinstance(
            empty_store(weighted, backend="factored"), FactoredStore
        )

    def test_unknown_backend_rejected(self, weighted):
        with pytest.raises(StoreError):
            empty_store(weighted, backend="quantum")

    def test_default_backend_switch(self, weighted):
        from repro.constraints.store import (
            MonolithStore,
            get_default_store_backend,
            set_default_store_backend,
        )

        previous = get_default_store_backend()
        try:
            set_default_store_backend("monolith")
            assert isinstance(empty_store(weighted), MonolithStore)
        finally:
            set_default_store_backend(previous)

    def test_factored_tell_shares_tail(self, weighted):
        x = variable("x", ["a", "b"])
        base = empty_store(weighted, backend="factored")
        c1 = TableConstraint(weighted, [x], {("a",): 1.0, ("b",): 2.0})
        c2 = TableConstraint(weighted, [x], {("a",): 0.0, ("b",): 3.0})
        s1 = base.tell(c1)
        s2 = s1.tell(c2)
        # Persistent: telling into s2 never disturbed s1.
        assert s1.factors == (c1,)
        assert s2.factors == (c1, c2)
        assert s2._chain[1] is s1._chain
