"""Core soft-constraint behaviour: evaluation, ⊗, ÷, ⇓, ∃x, renaming."""

import pytest

from repro.constraints import (
    ConstantConstraint,
    ConstraintError,
    FunctionConstraint,
    TableConstraint,
    VariableError,
    constraints_equal,
    variable,
)


@pytest.fixture
def xy(weighted):
    x = variable("x", [0, 1, 2])
    y = variable("y", [0, 1, 2])
    cx = FunctionConstraint(weighted, (x,), lambda v: v + 1.0, name="cx")
    cxy = FunctionConstraint(
        weighted, (x, y), lambda a, b: float(abs(a - b)), name="cxy"
    )
    return x, y, cx, cxy


class TestEvaluation:
    def test_function_constraint_positional_args(self, xy):
        x, y, cx, cxy = xy
        assert cx({"x": 2}) == 3.0
        assert cxy({"x": 0, "y": 2}) == 2.0

    def test_extra_bindings_ignored(self, xy):
        x, y, cx, _ = xy
        assert cx({"x": 1, "unrelated": 99}) == 2.0

    def test_missing_binding_raises(self, xy):
        _, _, cx, _ = xy
        with pytest.raises(ConstraintError, match="missing variable"):
            cx({})

    def test_function_result_validated_against_semiring(self, weighted):
        x = variable("x", [0])
        bad = FunctionConstraint(weighted, (x,), lambda v: -1.0)
        from repro.semirings import SemiringError

        with pytest.raises(SemiringError):
            bad({"x": 0})

    def test_constant_constraint(self, fuzzy):
        c = ConstantConstraint(fuzzy, 0.7)
        assert c({}) == 0.7
        assert c.scope == ()


class TestCombination:
    def test_combination_is_pointwise_times(self, xy, weighted):
        x, y, cx, cxy = xy
        combined = cx.combine(cxy)
        assert combined({"x": 1, "y": 2}) == weighted.times(2.0, 1.0)

    def test_scope_union(self, xy):
        _, _, cx, cxy = xy
        assert cx.combine(cxy).support == ("x", "y")

    def test_operator_sugar(self, xy):
        _, _, cx, cxy = xy
        assert (cx * cxy)({"x": 0, "y": 0}) == (cx.combine(cxy))(
            {"x": 0, "y": 0}
        )

    def test_cross_semiring_rejected(self, weighted, fuzzy):
        x = variable("x", [0])
        a = FunctionConstraint(weighted, (x,), lambda v: 1.0)
        b = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        with pytest.raises(ConstraintError, match="cannot mix"):
            a.combine(b)

    def test_combine_with_one_is_identity(self, xy, weighted):
        _, _, cx, _ = xy
        one = ConstantConstraint(weighted, weighted.one)
        assert constraints_equal(cx.combine(one), cx)


class TestDivision:
    def test_division_pointwise(self, weighted):
        x = variable("x", range(5))
        sigma = FunctionConstraint(weighted, (x,), lambda v: 3.0 * v + 5)
        c = FunctionConstraint(weighted, (x,), lambda v: v + 3.0)
        quotient = sigma.divide(c)
        for v in range(5):
            assert quotient({"x": v}) == 2.0 * v + 2

    def test_retract_roundtrip(self, weighted):
        # (σ ⊗ c) ÷ c = σ when c's influence is entailed
        x = variable("x", range(4))
        sigma = FunctionConstraint(weighted, (x,), lambda v: 2.0 * v)
        c = FunctionConstraint(weighted, (x,), lambda v: float(v))
        roundtrip = sigma.combine(c).divide(c)
        assert constraints_equal(roundtrip, sigma)

    def test_division_sugar(self, weighted):
        x = variable("x", [0, 1])
        a = FunctionConstraint(weighted, (x,), lambda v: 5.0)
        b = FunctionConstraint(weighted, (x,), lambda v: 2.0)
        assert (a / b)({"x": 0}) == 3.0


class TestProjection:
    def test_projection_sums_out_variables(self, xy, weighted):
        x, y, _, cxy = xy
        projected = cxy.project(["x"])
        # min over y of |x − y| is always 0 (y can match x)
        for v in range(3):
            assert projected({"x": v}) == 0.0

    def test_projection_to_empty_is_consistency(self, xy):
        _, _, cx, _ = xy
        empty = cx.project([])
        assert empty({}) == 1.0
        assert empty({}) == cx.consistency()

    def test_projection_onto_full_scope_is_identity(self, xy):
        _, _, _, cxy = xy
        assert cxy.project(["x", "y"]) is cxy

    def test_projection_ignores_foreign_names(self, xy):
        _, _, cx, _ = xy
        projected = cx.project(["x", "not-a-var"])
        assert projected is cx

    def test_hide_is_complementary_projection(self, xy):
        _, _, _, cxy = xy
        assert cxy.hide("y").support == ("x",)

    def test_fuzzy_projection_takes_max(self, fuzzy):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        c = TableConstraint(
            fuzzy,
            (x, y),
            {(0, 0): 0.2, (0, 1): 0.8, (1, 0): 0.5, (1, 1): 0.1},
        )
        projected = c.project(["x"])
        assert projected({"x": 0}) == 0.8
        assert projected({"x": 1}) == 0.5


class TestRenaming:
    def test_renamed_evaluates_through_mapping(self, xy):
        _, _, cx, _ = xy
        renamed = cx.renamed({"x": "z"})
        assert renamed.support == ("z",)
        assert renamed({"z": 2}) == cx({"x": 2})

    def test_renaming_preserves_domain(self, xy):
        _, _, cx, _ = xy
        renamed = cx.renamed({"x": "z"})
        assert renamed.scope[0].domain == (0, 1, 2)

    def test_identity_renaming_is_noop(self, xy):
        _, _, cx, _ = xy
        assert cx.renamed({}) is cx

    def test_collapsing_renaming_rejected(self, xy):
        _, _, _, cxy = xy
        with pytest.raises(VariableError, match="collapses"):
            cxy.renamed({"x": "y"})

    def test_rename_then_combine(self, xy, weighted):
        _, _, cx, _ = xy
        other = cx.renamed({"x": "w"})
        combined = cx.combine(other)
        assert combined.support == ("x", "w")
        assert combined({"x": 0, "w": 2}) == weighted.times(1.0, 3.0)


class TestConsistencyAndEnumeration:
    def test_consistency_folds_plus(self, weighted):
        x = variable("x", [2, 5, 7])
        c = FunctionConstraint(weighted, (x,), float)
        assert c.consistency() == 2.0  # min cost

    def test_enumerate_values_covers_space(self, xy):
        _, _, _, cxy = xy
        entries = list(cxy.enumerate_values())
        assert len(entries) == 9
        assert all(isinstance(a, dict) for a, _ in entries)

    def test_materialize_equals_original(self, xy):
        _, _, _, cxy = xy
        assert constraints_equal(cxy.materialize(), cxy)
