"""The polynomial preference type and its lifting to constraints."""

import pytest

from repro.constraints import Polynomial, integer_variable, polynomial_constraint


class TestArithmetic:
    def test_linear_construction(self):
        p = Polynomial.linear({"x": 5}, 80)
        assert p.evaluate({"x": 3}) == 95  # "reliability = 5x + 80"

    def test_addition(self):
        p = Polynomial.linear({"x": 2}) + Polynomial.linear({"x": 1}, 5)
        assert p == Polynomial.linear({"x": 3}, 5)

    def test_addition_with_scalar(self):
        p = Polynomial.var("x") + 4
        assert p.evaluate({"x": 2}) == 6
        assert (4 + Polynomial.var("x")) == p

    def test_subtraction(self):
        # the paper's Ex. 2: (3x+5) − (x+3) = 2x+2
        p = Polynomial.linear({"x": 3}, 5) - Polynomial.linear({"x": 1}, 3)
        assert p == Polynomial.linear({"x": 2}, 2)

    def test_rsub(self):
        p = 10 - Polynomial.var("x")
        assert p.evaluate({"x": 3}) == 7

    def test_multiplication_merges_powers(self):
        p = Polynomial.var("x") * Polynomial.var("x")
        assert p == Polynomial.var("x", power=2)
        assert p.evaluate({"x": 3}) == 9

    def test_multivariate_multiplication(self):
        p = (Polynomial.var("x") + 1) * (Polynomial.var("y") + 2)
        assert p.evaluate({"x": 2, "y": 3}) == 3 * 5

    def test_scalar_multiplication(self):
        p = 3 * Polynomial.var("x")
        assert p == Polynomial.linear({"x": 3})

    def test_zero_coefficients_dropped(self):
        p = Polynomial.var("x") - Polynomial.var("x")
        assert p == Polynomial.constant(0)
        assert p.coefficients == {}

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.var("x", power=-1)

    def test_power_zero_is_one(self):
        assert Polynomial.var("x", power=0) == Polynomial.constant(1)


class TestInspection:
    def test_variables_sorted(self):
        p = Polynomial.linear({"b": 1, "a": 2}, 3)
        assert p.variables() == ("a", "b")

    def test_is_constant(self):
        assert Polynomial.constant(5).is_constant
        assert not Polynomial.var("x").is_constant

    def test_hash_and_equality(self):
        a = Polynomial.linear({"x": 2}, 2)
        b = Polynomial.linear({"x": 1}, 1) + Polynomial.linear({"x": 1}, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_str_renders_terms(self):
        text = str(Polynomial.linear({"x": 2}, 2))
        assert "x" in text and "2" in text
        assert str(Polynomial({})) == "0"


class TestLifting:
    def test_constraint_evaluates_polynomial(self, weighted):
        x = integer_variable("x", 10)
        c = polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 1}, 3)
        )
        assert c({"x": 4}) == 7.0

    def test_scope_superset_allowed(self, weighted):
        x = integer_variable("x", 5)
        y = integer_variable("y", 5)
        c = polynomial_constraint(weighted, [x, y], Polynomial.var("x"))
        assert c({"x": 3, "y": 4}) == 3.0  # constant along y

    def test_polynomial_variable_outside_scope_rejected(self, weighted):
        x = integer_variable("x", 5)
        with pytest.raises(ValueError, match="outside scope"):
            polynomial_constraint(weighted, [x], Polynomial.var("z"))

    def test_constraint_name_defaults_to_polynomial(self, weighted):
        x = integer_variable("x", 5)
        c = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 2}))
        assert "x" in c.name
