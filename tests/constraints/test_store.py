"""The immutable constraint store: tell / retract / update / entails."""

import pytest

from repro.constraints import (
    Polynomial,
    StoreError,
    constraints_equal,
    empty_store,
    integer_variable,
    polynomial_constraint,
)


@pytest.fixture
def policies(weighted):
    x = integer_variable("x", 15)
    y = integer_variable("y", 15)
    return {
        "x": x,
        "y": y,
        "c1": polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 3)),
        "c2": polynomial_constraint(weighted, [y], Polynomial.linear({"y": 1}, 1)),
        "c3": polynomial_constraint(weighted, [x], Polynomial.linear({"x": 2})),
        "c4": polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 5)),
    }


class TestEmptyStore:
    def test_empty_store_is_one(self, weighted):
        store = empty_store(weighted)
        assert store.consistency() == weighted.one
        assert store.support == ()

    def test_empty_store_entails_everything_entailable(self, fuzzy):
        from repro.constraints import ConstantConstraint

        store = empty_store(fuzzy)
        assert store.entails(ConstantConstraint(fuzzy, 1.0))
        assert not store.entails(ConstantConstraint(fuzzy, 0.3))


class TestTell:
    def test_tell_combines(self, weighted, policies):
        store = empty_store(weighted).tell(policies["c4"]).tell(policies["c3"])
        # σ = c4 ⊗ c3 ≡ 3x + 5
        assert store.value({"x": 2}) == 11.0
        assert store.consistency() == 5.0

    def test_tell_returns_new_store(self, weighted, policies):
        base = empty_store(weighted)
        told = base.tell(policies["c1"])
        assert base.consistency() == 0.0
        assert told.consistency() == 3.0

    def test_tell_is_monotone_in_weighted(self, weighted, policies):
        store = empty_store(weighted)
        levels = []
        for c in (policies["c4"], policies["c3"], policies["c1"]):
            store = store.tell(c)
            levels.append(store.consistency())
        # consistency can only get numerically worse (≤S-decreasing)
        assert levels == sorted(levels)

    def test_cross_semiring_tell_rejected(self, weighted, fuzzy):
        from repro.constraints import ConstantConstraint

        store = empty_store(weighted)
        with pytest.raises(StoreError):
            store.tell(ConstantConstraint(fuzzy, 0.5))


class TestRetract:
    def test_paper_example2(self, weighted, policies):
        x = policies["x"]
        store = empty_store(weighted).tell(policies["c4"]).tell(policies["c3"])
        relaxed = store.retract(policies["c1"])
        target = polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 2}, 2)
        )
        assert constraints_equal(relaxed.constraint, target)
        assert relaxed.consistency() == 2.0

    def test_retract_requires_entailment(self, weighted, policies):
        store = empty_store(weighted).tell(policies["c1"])
        with pytest.raises(StoreError, match="R7"):
            store.retract(policies["c4"])  # x+5 not entailed by x+3

    def test_tell_retract_roundtrip(self, weighted, policies):
        base = empty_store(weighted).tell(policies["c3"])
        roundtrip = base.tell(policies["c1"]).retract(policies["c1"])
        assert constraints_equal(roundtrip.constraint, base.constraint)

    def test_partial_removal_without_prior_tell(self, weighted, policies):
        # Paper: "c1 has not ever been added to the store before, so this
        # retraction behaves as a relaxation."
        store = empty_store(weighted).tell(policies["c4"]).tell(policies["c3"])
        assert store.entails(policies["c1"])
        relaxed = store.retract(policies["c1"])
        assert relaxed.consistency() == 2.0


class TestUpdate:
    def test_paper_example3(self, weighted, policies):
        y = policies["y"]
        store = empty_store(weighted).tell(policies["c1"])
        updated = store.update(["x"], policies["c2"])
        target = polynomial_constraint(
            weighted, [y], Polynomial.linear({"y": 1}, 4)
        )
        assert constraints_equal(updated.constraint, target)

    def test_update_keeps_projected_residue(self, weighted, policies):
        # The constant 3 of c1 survives the refresh of x.
        store = empty_store(weighted).tell(policies["c1"])
        updated = store.update(["x"], policies["c2"])
        assert updated.value({"y": 0}) == 4.0

    def test_update_unknown_variable_is_noop_projection(
        self, weighted, policies
    ):
        store = empty_store(weighted).tell(policies["c1"])
        updated = store.update(["zz"], policies["c2"])
        # x is untouched; c2 simply combined
        assert updated.value({"x": 1, "y": 1}) == 4.0 + 2.0

    def test_update_accepts_variable_objects(self, weighted, policies):
        store = empty_store(weighted).tell(policies["c1"])
        updated = store.update([policies["x"]], policies["c2"])
        assert "x" not in updated.support


class TestQueries:
    def test_entailment(self, weighted, policies):
        store = empty_store(weighted).tell(policies["c4"]).tell(policies["c3"])
        assert store.entails(policies["c1"])   # 3x+5 ≥ x+3 everywhere
        assert store.entails(policies["c4"])
        assert not empty_store(weighted).entails(policies["c1"])

    def test_projection_interface(self, weighted, policies):
        store = (
            empty_store(weighted)
            .tell(policies["c1"])
            .tell(policies["c2"])
        )
        interface = store.project(["x"])
        assert interface.support == ("x",)
        # min over y of (x+3 + y+1) = x + 4
        assert interface.value({"x": 2}) == 6.0

    def test_repr_mentions_support(self, weighted, policies):
        store = empty_store(weighted).tell(policies["c1"])
        assert "x" in repr(store)
