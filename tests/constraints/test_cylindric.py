"""Diagonal constraints and cylindric parameter passing."""

import pytest

from repro.constraints import (
    ConstraintError,
    DiagonalConstraint,
    FunctionConstraint,
    constraints_equal,
    diagonal,
    parameter_passing,
    variable,
)


@pytest.fixture
def vars3(fuzzy):
    x = variable("x", [0, 1, 2])
    y = variable("y", [0, 1, 2])
    z = variable("z", [0, 1, 2])
    return x, y, z


class TestDiagonal:
    def test_one_on_diagonal_zero_off(self, fuzzy, vars3):
        x, y, _ = vars3
        d = diagonal(fuzzy, x, y)
        assert d({"x": 1, "y": 1}) == fuzzy.one
        assert d({"x": 1, "y": 2}) == fuzzy.zero

    def test_same_variable_rejected(self, fuzzy, vars3):
        x, _, _ = vars3
        with pytest.raises(ConstraintError):
            DiagonalConstraint(fuzzy, x, x)

    def test_missing_binding_raises(self, fuzzy, vars3):
        x, y, _ = vars3
        d = diagonal(fuzzy, x, y)
        with pytest.raises(ConstraintError, match="missing"):
            d({"x": 1})

    def test_diagonal_works_on_weighted(self, weighted, vars3):
        x, y, _ = vars3
        d = DiagonalConstraint(weighted, x, y)
        assert d({"x": 0, "y": 0}) == weighted.one
        assert d({"x": 0, "y": 1}) == weighted.zero


class TestParameterPassing:
    def test_equivalent_to_renaming(self, fuzzy, vars3):
        """∃formal.(body ⊗ d_{formal,actual}) ≡ body[formal/actual].

        This is the classical cylindric-algebra fact the procedure-call
        rule relies on; it requires an idempotent-+ semiring where the
        diagonal zeros kill the mismatched tuples under projection.
        """
        x, y, _ = vars3
        body = FunctionConstraint(fuzzy, (x,), lambda v: [0.2, 0.9, 0.5][v])
        via_diagonal = parameter_passing(fuzzy, body, formal=x, actual=y)
        via_renaming = body.renamed({"x": "y"})
        assert constraints_equal(via_diagonal, via_renaming)

    def test_weighted_equivalence(self, weighted, vars3):
        x, y, _ = vars3
        body = FunctionConstraint(weighted, (x,), lambda v: float(v * 3 + 1))
        via_diagonal = parameter_passing(weighted, body, formal=x, actual=y)
        via_renaming = body.renamed({"x": "y"})
        assert constraints_equal(via_diagonal, via_renaming)

    def test_same_variable_shortcircuits(self, fuzzy, vars3):
        x, _, _ = vars3
        body = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        assert parameter_passing(fuzzy, body, formal=x, actual=x) is body

    def test_binary_body(self, fuzzy, vars3):
        x, y, z = vars3
        body = FunctionConstraint(
            fuzzy, (x, z), lambda a, b: 1.0 if a == b else 0.3
        )
        passed = parameter_passing(fuzzy, body, formal=x, actual=y)
        assert set(passed.support) == {"y", "z"}
        assert passed({"y": 1, "z": 1}) == 1.0
        assert passed({"y": 1, "z": 0}) == 0.3
