"""Extensional (table) constraints and materialization."""

import pytest

from repro.constraints import (
    ConstraintError,
    FunctionConstraint,
    TableConstraint,
    constraints_equal,
    to_table,
    variable,
)


class TestTableConstruction:
    def test_basic_lookup(self, weighted, fig1):
        c2 = fig1["c2"]
        assert c2({"X": "a", "Y": "b"}) == 1
        assert c2({"X": "b", "Y": "a"}) == 2

    def test_scalar_keys_promoted_to_tuples(self, weighted):
        x = variable("x", [0, 1])
        c = TableConstraint(weighted, [x], {0: 5.0, 1: 7.0})
        assert c({"x": 0}) == 5.0

    def test_missing_tuple_takes_default(self, fuzzy):
        x = variable("x", [0, 1, 2])
        c = TableConstraint(fuzzy, [x], {(0,): 0.9}, default=0.1)
        assert c({"x": 1}) == 0.1

    def test_default_defaults_to_zero(self, fuzzy):
        x = variable("x", [0, 1])
        c = TableConstraint(fuzzy, [x], {(0,): 0.9})
        assert c({"x": 1}) == fuzzy.zero

    def test_wrong_arity_key_rejected(self, fuzzy):
        x = variable("x", [0, 1])
        with pytest.raises(ConstraintError, match="arity"):
            TableConstraint(fuzzy, [x], {(0, 1): 0.5})

    def test_value_outside_domain_rejected(self, fuzzy):
        x = variable("x", [0, 1])
        with pytest.raises(ConstraintError, match="domain"):
            TableConstraint(fuzzy, [x], {(7,): 0.5})

    def test_non_semiring_value_rejected(self, fuzzy):
        from repro.semirings import SemiringError

        x = variable("x", [0])
        with pytest.raises(SemiringError):
            TableConstraint(fuzzy, [x], {(0,): 3.5})

    def test_missing_scope_binding_raises(self, fuzzy):
        x = variable("x", [0])
        c = TableConstraint(fuzzy, [x], {(0,): 1.0}, name="t")
        with pytest.raises(ConstraintError, match="missing variable"):
            c({})


class TestItems:
    def test_items_cover_full_space_with_defaults(self, fuzzy):
        x = variable("x", [0, 1, 2])
        c = TableConstraint(fuzzy, [x], {(0,): 0.9}, default=0.2)
        assert dict(c.items()) == {(0,): 0.9, (1,): 0.2, (2,): 0.2}


class TestToTable:
    def test_materializes_lazy_tree(self, weighted, fig1):
        combined = fig1["c1"].combine(fig1["c2"]).combine(fig1["c3"])
        table = to_table(combined)
        assert dict(table.items()) == {
            ("a", "a"): 11,
            ("a", "b"): 7,
            ("b", "a"): 16,
            ("b", "b"): 16,
        }

    def test_table_passthrough(self, fig1):
        assert to_table(fig1["c1"]) is fig1["c1"]

    def test_materialized_equals_lazy(self, weighted):
        x = variable("x", range(4))
        c = FunctionConstraint(weighted, (x,), lambda v: v * 2.0)
        assert constraints_equal(to_table(c), c)

    def test_projection_materializes_correctly(self, fig1):
        combined = fig1["c1"].combine(fig1["c2"]).combine(fig1["c3"])
        projected = to_table(combined.project(["X"]))
        assert dict(projected.items()) == {("a",): 7, ("b",): 16}
