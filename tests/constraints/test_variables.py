"""Variables, domains, scopes and assignment enumeration."""

import pytest

from repro.constraints import (
    Variable,
    VariableError,
    assignment_space_size,
    integer_variable,
    iter_assignments,
    merge_scopes,
    scope_names,
    variable,
)


class TestVariable:
    def test_construction_and_size(self):
        v = variable("x", [1, 2, 3])
        assert v.name == "x"
        assert v.domain == (1, 2, 3)
        assert v.size == 3

    def test_domain_coerced_to_tuple(self):
        v = Variable("x", [1, 2])
        assert isinstance(v.domain, tuple)

    def test_empty_name_rejected(self):
        with pytest.raises(VariableError):
            Variable("", (1,))

    def test_empty_domain_rejected(self):
        with pytest.raises(VariableError):
            Variable("x", ())

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(VariableError):
            Variable("x", (1, 1, 2))

    def test_frozen_and_hashable(self):
        a = variable("x", [1, 2])
        b = variable("x", [1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestIntegerVariable:
    def test_inclusive_bounds(self):
        v = integer_variable("n", 3)
        assert v.domain == (0, 1, 2, 3)

    def test_custom_lower(self):
        v = integer_variable("n", 5, lower=2)
        assert v.domain == (2, 3, 4, 5)

    def test_empty_range_rejected(self):
        with pytest.raises(VariableError):
            integer_variable("n", 1, lower=5)


class TestScopes:
    def test_merge_preserves_first_occurrence_order(self):
        x = variable("x", [1])
        y = variable("y", [1])
        z = variable("z", [1])
        merged = merge_scopes([x, y], [y, z])
        assert scope_names(merged) == ("x", "y", "z")

    def test_merge_rejects_conflicting_domains(self):
        with pytest.raises(VariableError):
            merge_scopes([variable("x", [1])], [variable("x", [2])])

    def test_merge_accepts_identical_duplicates(self):
        x = variable("x", [1, 2])
        assert merge_scopes([x], [x]) == (x,)


class TestEnumeration:
    def test_cartesian_order(self):
        x = variable("x", [0, 1])
        y = variable("y", ["a", "b"])
        combos = list(iter_assignments([x, y]))
        assert combos == [
            {"x": 0, "y": "a"},
            {"x": 0, "y": "b"},
            {"x": 1, "y": "a"},
            {"x": 1, "y": "b"},
        ]

    def test_base_fixes_variables(self):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        combos = list(iter_assignments([x, y], base={"x": 1}))
        assert combos == [{"x": 1, "y": 0}, {"x": 1, "y": 1}]

    def test_base_entries_propagate(self):
        x = variable("x", [0, 1])
        combos = list(iter_assignments([x], base={"other": 9}))
        assert all(a["other"] == 9 for a in combos)

    def test_empty_scope_yields_single_assignment(self):
        assert list(iter_assignments([])) == [{}]

    def test_space_size(self):
        x = variable("x", range(4))
        y = variable("y", range(5))
        assert assignment_space_size([x, y]) == 20
        assert assignment_space_size([]) == 1

    def test_yielded_dicts_are_independent(self):
        x = variable("x", [0, 1])
        combos = list(iter_assignments([x]))
        combos[0]["x"] = 99
        assert combos[1]["x"] == 1
