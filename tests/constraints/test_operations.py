"""Module-level operations: combine, entailment, order, blevel."""

import pytest

from repro.constraints import (
    ConstantConstraint,
    ConstraintError,
    FunctionConstraint,
    best_assignments,
    blevel,
    combine,
    constraint_leq,
    constraints_equal,
    entails,
    variable,
)


@pytest.fixture
def simple(fuzzy):
    x = variable("x", [0, 1, 2])
    loose = FunctionConstraint(fuzzy, (x,), lambda v: 0.9, name="loose")
    tight = FunctionConstraint(
        fuzzy, (x,), lambda v: 0.9 if v == 0 else 0.1, name="tight"
    )
    return x, loose, tight


class TestCombine:
    def test_combine_list(self, simple, fuzzy):
        x, loose, tight = simple
        both = combine([loose, tight])
        assert both({"x": 1}) == 0.1

    def test_combine_empty_needs_semiring(self, fuzzy):
        with pytest.raises(ConstraintError):
            combine([])
        one = combine([], semiring=fuzzy)
        assert one({}) == fuzzy.one

    def test_combine_single_is_that_constraint(self, simple):
        _, loose, _ = simple
        assert combine([loose]) is loose


class TestOrder:
    def test_tight_below_loose(self, simple):
        _, loose, tight = simple
        assert constraint_leq(tight, loose)
        assert not constraint_leq(loose, tight)

    def test_order_reflexive(self, simple):
        _, loose, _ = simple
        assert constraint_leq(loose, loose)

    def test_order_over_disjoint_scopes(self, fuzzy):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        cx = FunctionConstraint(fuzzy, (x,), lambda v: 0.3)
        cy = FunctionConstraint(fuzzy, (y,), lambda v: 0.8)
        assert constraint_leq(cx, cy)

    def test_cross_semiring_comparison_rejected(self, fuzzy, weighted):
        x = variable("x", [0])
        a = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        b = FunctionConstraint(weighted, (x,), lambda v: 2.0)
        with pytest.raises(ConstraintError):
            constraint_leq(a, b)


class TestEntailment:
    def test_combined_store_entails_members(self, simple, fuzzy):
        x, loose, tight = simple
        # ⊗{loose, tight} ⊑ loose and ⊑ tight (× is glb here)
        assert entails([loose, tight], loose)
        assert entails([loose, tight], tight)

    def test_single_constraint_store(self, simple):
        _, loose, tight = simple
        assert entails(tight, loose)
        assert not entails(loose, tight)

    def test_weighted_entailment_direction(self, weighted):
        # On Weighted, the costlier store entails the cheaper constraint.
        x = variable("x", range(3))
        sigma = FunctionConstraint(weighted, (x,), lambda v: 3.0 * v + 5)
        c = FunctionConstraint(weighted, (x,), lambda v: v + 3.0)
        assert entails(sigma, c)
        assert not entails(c, sigma)


class TestEquality:
    def test_extensional_equality(self, fuzzy):
        x = variable("x", [0, 1])
        a = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        b = FunctionConstraint(fuzzy, (x,), lambda v: 1.0 - 0.5)
        assert constraints_equal(a, b)

    def test_different_semirings_never_equal(self, fuzzy, probabilistic):
        a = ConstantConstraint(fuzzy, 0.5)
        b = ConstantConstraint(probabilistic, 0.5)
        assert not constraints_equal(a, b)

    def test_uses_semiring_tolerance(self, probabilistic):
        x = variable("x", [0])
        a = FunctionConstraint(probabilistic, (x,), lambda v: 0.1 + 0.2)
        b = FunctionConstraint(probabilistic, (x,), lambda v: 0.3)
        assert constraints_equal(a, b)


class TestBlevelAndBest:
    def test_blevel_fig1(self, fig1):
        combined = combine([fig1["c1"], fig1["c2"], fig1["c3"]])
        assert blevel(combined) == 7.0

    def test_best_assignments_total_order(self, fig1):
        combined = combine([fig1["c1"], fig1["c2"], fig1["c3"]])
        frontier, groups = best_assignments(combined)
        assert frontier == [7.0]
        assert groups == [[{"X": "a", "Y": "b"}]]

    def test_best_assignments_pareto(self, product):
        x = variable("x", [0, 1, 2])
        c = FunctionConstraint(
            product,
            (x,),
            lambda v: [(1.0, 0.2), (5.0, 0.9), (9.0, 0.1)][v],
        )
        frontier, groups = best_assignments(c)
        assert set(frontier) == {(1.0, 0.2), (5.0, 0.9)}
        flattened = [a for group in groups for a in group]
        assert {"x": 0} in flattened and {"x": 1} in flattened
        assert {"x": 2} not in flattened
