"""The unachievable-SLO detector: sound and complete against exhaustive
enumeration on small plans, and every rejection actionable."""

import itertools

import pytest

from repro.dependability.metrics import (
    k_out_of_n_reliability,
    parallel_reliability,
)
from repro.semirings.registry import get_semiring
from repro.slo import (
    SLOError,
    UnachievableSLOError,
    check_slo,
    composite_bound,
)
from repro.soa import Choose, Invoke, Pipeline, Split

PROB = get_semiring("probabilistic")


def exhaustive_achievable(plan, level_sets, target, **kw):
    """Ground truth: some per-service level choice reaches the target."""
    names = sorted(level_sets)
    for combo in itertools.product(*(level_sets[n] for n in names)):
        bound = composite_bound(plan, dict(zip(names, combo)), **kw)
        if PROB.geq(bound, target):
            return True
    return False


class TestSoundAndComplete:
    """The detector must agree with exhaustive enumeration when fed each
    service's best level — on every plan shape ≤ 6 services."""

    PLANS = [
        Pipeline([Invoke("a"), Invoke("b")]),
        Split([Invoke("a"), Invoke("b"), Invoke("c")]),
        Choose([Invoke("a"), Invoke("b")]),
        Pipeline(
            [
                Invoke("a"),
                Split([Invoke("b"), Invoke("c")]),
                Choose([Invoke("d"), Invoke("e")]),
            ]
        ),
        Pipeline(
            [
                Choose([Invoke("a"), Invoke("b")]),
                Split(
                    [Invoke("c"), Pipeline([Invoke("d"), Invoke("e")])]
                ),
                Invoke("f"),
            ]
        ),
    ]
    LEVEL_SETS = {
        name: levels
        for name, levels in zip(
            "abcdef",
            (
                [0.9, 0.95, 0.99],
                [0.8, 0.9],
                [0.97, 0.99],
                [0.85, 0.95],
                [0.9, 0.999],
                [0.96, 0.98],
            ),
        )
    }

    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.describe())
    @pytest.mark.parametrize("choose", ["worst-case", "redundant"])
    @pytest.mark.parametrize(
        "target", [0.5, 0.8, 0.9, 0.95, 0.99, 0.999, 1.0]
    )
    def test_verdict_matches_enumeration(self, plan, choose, target):
        sets = {
            name: self.LEVEL_SETS[name] for name in plan.services()
        }
        best = {name: max(values) for name, values in sets.items()}
        verdict = check_slo(plan, best, target, choose=choose)
        truth = exhaustive_achievable(plan, sets, target, choose=choose)
        assert verdict.achievable == truth

    def test_every_rejection_carries_remediation(self):
        for plan in self.PLANS:
            best = {n: max(self.LEVEL_SETS[n]) for n in plan.services()}
            verdict = check_slo(plan, best, 0.9999)
            if not verdict.achievable:
                assert verdict.remediations
                for remedy in verdict.remediations:
                    assert remedy.detail
                    assert remedy.action in (
                        "raise-stage-level",
                        "uniform-stage-level",
                        "replicate-stage",
                        "k-out-of-n",
                        "restructure-plan",
                    )


class TestVerdictShape:
    def test_achievable_has_margin_and_no_remediations(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        verdict = check_slo(plan, {"a": 0.99, "b": 0.99}, 0.97)
        assert verdict.achievable
        assert verdict.margin == pytest.approx(0.99 * 0.99 - 0.97)
        assert verdict.remediations == ()
        assert verdict.raise_if_unachievable() is verdict

    def test_unachievable_raises_typed_error_with_hint(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        verdict = check_slo(plan, {"a": 0.9, "b": 0.9}, 0.95)
        assert not verdict.achievable
        with pytest.raises(UnachievableSLOError, match="try:") as excinfo:
            verdict.raise_if_unachievable()
        assert excinfo.value.verdict is verdict

    def test_to_dict_round_trips_the_essentials(self):
        plan = Split([Invoke("a"), Invoke("b")])
        payload = check_slo(plan, {"a": 0.9, "b": 0.9}, 0.99).to_dict()
        assert payload["achievable"] is False
        assert payload["stages"][0]["label"] == "a"
        assert payload["remediations"][0]["detail"]

    def test_invalid_target_rejected(self):
        plan = Invoke("a")
        with pytest.raises(SLOError, match="not a"):
            check_slo(plan, {"a": 0.9}, 1.5)

    def test_unknown_attribute_needs_semiring(self):
        plan = Invoke("a")
        with pytest.raises(SLOError, match="semiring"):
            check_slo(plan, {"a": 0.9}, 0.5, attribute="carbon")

    def test_cost_targets_use_the_weighted_order(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        costs = {"a": 2.0, "b": 3.0}
        assert check_slo(plan, costs, 6.0, attribute="cost").achievable
        cheap = check_slo(plan, costs, 4.0, attribute="cost")
        assert not cheap.achievable
        assert cheap.remediations


class TestRemediations:
    def test_raise_stage_level_suggestion_achieves(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        levels = {"a": 0.9, "b": 0.999}
        verdict = check_slo(plan, levels, 0.95)
        remedy = next(
            r
            for r in verdict.remediations
            if r.action == "raise-stage-level"
        )
        assert remedy.stage == "a"  # the weakest stage
        patched = dict(levels, a=remedy.suggested_level)
        assert composite_bound(plan, patched) >= 0.95 - 1e-9

    def test_replicate_stage_suggestion_achieves(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        levels = {"a": 0.9, "b": 0.999}
        verdict = check_slo(plan, levels, 0.95)
        remedy = next(
            r for r in verdict.remediations if r.action == "replicate-stage"
        )
        effective = parallel_reliability([0.9] * remedy.replicas)
        assert effective == pytest.approx(remedy.suggested_level)
        assert composite_bound(
            plan, dict(levels, a=effective)
        ) >= 0.95 - 1e-9

    def test_k_out_of_n_suggestion_achieves(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        levels = {"a": 0.9, "b": 0.999}
        verdict = check_slo(plan, levels, 0.95)
        remedy = next(
            r for r in verdict.remediations if r.action == "k-out-of-n"
        )
        assert 2 <= remedy.quorum <= remedy.replicas
        effective = k_out_of_n_reliability(
            0.9, remedy.quorum, remedy.replicas
        )
        assert effective == pytest.approx(remedy.suggested_level)
        assert composite_bound(
            plan, dict(levels, a=effective)
        ) >= 0.95 - 1e-9

    def test_uniform_suggestion_when_no_single_stage_suffices(self):
        plan = Pipeline([Invoke("a"), Invoke("b"), Invoke("c")])
        levels = {"a": 0.9, "b": 0.9, "c": 0.9}
        verdict = check_slo(plan, levels, 0.99)
        remedy = next(
            r
            for r in verdict.remediations
            if r.action == "uniform-stage-level"
        )
        uniform = {s: remedy.suggested_level for s in levels}
        assert composite_bound(plan, uniform) >= 0.99 - 1e-9

    def test_weakest_stage_ties_break_deterministically(self):
        plan = Pipeline([Invoke("b"), Invoke("a")])
        verdict = check_slo(plan, {"a": 0.9, "b": 0.9}, 0.88)
        staged = [
            r.stage
            for r in verdict.remediations
            if r.action in ("raise-stage-level", "replicate-stage")
        ]
        assert staged and all(stage == "a" for stage in staged)
