"""Error-budget attribution, adaptive buffers and the full report."""

import math

import pytest

from repro.dependability.metrics import (
    ObservationWindow,
    wilson_lower_bound,
)
from repro.slo import (
    DEFAULT_BUFFER,
    SLOError,
    analyze,
    effective_level,
    effective_levels,
    error_budget,
    render_text,
    share_of,
    window_from_reports,
)
from repro.soa import ExecutionReport, Invoke, Pipeline, Split
from repro.soa.service import InvocationOutcome


class TestShareOf:
    def test_share_is_unavailability_over_budget(self):
        assert share_of(0.99, 0.95) == pytest.approx(0.01 / 0.05)

    def test_perfect_level_spends_nothing(self):
        assert share_of(1.0, 0.99) == 0.0

    def test_zero_budget_with_failures_is_infinite(self):
        assert math.isinf(share_of(0.99, 1.0))
        assert share_of(1.0, 1.0) == 0.0

    def test_rejects_non_probabilities(self):
        with pytest.raises(SLOError):
            share_of(1.5, 0.9)
        with pytest.raises(SLOError):
            share_of(0.9, -0.1)


class TestErrorBudget:
    PLAN = Pipeline(
        [Invoke("a"), Split([Invoke("b"), Invoke("c")]), Invoke("d")]
    )
    LEVELS = {"a": 0.999, "b": 0.99, "c": 0.995, "d": 0.96}

    def test_flags_stages_over_the_share(self):
        budget = error_budget(self.PLAN, self.LEVELS, 0.9)
        by_stage = {s.stage: s for s in budget.shares}
        # budget = 0.1; d alone consumes 0.04/0.1 = 40% > 30%.
        assert by_stage["d"].flagged
        assert not by_stage["a"].flagged
        assert budget.flagged() == (by_stage["d"],)

    def test_shares_sum_to_spent_share(self):
        budget = error_budget(self.PLAN, self.LEVELS, 0.9)
        assert budget.spent_share == pytest.approx(
            sum(s.share for s in budget.shares)
        )
        assert budget.composite == pytest.approx(
            0.999 * 0.99 * 0.995 * 0.96
        )

    def test_custom_flag_share(self):
        budget = error_budget(
            self.PLAN, self.LEVELS, 0.9, flag_share=0.01
        )
        assert len(budget.flagged()) == len(budget.shares)

    def test_additive_attributes_refused(self):
        with pytest.raises(SLOError, match="probability-valued"):
            error_budget(self.PLAN, self.LEVELS, 5.0, attribute="cost")

    def test_degenerate_targets_refused(self):
        with pytest.raises(SLOError, match="budget"):
            error_budget(self.PLAN, self.LEVELS, 1.0)

    def test_to_dict_is_json_shaped(self):
        payload = error_budget(self.PLAN, self.LEVELS, 0.9).to_dict()
        assert payload["budget"] == pytest.approx(0.1)
        assert all("share" in s for s in payload["shares"])


class TestAdaptiveBuffers:
    def test_no_history_falls_back_to_buffered_published(self):
        level = effective_level("s", 0.99)
        assert level.effective == pytest.approx(0.99 * DEFAULT_BUFFER)
        assert not level.informative
        assert level.observed_lower is None

    def test_below_min_attempts_is_uninformative(self):
        window = ObservationWindow(attempts=3, failures=0)
        level = effective_level("s", 0.99, window, min_attempts=5)
        assert not level.informative
        assert level.effective == pytest.approx(0.99 * DEFAULT_BUFFER)
        # The optimistic window.reliability (1.0) must NOT leak in: an
        # informative read of 3/3 successes would have *raised* the
        # level toward min(1.0, 0.99) × buffer.
        assert level.attempts == 3

    def test_informative_history_uses_wilson_min_published(self):
        window = ObservationWindow(attempts=100, failures=2)
        level = effective_level("s", 0.99, window, buffer=0.9)
        lower = wilson_lower_bound(98, 100)
        assert level.informative
        assert level.observed_lower == pytest.approx(lower)
        assert level.effective == pytest.approx(min(lower, 0.99) * 0.9)

    def test_lucky_streak_capped_by_published(self):
        window = ObservationWindow(attempts=10_000, failures=0)
        level = effective_level("s", 0.9, window, buffer=1.0)
        assert wilson_lower_bound(10_000, 10_000) > 0.9
        assert level.effective == pytest.approx(0.9)

    def test_input_validation(self):
        with pytest.raises(SLOError):
            effective_level("s", 1.5)
        with pytest.raises(SLOError):
            effective_level("s", 0.9, buffer=0.0)
        with pytest.raises(SLOError):
            effective_level("s", 0.9, min_attempts=0)

    def test_batch_helper_covers_every_service(self):
        levels = effective_levels(
            {"a": 0.99, "b": 0.9},
            {"a": ObservationWindow(attempts=50, failures=1)},
        )
        assert set(levels) == {"a", "b"}
        assert levels["a"].informative
        assert not levels["b"].informative


class TestWindowFromReports:
    def make_report(self, tick, outcomes, success=True):
        return ExecutionReport(
            tick=tick,
            success=success,
            latency_ms=1.0,
            outcomes=outcomes,
        )

    def test_per_service_counting(self):
        reports = [
            self.make_report(
                0,
                [
                    InvocationOutcome("a", True, 1.0),
                    InvocationOutcome("b", False, 1.0),
                ],
            ),
            self.make_report(1, [InvocationOutcome("a", False, 1.0)]),
        ]
        window = window_from_reports(reports, "a")
        assert (window.attempts, window.failures) == (2, 1)

    def test_whole_plan_counting(self):
        reports = [
            self.make_report(0, [], success=True),
            self.make_report(1, [], success=False),
            self.make_report(2, [], success=False),
        ]
        window = window_from_reports(reports)
        assert (window.attempts, window.failures) == (3, 2)


class TestObservationWindowHelpers:
    def test_conventions_disagree_on_purpose_at_zero(self):
        empty = ObservationWindow(attempts=0, failures=0)
        assert empty.reliability == 1.0  # optimistic (monitor prior)
        assert empty.wilson_reliability() == 0.0  # conservative
        assert not empty.informative()

    def test_informative_guard(self):
        window = ObservationWindow(attempts=4, failures=1)
        assert window.informative()
        assert not window.informative(min_attempts=5)
        with pytest.raises(Exception):
            window.informative(min_attempts=0)

    def test_successes_and_merge(self):
        merged = ObservationWindow(attempts=10, failures=2).merged(
            ObservationWindow(attempts=5, failures=1)
        )
        assert merged.successes == 12
        assert (merged.attempts, merged.failures) == (15, 3)


class TestAnalyzeAndRender:
    PLAN = Pipeline([Invoke("a"), Invoke("b")])

    def test_trust_published_skips_discounting(self):
        report = analyze(
            self.PLAN, {"a": 0.99, "b": 0.98}, 0.9, trust_published=True
        )
        assert report.achievable
        assert report.verdict.bound == pytest.approx(0.99 * 0.98)
        assert all(
            lv.effective == lv.published for lv in report.levels
        )

    def test_buffered_analysis_is_more_conservative(self):
        trusted = analyze(
            self.PLAN, {"a": 0.99, "b": 0.98}, 0.9, trust_published=True
        )
        buffered = analyze(self.PLAN, {"a": 0.99, "b": 0.98}, 0.9)
        assert buffered.verdict.bound < trusted.verdict.bound

    def test_budget_attached_for_probability_targets(self):
        report = analyze(self.PLAN, {"a": 0.99, "b": 0.98}, 0.9)
        assert report.budget is not None
        assert report.budget.target == 0.9

    def test_render_text_names_the_findings(self):
        report = analyze(
            self.PLAN,
            {"a": 0.99, "b": 0.9},
            0.98,
            observations={
                "a": ObservationWindow(attempts=100, failures=1)
            },
        )
        text = render_text(report)
        assert "UNACHIEVABLE" in text
        assert "remediation" in text
        assert "wilson" in text  # a's informative history is shown
        assert "no informative history" in text  # b has none

    def test_to_dict_serializes(self):
        import json

        payload = analyze(
            self.PLAN, {"a": 0.99, "b": 0.98}, 0.9, trust_published=True
        ).to_dict()
        assert json.loads(json.dumps(payload))["achievable"] is True
