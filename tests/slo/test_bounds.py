"""Bound propagation: the analytics column stays pinned to the semiring
column and to the classical block-diagram closed forms."""

import pytest

from repro.dependability.metrics import (
    compose_series_parallel,
    parallel_reliability,
    series_reliability,
)
from repro.slo import (
    CHOOSE_MODES,
    SLOError,
    analysis_rule,
    composite_bound,
    stage_bounds,
)
from repro.soa import (
    AGGREGATION_RULES,
    AggregationRule,
    Choose,
    Invoke,
    Pipeline,
    Split,
    aggregate,
)

LEVELS = {"a": 0.99, "b": 0.95, "c": 0.9, "d": 0.8}


class TestAnalysisRule:
    def test_worst_case_is_the_table_rule_itself(self):
        for attribute in AGGREGATION_RULES:
            assert (
                analysis_rule(attribute, "worst-case")
                is AGGREGATION_RULES[attribute]
            )

    def test_redundant_substitutes_only_the_choose_column(self):
        rule = analysis_rule("availability", "redundant")
        base = AGGREGATION_RULES["availability"]
        assert rule.sequence is base.sequence
        assert rule.split is base.split
        assert rule.choose is parallel_reliability

    def test_redundant_refused_for_additive_attributes(self):
        with pytest.raises(SLOError, match="probability-valued"):
            analysis_rule("cost", "redundant")

    def test_redundant_allowed_with_explicit_rule(self):
        custom = AGGREGATION_RULES["availability"]
        rule = analysis_rule("cost", "redundant", rule=custom)
        assert rule.choose is parallel_reliability

    def test_unknown_choose_mode(self):
        with pytest.raises(SLOError, match="unknown choose mode"):
            analysis_rule("availability", "majority")
        assert "worst-case" in CHOOSE_MODES

    def test_unknown_attribute_names_the_known_ones(self):
        with pytest.raises(SLOError, match="rule="):
            analysis_rule("carbon-footprint")


class TestCompositeBound:
    def test_pipeline_equals_series_reliability(self):
        plan = Pipeline([Invoke("a"), Invoke("b"), Invoke("c")])
        assert composite_bound(plan, LEVELS) == pytest.approx(
            series_reliability([0.99, 0.95, 0.9])
        )

    def test_split_also_multiplies(self):
        plan = Split([Invoke("a"), Invoke("b")])
        assert composite_bound(plan, LEVELS) == pytest.approx(0.99 * 0.95)

    def test_worst_case_choose_takes_the_min(self):
        plan = Choose([Invoke("a"), Invoke("d")])
        assert composite_bound(plan, LEVELS) == pytest.approx(0.8)

    def test_redundant_choose_is_parallel_reliability(self):
        plan = Choose([Invoke("a"), Invoke("d")])
        assert composite_bound(
            plan, LEVELS, choose="redundant"
        ) == pytest.approx(parallel_reliability([0.99, 0.8]))

    def test_redundant_pipeline_matches_compose_series_parallel(self):
        plan = Pipeline(
            [
                Choose([Invoke("a"), Invoke("b")]),
                Choose([Invoke("c"), Invoke("d")]),
            ]
        )
        assert composite_bound(
            plan, LEVELS, choose="redundant"
        ) == pytest.approx(
            compose_series_parallel([[0.99, 0.95], [0.9, 0.8]])
        )

    def test_pinned_to_aggregate_for_every_attribute(self):
        plan = Pipeline(
            [Invoke("a"), Split([Invoke("b"), Invoke("c")]), Invoke("d")]
        )
        for attribute in AGGREGATION_RULES:
            assert composite_bound(
                plan, LEVELS, attribute
            ) == aggregate(plan, LEVELS, attribute)

    def test_cost_bound_sums(self):
        plan = Pipeline([Invoke("a"), Invoke("b")])
        costs = {"a": 2.0, "b": 3.5}
        assert composite_bound(plan, costs, "cost") == pytest.approx(5.5)

    def test_custom_rule_passthrough(self):
        rule = AggregationRule(sequence=max, split=max, choose=max)
        plan = Pipeline([Invoke("a"), Invoke("d")])
        assert composite_bound(
            plan, LEVELS, "availability", rule=rule
        ) == pytest.approx(0.99)


class TestStageBounds:
    def test_one_stage_per_direct_child(self):
        plan = Pipeline(
            [Invoke("a"), Split([Invoke("b"), Invoke("c")]), Invoke("d")]
        )
        stages = stage_bounds(plan, LEVELS)
        assert [s.label for s in stages] == ["a", "(b ∥ c)", "d"]
        assert stages[1].bound == pytest.approx(0.95 * 0.9)
        assert stages[1].services == ("b", "c")
        assert [s.index for s in stages] == [0, 1, 2]

    def test_leaf_plan_is_its_own_stage(self):
        stages = stage_bounds(Invoke("a"), LEVELS)
        assert len(stages) == 1
        assert stages[0].label == "a"
        assert stages[0].bound == pytest.approx(0.99)

    def test_stage_product_matches_composite_for_pipelines(self):
        plan = Pipeline(
            [Invoke("a"), Split([Invoke("b"), Invoke("c")]), Invoke("d")]
        )
        product = 1.0
        for stage in stage_bounds(plan, LEVELS):
            product *= stage.bound
        assert product == pytest.approx(composite_bound(plan, LEVELS))
