"""The command-line interface, driven through its main() entry point."""

import json

import pytest

from repro import serialization as ser
from repro.cli import main
from repro.coalitions import TrustNetwork
from repro.constraints import TableConstraint, variable
from repro.semirings import WeightedSemiring
from repro.solver import SCSP


@pytest.fixture
def fig1_file(tmp_path, fig1):
    problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"], name="fig1")
    path = tmp_path / "fig1.json"
    path.write_text(ser.dumps(problem))
    return path


@pytest.fixture
def network_file(tmp_path):
    network = TrustNetwork(
        ["a", "b", "c"],
        {
            ("a", "a"): 0.6, ("b", "b"): 0.6, ("c", "c"): 0.6,
            ("a", "b"): 0.9, ("b", "a"): 0.9,
            ("a", "c"): 0.2, ("c", "a"): 0.2,
            ("b", "c"): 0.3, ("c", "b"): 0.3,
        },
    )
    path = tmp_path / "net.json"
    path.write_text(ser.dumps(network))
    return path


@pytest.fixture
def market_file(tmp_path):
    market = {
        "kind": "market",
        "services": [
            {
                "service_id": f"svc-{provider}",
                "operation": "compress",
                "qos": {
                    "kind": "qos-document",
                    "service_name": "compress",
                    "provider": provider,
                    "policies": [
                        {"attribute": "cost", "variables": {}, "constant": cost}
                    ],
                },
            }
            for provider, cost in (("P1", 5.0), ("P2", 3.0))
        ],
        "request": {
            "client": "cli-client",
            "operation": "compress",
            "attribute": "cost",
            "acceptance": {"lower": 10.0, "upper": 0.0},
        },
    }
    path = tmp_path / "market.json"
    path.write_text(json.dumps(market))
    return path


class TestSolve:
    def test_solves_fig1(self, fig1_file, capsys):
        exit_code = main(["solve", str(fig1_file)])
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["blevel"] == 7.0
        assert out["consistent"] is True
        assert out["optima"] == [[{"X": "a"}]]

    def test_method_flag(self, fig1_file, capsys):
        main(["solve", str(fig1_file), "--method", "elimination"])
        out = json.loads(capsys.readouterr().out)
        assert out["method"] == "elimination"

    def test_solver_backend_flag(self, fig1_file, capsys):
        for backend in ("dict", "dense"):
            exit_code = main(
                ["solve", str(fig1_file), "--solver-backend", backend]
            )
            out = json.loads(capsys.readouterr().out)
            assert exit_code == 0
            assert out["blevel"] == 7.0
            assert out["optima"] == [[{"X": "a"}]]

    def test_rejects_unknown_backend(self, fig1_file):
        with pytest.raises(SystemExit):
            main(["solve", str(fig1_file), "--solver-backend", "bogus"])

    def test_inconsistent_problem_exit_1(self, tmp_path, capsys):
        weighted = WeightedSemiring()
        x = variable("x", [0])
        dead = TableConstraint(weighted, [x], {})
        path = tmp_path / "dead.json"
        path.write_text(ser.dumps(SCSP([dead], name="dead")))
        assert main(["solve", str(path)]) == 1

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["solve", str(tmp_path / "missing.json")])


class TestCoalitions:
    def test_exact(self, network_file, capsys):
        exit_code = main(["coalitions", str(network_file)])
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["found"] and out["stable"]
        assert ["a", "b"] in out["partition"]
        # Exact enumeration counts the stable universe and reports it.
        assert out["stable_partitions"] >= 1

    def test_local_search(self, network_file, capsys):
        exit_code = main(
            [
                "coalitions",
                str(network_file),
                "--method",
                "local-search",
                "--seed",
                "3",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["method"] == "local-search"
        assert out["stable"] is True
        assert "stable_partitions" not in out

    def test_engine(self, network_file, capsys):
        exit_code = main(
            [
                "coalitions",
                str(network_file),
                "--method",
                "engine",
                "--seed",
                "3",
                "--workers",
                "2",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["method"] == "engine"
        assert out["stable"] is True
        assert ["a", "b"] in out["partition"]

    @pytest.mark.parametrize("method", ["local-search", "engine"])
    def test_unstable_result_exits_nonzero(
        self, method, network_file, capsys
    ):
        # A zero-iteration climb returns its (unstable) singleton start:
        # the result is *found* but carries blocking coalitions, which
        # is not a Def. 4 answer.  The CLI used to report success here.
        exit_code = main(
            [
                "coalitions",
                str(network_file),
                "--method",
                method,
                "--restarts",
                "1",
                "--max-iterations",
                "0",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert out["found"] is True
        assert out["stable"] is False
        assert exit_code == 1


class TestNegotiate:
    def test_best_provider_wins(self, market_file, capsys):
        exit_code = main(["negotiate", str(market_file)])
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["success"] is True
        assert out["sla"]["providers"] == ["P2"]
        assert out["sla"]["agreed_level"] == 3.0
        assert len(out["evaluations"]) == 2

    def test_solver_flags_accepted(self, market_file, capsys):
        exit_code = main(
            [
                "negotiate",
                str(market_file),
                "--solver-backend",
                "dense",
                "--no-solve-cache",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["sla"]["providers"] == ["P2"]

    @pytest.mark.parametrize("backend", ["auto", "monolith", "factored"])
    def test_store_backend_flag(self, market_file, capsys, backend):
        from repro.constraints.store import (
            get_default_store_backend,
            set_default_store_backend,
        )

        previous = get_default_store_backend()
        try:
            exit_code = main(
                ["negotiate", str(market_file), "--store-backend", backend]
            )
            # The flag also rebinds the process-wide default, so nmsccp
            # sessions the broker spawns internally follow it.
            assert get_default_store_backend() == backend
        finally:
            set_default_store_backend(previous)
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["sla"]["providers"] == ["P2"]
        assert out["sla"]["agreed_level"] == 3.0

    def test_unknown_store_backend_rejected(self, market_file):
        with pytest.raises(SystemExit):
            main(
                ["negotiate", str(market_file), "--store-backend", "quantum"]
            )

    def test_failed_negotiation_exit_1(self, tmp_path, capsys):
        market = {
            "kind": "market",
            "services": [],
            "request": {"operation": "compress", "attribute": "cost"},
        }
        path = tmp_path / "empty.json"
        path.write_text(json.dumps(market))
        assert main(["negotiate", str(path)]) == 1

    def test_non_market_payload_rejected(self, fig1_file):
        with pytest.raises(SystemExit):
            main(["negotiate", str(fig1_file)])


class TestRuntime:
    def test_serves_market_sessions(self, market_file, capsys):
        exit_code = main(
            ["runtime", str(market_file), "--requests", "4", "--seed", "1"]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["requests"] == 4
        assert out["outcomes"] == {"completed": 4}
        assert len(out["sessions"]) == 4
        assert all(s["sla_id"] is not None for s in out["sessions"])

    def test_outage_faults_trigger_retries_and_degradation(
        self, market_file, capsys
    ):
        exit_code = main(
            [
                "runtime",
                str(market_file),
                "--requests",
                "6",
                "--seed",
                "1",
                "--fault-outage",
                "1:2",
                "--base-backoff",
                "0.001",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["retries_total"] > 0
        assert out["outcomes"].get("degraded", 0) >= 1
        degraded = [
            s for s in out["sessions"] if s["status"] == "degraded"
        ]
        assert all(s["attempts"] > 1 for s in degraded)

    def test_fault_run_logs_retries_and_degradation_events(
        self, market_file, capsys, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        main(
            [
                "runtime",
                str(market_file),
                "--requests",
                "6",
                "--seed",
                "1",
                "--fault-outage",
                "1:2",
                "--base-backoff",
                "0.001",
                "--trace-out",
                str(trace),
            ]
        )
        capsys.readouterr()
        kinds = [
            json.loads(line).get("kind")
            for line in trace.read_text().splitlines()
        ]
        assert "runtime.retry" in kinds
        assert "fault.injected" in kinds
        assert "runtime.degraded" in kinds

    def test_bad_fault_flag_rejected(self, market_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "runtime",
                    str(market_file),
                    "--fault-outage",
                    "not-a-window",
                ]
            )


class TestLoadgen:
    def test_synthetic_market_by_default(self, capsys):
        exit_code = main(
            [
                "loadgen",
                "--clients",
                "8",
                "--rate",
                "2000",
                "--seed",
                "3",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["offered"] == 8
        assert out["outcomes"] == {"completed": 8}
        assert out["throughput_rps"] > 0
        assert out["latency_s"]["p99"] >= out["latency_s"]["p50"]

    def test_explicit_market_and_closed_loop(self, market_file, capsys):
        exit_code = main(
            [
                "loadgen",
                "--market",
                str(market_file),
                "--clients",
                "3",
                "--requests",
                "6",
                "--mode",
                "closed",
                "--seed",
                "3",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["offered"] == 6
        assert out["outcomes"]["completed"] == 6

    def test_telemetry_snapshot_shows_queue_wait_histogram(self, capsys):
        exit_code = main(
            [
                "loadgen",
                "--clients",
                "5",
                "--rate",
                "2000",
                "--seed",
                "3",
                "--telemetry",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        names = {m["name"] for m in out["telemetry"]["metrics"]}
        assert "runtime_queue_wait_seconds" in names
        assert "runtime_session_seconds" in names
        assert "runtime_sessions_total" in names


class TestFleet:
    def test_synthetic_market_over_shards(self, capsys):
        exit_code = main(
            [
                "fleet",
                "--shards",
                "3",
                "--clients",
                "6",
                "--requests",
                "12",
                "--mode",
                "closed",
                "--seed",
                "5",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["shards"] == 3
        assert out["fleet"]["offered"] == 12
        assert out["fleet"]["outcomes"]["completed"] == 12
        assert sum(
            row["offered"] for row in out["per_shard"].values()
        ) == 12
        assert out["cache"]["l2"] is not None

    def test_no_l2_cache_flag(self, market_file, capsys):
        exit_code = main(
            [
                "fleet",
                "--market",
                str(market_file),
                "--shards",
                "2",
                "--clients",
                "2",
                "--requests",
                "4",
                "--mode",
                "closed",
                "--seed",
                "5",
                "--no-l2-cache",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert out["cache"]["l2"] is None
        assert out["fleet"]["outcomes"]["completed"] == 4

    def test_telemetry_snapshot_shows_fleet_metrics(self, capsys):
        exit_code = main(
            [
                "fleet",
                "--shards",
                "2",
                "--clients",
                "4",
                "--requests",
                "8",
                "--mode",
                "closed",
                "--seed",
                "5",
                "--telemetry",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        names = {m["name"] for m in out["telemetry"]["metrics"]}
        assert "fleet_sessions_total" in names
        assert "fleet_shards" in names
        assert "fleet_solve_cache_requests_total" in names


@pytest.fixture
def slo_market_file(tmp_path):
    market = {
        "kind": "market",
        "services": [
            {
                "service_id": service_id,
                "operation": operation,
                "qos": {
                    "kind": "qos-document",
                    "service_name": operation,
                    "provider": provider,
                    "policies": [
                        {
                            "attribute": "reliability",
                            "variables": {},
                            "constant": level,
                        }
                    ],
                },
            }
            for service_id, operation, provider, level in (
                ("ocr-fast", "ocr", "P1", 0.99),
                ("translate-hq", "translate", "P2", 0.98),
            )
        ],
        "observations": {
            "ocr-fast": {"attempts": 200, "failures": 2}
        },
    }
    path = tmp_path / "slo-market.json"
    path.write_text(json.dumps(market))
    return path


class TestSlo:
    ARGS = [
        "--attribute",
        "reliability",
        "--pipeline",
        "ocr-fast,translate-hq",
    ]

    def test_achievable_json_exit_0(self, slo_market_file, capsys):
        code = main(
            ["slo", str(slo_market_file), "--target", "0.75"] + self.ARGS
        )
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["achievable"] is True
        assert out["attribute"] == "reliability"
        levels = {lv["service_id"]: lv for lv in out["levels"]}
        assert levels["ocr-fast"]["informative"] is True
        assert levels["translate-hq"]["informative"] is False

    def test_unachievable_text_exit_1(self, slo_market_file, capsys):
        code = main(
            [
                "slo",
                str(slo_market_file),
                "--target",
                "0.999",
                "--format",
                "text",
            ]
            + self.ARGS
        )
        text = capsys.readouterr().out
        assert code == 1
        assert "UNACHIEVABLE" in text
        assert "remediation" in text

    def test_trust_published_skips_evidence(self, slo_market_file, capsys):
        code = main(
            [
                "slo",
                str(slo_market_file),
                "--target",
                "0.97",
                "--trust-published",
            ]
            + self.ARGS
        )
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["verdict"]["bound"] == pytest.approx(0.99 * 0.98)

    def test_unknown_service_exit_2(self, slo_market_file, capsys):
        code = main(
            [
                "slo",
                str(slo_market_file),
                "--target",
                "0.9",
                "--attribute",
                "reliability",
                "--pipeline",
                "ghost",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_plan_file_beats_market_plan(
        self, slo_market_file, tmp_path, capsys
    ):
        from repro.soa import Choose, Invoke, Pipeline

        plan = Pipeline(
            [
                Choose([Invoke("ocr-fast"), Invoke("translate-hq")]),
            ]
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(ser.dumps(plan))
        code = main(
            [
                "slo",
                str(slo_market_file),
                "--target",
                "0.5",
                "--attribute",
                "reliability",
                "--plan",
                str(plan_path),
                "--choose",
                "redundant",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["verdict"]["choose"] == "redundant"

    def test_no_plan_anywhere_is_usage_error(self, slo_market_file):
        with pytest.raises(SystemExit):
            main(["slo", str(slo_market_file), "--target", "0.9"])


class TestValidateSemiring:
    def test_builtin_ok(self, capsys):
        assert main(["validate-semiring", "fuzzy"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is True

    def test_parameterized(self, capsys):
        assert (
            main(["validate-semiring", "set", "--universe", "r,w,x"]) == 0
        )
        assert (
            main(["validate-semiring", "bounded-weighted", "--cap", "5"])
            == 0
        )


class TestConsoleScript:
    def test_installed_entry_point_works(self, fig1_file):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "solve", str(fig1_file)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["blevel"] == 7.0
