"""The consolidated bounded-LRU utility (`repro.caching`).

One implementation now backs the solve cache, the store's query/
entailment memos and the query engine's offer-level memo; this file
pins the shared semantics and the single ``cache_stats()`` interface
that aggregates every live cache by name.
"""

import threading

from repro.caching import DEFAULT_CACHE_SIZE, LRUCache, cache_stats


class TestSharedImplementation:
    def test_telemetry_module_reexports_the_shared_class(self):
        from repro.caching import LRUCache as shared
        from repro.telemetry.caching import LRUCache as legacy

        assert legacy is shared

    def test_solve_cache_uses_it(self):
        from repro.solver.cache import SolveCache

        assert isinstance(SolveCache()._lru, LRUCache)

    def test_store_caches_use_it(self):
        from repro.constraints import store

        assert isinstance(store._entailment_cache, LRUCache)
        assert isinstance(store._query_cache, LRUCache)

    def test_query_engine_uses_it(self):
        from repro.soa.query import QueryEngine
        from repro.soa.registry import ServiceRegistry

        engine = QueryEngine(ServiceRegistry())
        assert isinstance(engine._level_cache, LRUCache)


class TestCacheStats:
    def test_groups_live_caches_by_name(self):
        probe_a = LRUCache(maxsize=2, name="stats-probe")
        probe_b = LRUCache(maxsize=2, name="stats-probe")
        probe_a.put("k", 1)
        probe_a.get("k")
        probe_a.get("missing")
        probe_b.get("also-missing")

        grouped = cache_stats()
        assert "stats-probe" in grouped
        rows = grouped["stats-probe"]
        assert len(rows) == 2
        assert sum(row["hits"] for row in rows) == 1
        assert sum(row["misses"] for row in rows) == 2

    def test_stats_shape(self):
        cache = LRUCache(maxsize=3, name="shape-probe")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        for key in ("size", "maxsize", "hits", "misses", "evictions"):
            assert key in stats
        assert stats["hits"] == 1 and stats["size"] == 1


class TestSemantics:
    def test_default_size(self):
        assert LRUCache().maxsize == DEFAULT_CACHE_SIZE

    def test_eviction_order_is_lru(self):
        cache = LRUCache(maxsize=2, name="evict-probe")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a → b becomes the victim
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_get_or_compute_memoizes(self):
        cache = LRUCache(maxsize=4, name="compute-probe")
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1

    def test_ttl_expires_entries_on_the_injected_clock(self):
        now = [0.0]
        cache = LRUCache(
            maxsize=4, name="ttl-probe", ttl=5.0, clock=lambda: now[0]
        )
        cache.put("k", "v")
        assert cache.get("k") == "v"
        now[0] = 4.999
        assert "k" in cache
        now[0] = 5.0  # inclusive: exactly ttl seconds later is stale
        assert "k" not in cache
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["size"] == 0

    def test_ttl_refreshes_on_overwrite(self):
        now = [0.0]
        cache = LRUCache(
            maxsize=4, name="ttl-probe", ttl=5.0, clock=lambda: now[0]
        )
        cache.put("k", "old")
        now[0] = 4.0
        cache.put("k", "new")  # rewrite restarts the clock
        now[0] = 8.0
        assert cache.get("k") == "new"
        now[0] = 9.0
        assert cache.get("k") is None

    def test_ttl_off_by_default_and_clock_untouched(self):
        def forbidden():  # pragma: no cover - would fail the test
            raise AssertionError("clock consulted without a TTL")

        cache = LRUCache(maxsize=4, name="no-ttl-probe", clock=forbidden)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert "k" in cache
        assert cache.stats()["expirations"] == 0

    def test_expired_entries_do_not_count_as_hits(self):
        now = [0.0]
        cache = LRUCache(
            maxsize=4, name="ttl-probe", ttl=1.0, clock=lambda: now[0]
        )
        cache.put("k", "v")
        now[0] = 2.0
        cache.get("k")
        assert cache.hits == 0
        assert cache.misses == 1

    def test_get_or_compute_recomputes_after_expiry(self):
        now = [0.0]
        cache = LRUCache(
            maxsize=4, name="ttl-probe", ttl=1.0, clock=lambda: now[0]
        )
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        assert cache.get_or_compute("k", compute) == 1
        assert cache.get_or_compute("k", compute) == 1
        now[0] = 2.0
        assert cache.get_or_compute("k", compute) == 2

    def test_threadsafe_mode_under_contention(self):
        cache = LRUCache(maxsize=64, name="mt-probe", threadsafe=True)

        def worker(base):
            for i in range(200):
                cache.put((base, i % 32), i)
                cache.get((base, (i + 7) % 32))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64
