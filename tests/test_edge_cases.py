"""Cross-cutting edge cases not covered by the per-module suites."""

import pytest

from repro.constraints import (
    ConstantConstraint,
    FunctionConstraint,
    TableConstraint,
    variable,
)
from repro.semirings import (
    FuzzySemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)


class TestSemiringGlb:
    def test_idempotent_glb_is_times(self):
        fuzzy = FuzzySemiring()
        assert fuzzy.glb(0.3, 0.8) == 0.3
        sets = SetSemiring({"a", "b"})
        assert sets.glb(frozenset({"a"}), frozenset({"a", "b"})) == (
            frozenset({"a"})
        )

    def test_total_order_glb_is_min(self):
        weighted = WeightedSemiring()
        # semiring-worse of (3, 8) is 8 (higher cost)
        assert weighted.glb(3.0, 8.0) == 8.0

    def test_partial_non_idempotent_glb_unsupported(self):
        product = ProductSemiring([WeightedSemiring(), WeightedSemiring()])
        with pytest.raises(NotImplementedError):
            product.glb((1.0, 2.0), (2.0, 1.0))

    def test_idempotent_product_glb_works(self):
        product = ProductSemiring([FuzzySemiring(), FuzzySemiring()])
        assert product.glb((0.3, 0.9), (0.8, 0.4)) == (0.3, 0.4)


class TestConstraintScopeEdges:
    def test_zero_arity_table(self, fuzzy):
        # an empty-scope constant via ConstantConstraint, projected again
        constant = ConstantConstraint(fuzzy, 0.7)
        assert constant.project([]) is constant
        assert constant.consistency() == 0.7

    def test_projection_of_projection(self, fuzzy):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        z = variable("z", [0, 1])
        c = FunctionConstraint(
            fuzzy, (x, y, z), lambda a, b, c_: (a + b + c_) / 3.0
        )
        via_two_steps = c.project(["x", "y"]).project(["x"])
        direct = c.project(["x"])
        from repro.constraints import constraints_equal

        assert constraints_equal(via_two_steps, direct)

    def test_hide_all_variables(self, fuzzy):
        x = variable("x", [0, 1])
        c = FunctionConstraint(fuzzy, (x,), lambda v: 0.5 + 0.2 * v)
        hidden = c.hide("x")
        assert hidden.scope == ()
        assert hidden({}) == 0.7  # max over x

    def test_single_value_domain(self, weighted):
        x = variable("x", [42])
        c = FunctionConstraint(weighted, (x,), lambda v: float(v))
        assert c.consistency() == 42.0


class TestManagerEventLog:
    def test_event_str_format(self):
        from repro.soa import ManagementEvent

        event = ManagementEvent(tick=7, kind="rebound", detail="SLA#3")
        text = str(event)
        assert "7" in text and "rebound" in text and "SLA#3" in text


class TestCapabilityProfiles:
    def test_profile_count_is_power_of_two(self):
        from repro.soa import policy

        p = policy("p", must={"a"}, may={"b", "c", "d"})
        assert len(p.admissible_profiles()) == 2**3

    def test_no_may_single_profile(self):
        from repro.soa import policy

        p = policy("p", must={"a", "b"})
        assert p.admissible_profiles() == [frozenset({"a", "b"})]


class TestQueryTieBreaks:
    def test_equal_levels_rank_shorter_plans_first(self):
        from repro.soa import (
            QoSDocument,
            QoSPolicy,
            QueryEngine,
            ServiceDescription,
            ServiceInterface,
            ServiceQuery,
            ServiceRegistry,
        )

        registry = ServiceRegistry()

        def publish(service_id, inputs, outputs, reliability):
            registry.publish(
                ServiceDescription(
                    service_id=service_id,
                    name=service_id,
                    provider=f"p-{service_id}",
                    interface=ServiceInterface(
                        operation=service_id,
                        inputs=inputs,
                        outputs=outputs,
                    ),
                    qos=QoSDocument(
                        service_name=service_id,
                        provider=f"p-{service_id}",
                        policies=[
                            QoSPolicy(
                                attribute="reliability",
                                constant=reliability,
                            )
                        ],
                    ),
                )
            )

        # a 1.0-reliable monolith and a 1.0·1.0 pipeline: same level
        publish("mono", ("a",), ("c",), 1.0)
        publish("s1", ("a",), ("b",), 1.0)
        publish("s2", ("b",), ("c",), 1.0)
        engine = QueryEngine(registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("c",),
                consumes=("a",),
                max_chain=2,
            )
        )
        assert answer.best.plan.services() == ["mono"]  # shorter wins ties


class TestStoreValueDelegation:
    def test_store_value_matches_constraint(self, fuzzy):
        from repro.constraints import empty_store

        x = variable("x", [0, 1])
        c = TableConstraint(fuzzy, [x], {(0,): 0.2, (1,): 0.9})
        store = empty_store(fuzzy).tell(c)
        assert store.value({"x": 1}) == 0.9
        assert store.support == ("x",)
