"""Coalition trustworthiness T(C) (paper Def. 3) and partitions."""

import pytest

from repro.coalitions import (
    TrustError,
    TrustNetwork,
    coalition,
    coalition_of,
    coalition_trust,
    member_view,
    normalize_partition,
    partition_trust,
    validate_partition,
)


@pytest.fixture
def network():
    return TrustNetwork(
        ["a", "b", "c"],
        {
            ("a", "a"): 1.0, ("b", "b"): 1.0, ("c", "c"): 1.0,
            ("a", "b"): 0.8, ("b", "a"): 0.6,
            ("a", "c"): 0.2, ("c", "a"): 0.4,
            ("b", "c"): 0.9, ("c", "b"): 0.7,
        },
    )


class TestCoalitionTrust:
    def test_min_composition(self, network):
        assert coalition_trust({"a", "b"}, network, "min") == 0.6

    def test_avg_composition(self, network):
        expected = (1.0 + 1.0 + 0.8 + 0.6) / 4
        assert coalition_trust({"a", "b"}, network, "avg") == pytest.approx(
            expected
        )

    def test_max_composition(self, network):
        assert coalition_trust({"a", "b"}, network, "max") == 1.0

    def test_self_trust_included_by_default(self, network):
        assert coalition_trust({"a"}, network, "min") == 1.0

    def test_self_trust_excludable(self, network):
        assert (
            coalition_trust({"a", "b"}, network, "min", include_self=False)
            == 0.6
        )

    def test_empty_relationship_set_neutral(self):
        sparse = TrustNetwork(["a", "b"])
        assert coalition_trust({"a"}, sparse, "min") == 1.0
        assert (
            coalition_trust({"a"}, sparse, "min", empty_value=0.3) == 0.3
        )

    def test_monotone_under_min(self, network):
        # adding members can only keep or lower a min-composed T
        small = coalition_trust({"a", "b"}, network, "min")
        large = coalition_trust({"a", "b", "c"}, network, "min")
        assert large <= small


class TestMemberView:
    def test_view_of_group(self, network):
        assert member_view("a", ["b", "c"], network, "min") == 0.2
        assert member_view("a", ["b", "c"], network, "avg") == pytest.approx(
            0.5
        )

    def test_empty_view_defaults_to_zero(self, network):
        assert member_view("a", [], network, "min") == 0.0

    def test_view_ignores_missing_scores(self):
        sparse = TrustNetwork(["a", "b", "c"], {("a", "b"): 0.9})
        assert member_view("a", ["b", "c"], sparse, "min") == 0.9


class TestPartitions:
    def test_normalize_sorts_and_freezes(self):
        partition = normalize_partition([{"c"}, {"a", "b"}])
        assert partition == (frozenset({"a", "b"}), frozenset({"c"}))

    def test_validate_accepts_proper_partition(self, network):
        partition = validate_partition([{"a", "b"}, {"c"}], network)
        assert len(partition) == 2

    def test_validate_rejects_overlap(self, network):
        with pytest.raises(TrustError, match="two coalitions"):
            validate_partition([{"a", "b"}, {"b", "c"}], network)

    def test_validate_rejects_missing_agent(self, network):
        with pytest.raises(TrustError, match="not assigned"):
            validate_partition([{"a"}], network)

    def test_validate_rejects_unknown_agent(self, network):
        with pytest.raises(TrustError, match="unknown agents"):
            validate_partition([{"a", "b", "c", "ghost"}], network)

    def test_validate_rejects_empty_coalition(self, network):
        with pytest.raises(TrustError, match="empty coalition"):
            validate_partition([{"a", "b", "c"}, set()], network)

    def test_partition_trust_max_min(self, network):
        # min over coalitions of min-composed T
        value = partition_trust([{"a", "b"}, {"c"}], network, "min", "min")
        assert value == 0.6

    def test_partition_trust_empty_rejected(self, network):
        with pytest.raises(TrustError):
            partition_trust([], network)

    def test_coalition_of(self):
        partition = normalize_partition([{"a", "b"}, {"c"}])
        assert coalition_of("a", partition) == frozenset({"a", "b"})
        assert coalition_of("ghost", partition) is None

    def test_coalition_helper(self):
        assert coalition("a", "b") == frozenset({"a", "b"})
