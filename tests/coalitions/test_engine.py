"""The incremental, parallel coalition engine (Sec. 6 at scale)."""

import pytest

from repro.coalitions import (
    IncrementalScorer,
    blocking_pairs,
    figure9_network,
    partition_trust,
    random_trust_network,
    singletons,
    solve_engine,
    solve_local_search,
)
from repro.coalitions.exact import enumerate_partitions
from repro.telemetry import telemetry_session


@pytest.fixture
def network():
    return figure9_network()


class TestIncrementalScorer:
    def test_matches_naive_score_on_every_fig9_partition(self, network):
        scorer = IncrementalScorer(network, op="avg", aggregate="min")
        for partition in enumerate_partitions(network.agents):
            blocking, trust = scorer(partition)
            assert -blocking == len(
                blocking_pairs(partition, network, "avg")
            )
            assert trust == pytest.approx(
                partition_trust(partition, network, "avg", "min"),
                abs=1e-12,
            )

    def test_delta_path_agrees_with_fresh_scorer(self, network):
        # Scoring a drifting chain of partitions exercises the anchor
        # delta; a fresh scorer per partition never deltas.  Both must
        # agree exactly.
        chain = list(enumerate_partitions(network.agents))[::37]
        warm = IncrementalScorer(network, op="avg", aggregate="avg")
        for partition in chain:
            cold = IncrementalScorer(network, op="avg", aggregate="avg")
            assert warm(partition) == cold(partition)

    def test_trust_cache_fills(self, network):
        scorer = IncrementalScorer(network, op="avg", aggregate="min")
        scorer(singletons(network))
        scorer(singletons(network))
        assert scorer.trust_cache.hits > 0


class TestSolveEngine:
    def test_seeded_reproducibility(self, network):
        a = solve_engine(network, op="avg", seed=7)
        b = solve_engine(network, op="avg", seed=7)
        assert a.partition == b.partition
        assert a.trust == b.trust
        assert a.method == "engine"

    def test_worker_count_does_not_change_result(self, network):
        kw = dict(op="avg", aggregate="avg", seed=13, restarts=4)
        sequential = solve_engine(network, workers=1, **kw)
        portfolio = solve_engine(network, workers=4, **kw)
        assert sequential.partition == portfolio.partition
        assert sequential.trust == portfolio.trust
        assert (
            sequential.partitions_examined
            == portfolio.partitions_examined
        )

    def test_matches_local_search_trajectory(self, network):
        kw = dict(
            op="avg",
            aggregate="min",
            seed=42,
            restarts=3,
            max_iterations=60,
            neighbour_sample=32,
        )
        naive = solve_local_search(network, **kw)
        engine = solve_engine(network, workers=2, **kw)
        assert engine.partition == naive.partition
        assert engine.trust == pytest.approx(naive.trust, abs=1e-12)
        assert engine.stable == naive.stable
        assert engine.partitions_examined == naive.partitions_examined

    def test_scorer_reuse_across_solves(self):
        network = random_trust_network(12, seed=3, density=0.7)
        scorer = IncrementalScorer(network, op="avg", aggregate="avg")
        first = solve_engine(
            network, op="avg", aggregate="avg", seed=5, scorer=scorer
        )
        hits_after_first = scorer.trust_cache.hits
        second = solve_engine(
            network, op="avg", aggregate="avg", seed=5, scorer=scorer
        )
        assert second.partition == first.partition
        # The repeated solve is answered largely from the shared memo.
        assert scorer.trust_cache.hits > hits_after_first

    def test_emits_telemetry(self, network):
        with telemetry_session() as session:
            solution = solve_engine(network, op="avg", seed=1, workers=2)
        candidates = session.registry.get("coalition_candidates_total")
        assert candidates is not None
        assert (
            candidates.labels("engine").value
            == solution.partitions_examined
        )
        hits = session.registry.get("coalition_trust_cache_hits_total")
        assert hits is not None and hits.value > 0
        spans = [
            s
            for s in session.tracer.finished
            if s.name == "coalitions.restart"
        ]
        assert len(spans) == 3  # default restarts

    def test_scales_past_exact_range(self):
        network = random_trust_network(16, seed=9, density=0.5)
        solution = solve_engine(
            network,
            op="avg",
            aggregate="avg",
            seed=9,
            restarts=2,
            max_iterations=30,
            workers=2,
        )
        assert solution.found
        assert sorted(a for g in solution.partition for a in g) == sorted(
            network.agents
        )
