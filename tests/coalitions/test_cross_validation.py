"""Randomized cross-validation of every coalition solver against the
exact enumerator (the ground truth on small agent counts).

Each instance pits the engine, the naive local search and the greedy
baselines against :func:`solve_exact` on the same network, checking:

* every solver returns a valid partition of the agent set;
* each reported ``stable`` flag agrees with a from-scratch
  :func:`is_stable` check, and each reported trust with a from-scratch
  :func:`partition_trust` fold;
* the engine and the naive local search are *equivalent* — same
  partition, same score — under a shared seed and a single worker
  (the PR's acceptance criterion: only the scorer differs);
* no heuristic ever claims a stable partition with trust above the
  exact stable optimum.
"""

import random

import pytest

from repro.coalitions import (
    individually_oriented,
    is_stable,
    partition_trust,
    random_trust_network,
    socially_oriented,
    solve_engine,
    solve_exact,
    solve_local_search,
)

#: (agents, network seed, composition op, aggregate op) — kept at n ≤ 7
#: so exact enumeration stays instant (Bell(7) = 877).
INSTANCES = [
    (n, seed, op, agg)
    for n in (4, 5, 6, 7)
    for seed in (1, 2, 3)
    for op, agg in (("avg", "avg"), ("min", "min"), ("avg", "min"))
]


def _instance(n, seed):
    density = random.Random(seed * 977 + n).choice((0.5, 0.8, 1.0))
    return random_trust_network(n, seed=seed, density=density)


def _assert_valid_partition(solution, network):
    assert solution.found
    assert sorted(a for g in solution.partition for a in g) == sorted(
        network.agents
    )


@pytest.mark.parametrize("n,seed,op,agg", INSTANCES)
def test_solvers_cross_validate(n, seed, op, agg):
    network = _instance(n, seed)
    exact = solve_exact(network, op=op, aggregate=agg)
    search_kw = dict(
        op=op,
        aggregate=agg,
        seed=seed * 100 + n,
        restarts=3,
        max_iterations=40,
        neighbour_sample=24,
    )
    naive = solve_local_search(network, **search_kw)
    engine = solve_engine(network, workers=1, **search_kw)
    solutions = [
        naive,
        engine,
        individually_oriented(network, op, agg),
        socially_oriented(network, op, agg),
    ]

    for solution in solutions:
        _assert_valid_partition(solution, network)
        assert solution.stable == is_stable(
            solution.partition, network, op
        )
        assert solution.trust == pytest.approx(
            partition_trust(solution.partition, network, op, agg),
            abs=1e-9,
        )

    # Engine ≡ naive local search: same seed, same trajectory.
    assert engine.partition == naive.partition
    assert engine.trust == pytest.approx(naive.trust, abs=1e-12)
    assert engine.stable == naive.stable
    assert engine.partitions_examined == naive.partitions_examined

    # No solver beats the exact stable optimum while claiming stability.
    if exact.found:
        for solution in solutions:
            if solution.stable:
                assert solution.trust <= exact.trust + 1e-9


@pytest.mark.parametrize("n,seed", [(5, 11), (6, 12), (7, 13)])
def test_engine_reaches_exact_optimum_with_budget(n, seed):
    # With a generous restart budget the heuristic pair should actually
    # find the stable optimum on these small instances, not merely stay
    # below it.
    network = _instance(n, seed)
    exact = solve_exact(network, op="avg", aggregate="min")
    assert exact.found
    engine = solve_engine(
        network,
        op="avg",
        aggregate="min",
        seed=seed,
        restarts=6,
        max_iterations=80,
        neighbour_sample=48,
    )
    assert engine.stable
    assert engine.trust == pytest.approx(exact.trust, abs=1e-9)
