"""Semiring-based trust propagation."""

import pytest

from repro.coalitions import TrustError, TrustNetwork, solve_exact
from repro.coalitions.propagation import (
    coverage,
    propagate_trust,
    propagation_closure,
    trust_between,
)
from repro.semirings import (
    ProbabilisticSemiring,
    SetSemiring,
)


@pytest.fixture
def chain():
    """a → b → c with no direct a → c judgement."""
    return TrustNetwork(
        ["a", "b", "c"],
        {("a", "b"): 0.8, ("b", "c"): 0.6},
    )


class TestClosure:
    def test_fuzzy_bottleneck_path(self, chain):
        # max-min: trust along a→b→c is min(0.8, 0.6) = 0.6
        assert trust_between(chain, "a", "c") == 0.6

    def test_probabilistic_dilution(self, chain):
        value = trust_between(
            chain, "a", "c", semiring=ProbabilisticSemiring()
        )
        assert value == pytest.approx(0.8 * 0.6)

    def test_no_path_means_zero(self, chain):
        assert trust_between(chain, "c", "a") == 0.0

    def test_best_of_alternative_paths(self):
        network = TrustNetwork(
            ["a", "b", "c", "d"],
            {
                ("a", "b"): 0.9, ("b", "d"): 0.5,   # bottleneck 0.5
                ("a", "c"): 0.7, ("c", "d"): 0.7,   # bottleneck 0.7
            },
        )
        assert trust_between(network, "a", "d") == 0.7

    def test_direct_edge_beats_weaker_path(self):
        network = TrustNetwork(
            ["a", "b", "c"],
            {("a", "c"): 0.9, ("a", "b"): 0.5, ("b", "c"): 0.5},
        )
        assert trust_between(network, "a", "c") == 0.9

    def test_cycles_cannot_inflate_trust(self):
        network = TrustNetwork(
            ["a", "b"],
            {("a", "b"): 0.8, ("b", "a"): 0.8},
        )
        closure = propagation_closure(network)
        # going a→b→a→b… never exceeds the direct 0.8
        assert closure[("a", "b")] == 0.8
        assert closure[("a", "a")] == 1.0  # seeded identity

    def test_explicit_self_trust_preserved(self):
        network = TrustNetwork(["a"], {("a", "a"): 0.4})
        closure = propagation_closure(network)
        # paths through itself: 0.4 ⊕ (0.4 ⊗ 0.4) = 0.4 under max-min
        assert closure[("a", "a")] == 0.4

    def test_defaults_are_ignored_by_closure(self):
        network = TrustNetwork(["a", "b"], default=0.5)
        closure = propagation_closure(network)
        assert closure[("a", "b")] == 0.0  # no explicit path


class TestPropagateTrust:
    def test_completed_network_fills_gaps(self, chain):
        completed = propagate_trust(chain)
        assert completed.trust("a", "c") == 0.6
        assert completed.trust("a", "b") == 0.8  # direct kept

    def test_keep_direct_protects_first_hand_scores(self):
        network = TrustNetwork(
            ["a", "b", "c"],
            # weak direct judgement but a strong path exists
            {("a", "c"): 0.2, ("a", "b"): 0.9, ("b", "c"): 0.9},
        )
        kept = propagate_trust(network, keep_direct=True)
        assert kept.trust("a", "c") == 0.2
        overridden = propagate_trust(network, keep_direct=False)
        assert overridden.trust("a", "c") == 0.9

    def test_unreachable_pairs_stay_unknown(self, chain):
        completed = propagate_trust(chain)
        assert completed.trust("c", "a") is None

    def test_partial_order_semiring_rejected(self, chain):
        with pytest.raises(TrustError, match="totally ordered"):
            propagate_trust(chain, semiring=SetSemiring({"x"}))

    def test_propagation_enables_coalition_formation(self):
        """A sparse network becomes solvable once completed: the strong
        a↔b↔c chain clusters together, the distrusted d stays alone."""
        network = TrustNetwork(
            ["a", "b", "c", "d"],
            {
                ("a", "a"): 0.6, ("b", "b"): 0.6,
                ("c", "c"): 0.6, ("d", "d"): 0.6,
                ("a", "b"): 0.9, ("b", "a"): 0.9,
                ("b", "c"): 0.9, ("c", "b"): 0.9,
                ("a", "d"): 0.1, ("d", "a"): 0.1,
            },
        )
        completed = propagate_trust(network)
        assert completed.trust("a", "c") == 0.9  # derived via b
        solution = solve_exact(completed, op="avg", aggregate="min")
        assert solution.found
        abc = next(g for g in solution.partition if "a" in g)
        assert {"b", "c"} <= set(abc)
        assert frozenset({"d"}) in solution.partition


class TestCoverage:
    def test_coverage_fraction(self, chain):
        assert coverage(chain) == pytest.approx(2 / 6)

    def test_full_coverage_after_propagation_on_connected_graph(self):
        network = TrustNetwork(
            ["a", "b", "c"],
            {
                ("a", "b"): 0.8, ("b", "c"): 0.8, ("c", "a"): 0.8,
            },
        )
        completed = propagate_trust(network)
        assert coverage(completed) == 1.0

    def test_singleton_coverage(self):
        assert coverage(TrustNetwork(["a"])) == 1.0
