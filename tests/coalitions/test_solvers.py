"""Exact, greedy and local-search coalition-structure generation."""

import random

import pytest

from repro.coalitions import (
    TrustNetwork,
    bell_number,
    enumerate_partitions,
    figure9_network,
    grand_coalition,
    individually_oriented,
    is_stable,
    partition_trust,
    random_trust_network,
    singletons,
    socially_oriented,
    solve_exact,
    solve_local_search,
)


@pytest.fixture
def network():
    return figure9_network()


class TestEnumeration:
    def test_bell_numbers(self):
        assert [bell_number(n) for n in range(6)] == [1, 1, 2, 5, 15, 52]

    def test_enumerate_counts_match_bell(self):
        agents = ["a", "b", "c", "d"]
        partitions = list(enumerate_partitions(agents))
        assert len(partitions) == bell_number(4)
        assert len(set(partitions)) == len(partitions)  # no duplicates

    def test_every_partition_covers_agents(self):
        for partition in enumerate_partitions(["a", "b", "c"]):
            assert sorted(a for g in partition for a in g) == ["a", "b", "c"]

    def test_empty_agents(self):
        assert list(enumerate_partitions([])) == []

    def test_reference_structures(self, network):
        assert grand_coalition(network) == (frozenset(network.agents),)
        assert len(singletons(network)) == 7


class TestExact:
    def test_finds_stable_optimum(self, network):
        solution = solve_exact(network, op="avg", aggregate="min")
        assert solution.found
        assert solution.stable
        assert is_stable(solution.partition, network, "avg")
        assert solution.partitions_examined == bell_number(7)

    def test_optimum_dominates_every_stable_partition(self, network):
        solution = solve_exact(network, op="avg", aggregate="min")
        for partition in enumerate_partitions(network.agents):
            if is_stable(partition, network, "avg"):
                assert (
                    partition_trust(partition, network, "avg", "min")
                    <= solution.trust + 1e-12
                )

    def test_stability_prunes_hard(self, network):
        solution = solve_exact(network, op="avg", aggregate="min")
        assert solution.stable_partitions < solution.partitions_examined / 10

    def test_unconstrained_beats_or_equals_stable(self, network):
        stable = solve_exact(network, op="avg", aggregate="min")
        free = solve_exact(
            network, op="avg", aggregate="min", require_stability=False
        )
        assert free.trust >= stable.trust

    def test_small_network_exact(self):
        network = TrustNetwork(
            ["a", "b"],
            {("a", "b"): 0.9, ("b", "a"): 0.9, ("a", "a"): 0.5, ("b", "b"): 0.5},
        )
        solution = solve_exact(network, op="avg", aggregate="min")
        # mutual high trust: pairing beats singletons
        assert solution.partition == (frozenset({"a", "b"}),)


class TestGreedy:
    def test_individually_oriented_clusters_best_friends(self, network):
        solution = individually_oriented(network, "avg")
        assert solution.found
        # x4's best friend is x1 — they must share a coalition
        x4_group = next(g for g in solution.partition if "x4" in g)
        assert "x1" in x4_group

    def test_individually_oriented_is_partition(self, network):
        solution = individually_oriented(network, "avg")
        assert sorted(a for g in solution.partition for a in g) == sorted(
            network.agents
        )

    def test_socially_oriented_improves_or_stays(self, network):
        start = partition_trust(
            singletons(network), network, "avg", "min"
        )
        solution = socially_oriented(network, "avg")
        assert solution.trust >= start

    def test_socially_oriented_lexicographic_tie_break(self):
        # Merges {a,b} and {a,c} tie exactly — same partition score,
        # same merged-coalition trust — so the documented tie-break must
        # pick the lexicographically smaller coalition {a,b}.  (b↔c is
        # hostile enough that the grand coalition never forms.)
        network = TrustNetwork(
            ["a", "b", "c"],
            {
                ("a", "a"): 0.4, ("b", "b"): 0.4, ("c", "c"): 0.4,
                ("a", "b"): 0.8, ("b", "a"): 0.8,
                ("a", "c"): 0.8, ("c", "a"): 0.8,
                ("b", "c"): 0.0, ("c", "b"): 0.0,
            },
        )
        solution = socially_oriented(network, op="avg", aggregate="avg")
        assert solution.partition == (
            frozenset({"a", "b"}),
            frozenset({"c"}),
        )

    def test_exact_dominates_greedy(self, network):
        exact = solve_exact(network, op="avg", aggregate="min")
        for greedy in (
            individually_oriented(network, "avg"),
            socially_oriented(network, "avg"),
        ):
            if greedy.stable:
                assert exact.trust >= greedy.trust - 1e-12


class TestLocalSearch:
    def test_reaches_exact_optimum_on_fig9(self, network):
        exact = solve_exact(network, op="avg", aggregate="min")
        local = solve_local_search(network, op="avg", seed=42)
        assert local.stable
        assert local.trust == pytest.approx(exact.trust, abs=1e-9)

    def test_seeded_reproducibility(self, network):
        a = solve_local_search(network, op="avg", seed=7)
        b = solve_local_search(network, op="avg", seed=7)
        assert a.partition == b.partition
        assert a.trust == b.trust

    def test_initial_partition_accepted(self, network):
        local = solve_local_search(
            network,
            op="avg",
            seed=1,
            initial=singletons(network),
            restarts=1,
        )
        assert local.found

    def test_scales_past_exact_range(self):
        # 10 agents: Bell(10) = 115975; local search samples a fraction.
        network = random_trust_network(10, seed=5)
        solution = solve_local_search(
            network, op="avg", seed=5, restarts=2, max_iterations=30
        )
        assert solution.found
        assert sorted(a for g in solution.partition for a in g) == sorted(
            network.agents
        )
        assert solution.partitions_examined < bell_number(10)


class TestNeighbourhood:
    def test_no_identity_neighbours(self):
        # "Moving" a singleton's agent into a fresh singleton used to
        # re-emit the current partition as its own neighbour, wasting a
        # full scoring pass per iteration on a candidate that can never
        # improve.
        from repro.coalitions.local_search import _neighbours

        network = random_trust_network(6, seed=2)
        rng = random.Random(0)
        for partition in (
            singletons(network),
            grand_coalition(network),
            (
                frozenset({"a0", "a1"}),
                frozenset({"a2"}),
                frozenset({"a3", "a4", "a5"}),
            ),
        ):
            for _ in range(5):
                neighbours = _neighbours(partition, rng, sample=256)
                assert partition not in neighbours
                assert len(set(neighbours)) == len(neighbours)

    def test_neighbours_are_valid_partitions(self):
        from repro.coalitions.local_search import _neighbours

        network = random_trust_network(5, seed=4)
        rng = random.Random(1)
        agents = sorted(network.agents)
        start = singletons(network)
        for candidate in _neighbours(start, rng, sample=64):
            assert sorted(a for g in candidate for a in g) == agents
