"""Blocking coalitions and stability (paper Def. 4, Fig. 10)."""

import pytest

from repro.coalitions import (
    blocking_pairs,
    blocking_witness,
    coalition,
    coalition_trust,
    figure9_network,
    is_stable,
    normalize_partition,
    repair_step,
    stabilize,
)


@pytest.fixture
def network():
    return figure9_network()


@pytest.fixture
def fig10_partition():
    return [coalition("x1", "x2", "x3"), coalition("x4", "x5", "x6", "x7")]


class TestFig10Scenario:
    def test_partition_is_blocked_under_avg(self, network, fig10_partition):
        assert not is_stable(fig10_partition, network, "avg")

    def test_witness_is_x4(self, network, fig10_partition):
        witnesses = blocking_pairs(fig10_partition, network, "avg")
        assert witnesses
        assert witnesses[0].defector == "x4"
        assert witnesses[0].to_coalition == coalition("x1", "x2", "x3")

    def test_witness_conditions_quantified(self, network, fig10_partition):
        witness = blocking_pairs(fig10_partition, network, "avg")[0]
        # condition (i): strictly prefers the target coalition
        assert witness.preference_for_target > witness.preference_for_own
        # condition (ii): strictly raises the target's trustworthiness
        assert witness.target_trust_after > witness.target_trust_before

    def test_joining_x4_raises_T_C1(self, network):
        c1 = coalition("x1", "x2", "x3")
        assert coalition_trust(c1 | {"x4"}, network, "avg") > coalition_trust(
            c1, network, "avg"
        )

    def test_min_composition_never_blocks(self, network, fig10_partition):
        """Under ◦ = min, T(Cu ∪ xk) > T(Cu) is impossible (documented
        degeneracy): every partition is trivially stable."""
        assert is_stable(fig10_partition, network, "min")

    def test_ordered_pair_direction_matters(self, network):
        c1 = coalition("x1", "x2", "x3")
        c2 = coalition("x4", "x5", "x6", "x7")
        # (target=C1, source=C2) is blocking via x4 …
        assert blocking_witness(c1, c2, network, "avg") is not None
        # … but nobody in C1 wants to defect to C2.
        assert blocking_witness(c2, c1, network, "avg") is None


class TestRepairAndStabilize:
    def test_repair_moves_defector(self, network, fig10_partition):
        step = repair_step(
            normalize_partition(fig10_partition), network, "avg"
        )
        assert step is not None
        new_partition, witness = step
        assert witness.defector == "x4"
        moved_to = next(g for g in new_partition if "x4" in g)
        assert {"x1", "x2", "x3"} <= set(moved_to)

    def test_repair_on_stable_partition_is_none(self, network):
        stable, _, converged = stabilize(
            [coalition(*network.agents)], network, "avg"
        )
        if converged:
            assert repair_step(stable, network, "avg") is None

    def test_stabilize_reaches_stability(self, network, fig10_partition):
        final, history, converged = stabilize(
            fig10_partition, network, "avg"
        )
        assert converged
        assert history  # at least one defection happened
        assert is_stable(final, network, "avg")

    def test_stabilize_preserves_agents(self, network, fig10_partition):
        final, _, _ = stabilize(fig10_partition, network, "avg")
        assert sorted(a for g in final for a in g) == sorted(network.agents)

    def test_stabilize_max_steps(self, network, fig10_partition):
        final, history, converged = stabilize(
            fig10_partition, network, "avg", max_steps=0
        )
        assert not converged
        assert history == []

    def test_witness_str_is_informative(self, network, fig10_partition):
        witness = blocking_pairs(fig10_partition, network, "avg")[0]
        text = str(witness)
        assert "x4" in text and "prefers" in text


class TestSingletonDynamics:
    def test_all_singletons_unstable_here(self, network):
        singles = [coalition(agent) for agent in network.agents]
        # self-trust is 0.6 < pairwise trust among the C1 members, so
        # some singleton wants to merge — unstable.
        assert not is_stable(singles, network, "avg")

    def test_empty_own_fellows_view_is_zero(self, network):
        # a singleton's defector has empty own-fellow view (0.0), so any
        # positive rating of another coalition satisfies condition (i)
        witness = blocking_witness(
            coalition("x1"), coalition("x2"), network, "avg"
        )
        assert witness is not None
        assert witness.preference_for_own == 0.0
