"""Trust networks (paper Fig. 9)."""

import pytest

from repro.coalitions import (
    TrustError,
    TrustNetwork,
    average,
    figure9_network,
    random_trust_network,
    resolve_op,
)


class TestNetwork:
    def test_construction_and_lookup(self):
        network = TrustNetwork(
            ["a", "b"], {("a", "b"): 0.7, ("b", "a"): 0.4}
        )
        assert network.trust("a", "b") == 0.7
        assert network.trust("b", "a") == 0.4
        assert len(network) == 2

    def test_directedness(self):
        network = TrustNetwork(["a", "b"], {("a", "b"): 0.9})
        assert network.trust("a", "b") == 0.9
        assert network.trust("b", "a") is None

    def test_default_fallback(self):
        network = TrustNetwork(["a", "b"], default=0.5)
        assert network.trust("a", "b") == 0.5

    def test_self_trust_allowed(self):
        network = TrustNetwork(["a"], {("a", "a"): 1.0})
        assert network.trust("a", "a") == 1.0

    def test_bounds_validated(self):
        network = TrustNetwork(["a", "b"])
        with pytest.raises(TrustError):
            network.set_trust("a", "b", 1.5)
        with pytest.raises(TrustError):
            network.set_trust("a", "b", -0.1)

    def test_unknown_agent_rejected(self):
        network = TrustNetwork(["a"])
        with pytest.raises(TrustError):
            network.set_trust("a", "ghost", 0.5)

    def test_duplicate_agents_rejected(self):
        with pytest.raises(TrustError):
            TrustNetwork(["a", "a"])

    def test_empty_network_rejected(self):
        with pytest.raises(TrustError):
            TrustNetwork([])

    def test_outgoing(self):
        network = TrustNetwork(
            ["a", "b", "c"], {("a", "b"): 0.5, ("a", "c"): 0.7, ("b", "a"): 0.3}
        )
        assert network.outgoing("a") == {"b": 0.5, "c": 0.7}

    def test_subjectivity_gap(self):
        network = TrustNetwork(
            ["a", "b"], {("a", "b"): 0.9, ("b", "a"): 0.4}
        )
        assert network.subjectivity_gap() == pytest.approx(0.5)

    def test_networkx_export(self):
        network = TrustNetwork(["a", "b"], {("a", "b"): 0.9})
        graph = network.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.edges["a", "b"]["trust"] == 0.9


class TestOps:
    def test_average(self):
        assert average([0.2, 0.4, 0.6]) == pytest.approx(0.4)

    def test_resolve_named(self):
        assert resolve_op("min") is min
        assert resolve_op("max") is max
        assert resolve_op("avg") is average

    def test_resolve_callable_passthrough(self):
        fn = lambda vs: vs[0]  # noqa: E731
        assert resolve_op(fn) is fn

    def test_unknown_op(self):
        with pytest.raises(TrustError, match="known:"):
            resolve_op("median-of-medians")


class TestGenerators:
    def test_random_network_seeded_reproducible(self):
        a = random_trust_network(6, seed=3)
        b = random_trust_network(6, seed=3)
        assert a.known_scores() == b.known_scores()

    def test_random_network_full_density(self):
        network = random_trust_network(4, seed=1, density=1.0)
        for source in network.agents:
            for target in network.agents:
                assert network.trust(source, target) is not None

    def test_random_network_parameters_validated(self):
        with pytest.raises(TrustError):
            random_trust_network(0)
        with pytest.raises(TrustError):
            random_trust_network(3, density=0.0)

    def test_figure9_shape(self):
        network = figure9_network()
        assert len(network) == 7
        assert network.agents == tuple(f"x{i}" for i in range(1, 8))
        # x4's asymmetric judgements, as drawn
        assert network.trust("x4", "x1") > network.trust("x4", "x5")
