"""The Sec. 6.1 SCSP encoding of coalition formation."""

import pytest

from repro.coalitions import (
    TrustNetwork,
    build_coalition_scsp,
    coalition_variables,
    decode,
    partition_trust,
    solve_exact,
)
from repro.solver import solve, solve_branch_bound


@pytest.fixture
def small_network():
    return TrustNetwork(
        ["a", "b", "c"],
        {
            ("a", "a"): 0.6, ("b", "b"): 0.6, ("c", "c"): 0.6,
            ("a", "b"): 0.9, ("b", "a"): 0.8,
            ("a", "c"): 0.2, ("c", "a"): 0.3,
            ("b", "c"): 0.4, ("c", "b"): 0.5,
        },
    )


class TestVariables:
    def test_one_variable_per_agent(self, small_network):
        variables = coalition_variables(small_network)
        assert len(variables) == 3
        assert [v.name for v in variables] == ["co1", "co2", "co3"]

    def test_domain_is_powerset(self, small_network):
        variables = coalition_variables(small_network)
        assert len(variables[0].domain) == 2**3
        assert frozenset() in variables[0].domain
        assert frozenset({"a", "b", "c"}) in variables[0].domain


class TestConstraintClasses:
    def test_constraint_census(self, small_network):
        problem, variables = build_coalition_scsp(small_network)
        names = [getattr(c, "name", "") for c in problem.constraints]
        trust = [n for n in names if n.startswith("ct(")]
        partition = [n for n in names if n.startswith("cp(")]
        stability = [n for n in names if n.startswith("cs(")]
        assert len(trust) == 3          # one per coalition variable
        assert len(partition) == 3 + 1  # pairwise disjoint + coverage
        assert len(stability) == 3 * 3 * 2  # agents × ordered var pairs

    def test_partition_constraints_reject_overlap(self, small_network):
        problem, variables = build_coalition_scsp(small_network)
        overlap = {
            "co1": frozenset({"a", "b"}),
            "co2": frozenset({"b", "c"}),
            "co3": frozenset(),
        }
        assert problem.evaluate(overlap) == 0.0

    def test_partition_constraints_reject_gaps(self, small_network):
        problem, variables = build_coalition_scsp(small_network)
        gap = {
            "co1": frozenset({"a"}),
            "co2": frozenset({"b"}),
            "co3": frozenset(),
        }
        assert problem.evaluate(gap) == 0.0

    def test_valid_partition_scores_its_trust(self, small_network):
        problem, _ = build_coalition_scsp(small_network, op="avg")
        assignment = {
            "co1": frozenset({"a", "b"}),
            "co2": frozenset({"c"}),
            "co3": frozenset(),
        }
        expected = partition_trust(
            [{"a", "b"}, {"c"}], small_network, "avg", "min"
        )
        value = problem.evaluate(assignment)
        # stability constraints may zero it; here {a,b},{c} is stable
        assert value == pytest.approx(expected)


class TestSolveAndDecode:
    def test_encoding_agrees_with_direct_enumeration(self, small_network):
        problem, variables = build_coalition_scsp(small_network, op="avg")
        encoded = solve_branch_bound(problem)
        direct = solve_exact(small_network, op="avg", aggregate="min")
        assert encoded.blevel == pytest.approx(direct.trust)

    def test_decode_drops_empty_slots(self, small_network):
        _, variables = build_coalition_scsp(small_network)
        assignment = {
            "co1": frozenset({"a", "b"}),
            "co2": frozenset(),
            "co3": frozenset({"c"}),
        }
        partition = decode(assignment, variables)
        assert partition == (frozenset({"a", "b"}), frozenset({"c"}))

    def test_decoded_solution_is_stable(self, small_network):
        from repro.coalitions import is_stable

        problem, variables = build_coalition_scsp(small_network, op="avg")
        result = solve(problem, "branch-bound")
        partition = decode(result.best_assignment, variables)
        assert is_stable(partition, small_network, "avg")
