"""Property-based checks of the semiring trust-propagation closure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coalitions import TrustNetwork, propagation_closure
from repro.semirings import FuzzySemiring, ProbabilisticSemiring

AGENTS = ["a", "b", "c", "d", "e"]

trust_levels = st.sampled_from((0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0))


@st.composite
def sparse_networks(draw, agents=tuple(AGENTS)):
    scores = {}
    for source in agents:
        for target in agents:
            if source != target and draw(st.booleans()):
                scores[(source, target)] = draw(trust_levels)
    return TrustNetwork(list(agents), scores, default=None)


@st.composite
def chain_scores(draw, min_hops=2, max_hops=4):
    hops = draw(st.integers(min_value=min_hops, max_value=max_hops))
    return [draw(trust_levels) for _ in range(hops)]


@settings(max_examples=60)
@given(sparse_networks())
def test_closure_is_a_fixpoint(network):
    # Floyd–Warshall over an absorptive semiring converges: running the
    # closure over its own result must change nothing.
    semiring = FuzzySemiring()
    once = propagation_closure(network, semiring)
    again = TrustNetwork(list(network.agents), dict(once), default=None)
    assert propagation_closure(again, semiring) == once


@settings(max_examples=60)
@given(sparse_networks())
def test_closure_dominates_direct_scores(network):
    # ``+`` (max) only aggregates more paths on top of the direct edge,
    # so indirect trust never drops below a stated judgement.
    closure = propagation_closure(network, FuzzySemiring())
    for pair, direct in network.known_scores().items():
        assert closure[pair] >= direct


@settings(max_examples=60)
@given(chain_scores())
def test_chain_bottleneck_fuzzy(scores):
    # On a pure chain a→b→c→… the only path is the chain itself: fuzzy
    # propagation must yield exactly the weakest hop.
    agents = [f"n{i}" for i in range(len(scores) + 1)]
    network = TrustNetwork(
        agents,
        {
            (agents[i], agents[i + 1]): value
            for i, value in enumerate(scores)
        },
        default=None,
    )
    closure = propagation_closure(network, FuzzySemiring())
    assert closure[(agents[0], agents[-1])] == min(scores)
    # No judgement flows against the chain's direction.
    assert closure[(agents[-1], agents[0])] == 0.0


@settings(max_examples=60)
@given(chain_scores())
def test_chain_product_probabilistic(scores):
    # Probabilistic ⟨[0,1], max, ×⟩: each hop independently dilutes, so
    # the chain's endpoints see the product of the hops.
    agents = [f"n{i}" for i in range(len(scores) + 1)]
    network = TrustNetwork(
        agents,
        {
            (agents[i], agents[i + 1]): value
            for i, value in enumerate(scores)
        },
        default=None,
    )
    closure = propagation_closure(network, ProbabilisticSemiring())
    expected = 1.0
    for value in scores:
        expected *= value
    assert abs(closure[(agents[0], agents[-1])] - expected) < 1e-12
