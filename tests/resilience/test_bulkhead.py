"""Bulkheads: per-class slots, and the runtime's typed rejection."""

import pytest

from repro.resilience import (
    Bulkhead,
    BulkheadConfig,
    BulkheadError,
    ResilienceConfig,
)
from repro.runtime import RuntimeConfig, RuntimeServer, SessionStatus


class TestBulkhead:
    def test_rejects_past_the_class_limit(self):
        bulkhead = Bulkhead(BulkheadConfig(default_limit=2))
        assert bulkhead.try_acquire("render")
        assert bulkhead.try_acquire("render")
        assert not bulkhead.try_acquire("render")
        assert bulkhead.rejections == {"render": 1}

    def test_classes_are_isolated(self):
        bulkhead = Bulkhead(BulkheadConfig(default_limit=1))
        assert bulkhead.try_acquire("render")
        assert not bulkhead.try_acquire("render")
        assert bulkhead.try_acquire("store")  # other hull compartment

    def test_release_reopens_the_compartment(self):
        bulkhead = Bulkhead(BulkheadConfig(default_limit=1))
        assert bulkhead.try_acquire("render")
        bulkhead.release("render")
        assert bulkhead.try_acquire("render")
        assert bulkhead.inflight("render") == 1

    def test_per_class_overrides_and_uncapped_classes(self):
        bulkhead = Bulkhead(
            BulkheadConfig(default_limit=1, limits={"bulk": None, "vip": 2})
        )
        for _ in range(50):
            assert bulkhead.try_acquire("bulk")
        assert bulkhead.try_acquire("vip")
        assert bulkhead.try_acquire("vip")
        assert not bulkhead.try_acquire("vip")

    def test_unmatched_release_raises(self):
        bulkhead = Bulkhead()
        with pytest.raises(BulkheadError):
            bulkhead.release("render")

    def test_rejects_bad_config(self):
        with pytest.raises(BulkheadError):
            BulkheadConfig(default_limit=0)
        with pytest.raises(BulkheadError):
            BulkheadConfig(limits={"a": 0})


class TestRuntimeIntegration:
    def test_full_compartment_yields_typed_rejection(
        self, broker, make_request
    ):
        # One worker, slow-ish sessions: with a 1-slot compartment only
        # one of the burst is admitted, the rest bounce immediately.
        server = RuntimeServer(
            broker,
            RuntimeConfig(workers=1, seed=0, probe_interval_s=0.0),
            resilience=ResilienceConfig(
                bulkhead=BulkheadConfig(default_limit=1)
            ),
        )
        results = server.run([make_request(f"C{i}") for i in range(4)])
        statuses = sorted(r.status.value for r in results)
        assert statuses.count("bulkhead-rejected") == 3
        assert statuses.count("completed") == 1
        rejected = [
            r for r in results
            if r.status is SessionStatus.BULKHEAD_REJECTED
        ]
        assert all("compartment" in r.detail for r in rejected)
        # Slots were released: a follow-up burst is admitted again.
        follow_up = server.run([make_request("D")])
        assert follow_up[0].status is SessionStatus.COMPLETED
