"""Shared resilience fixtures: the runtime's tiny market plus helpers
for driving servers with injected faults and inspecting agreements."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Polynomial,
    integer_variable,
    polynomial_constraint,
)
from repro.semirings import WeightedSemiring
from repro.soa import (
    Broker,
    ClientRequest,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)


def publish_cost_provider(registry, provider, base, slope=1.0):
    registry.publish(
        ServiceDescription(
            service_id=f"filter-{provider}",
            name="filter",
            provider=provider,
            interface=ServiceInterface(operation="filter"),
            qos=QoSDocument(
                service_name="filter",
                provider=provider,
                policies=[
                    QoSPolicy(
                        attribute="cost",
                        variables={"x": range(0, 11)},
                        polynomial=Polynomial.linear({"x": slope}, base),
                    )
                ],
            ),
        )
    )


@pytest.fixture
def market():
    registry = ServiceRegistry()
    publish_cost_provider(registry, "P1", base=5.0)
    publish_cost_provider(registry, "P2", base=3.0)
    publish_cost_provider(registry, "P3", base=8.0)
    return registry


@pytest.fixture
def broker(market):
    return Broker(market)


@pytest.fixture
def make_request():
    weighted = WeightedSemiring()
    x = integer_variable("x", 10)
    requirement = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2})
    )

    def factory(client="C"):
        return ClientRequest(
            client=client,
            operation="filter",
            attribute="cost",
            requirements=[requirement],
        )

    return factory


def agreement_fingerprint(result):
    """The reproducibility-relevant view of one session result.

    SLA ids come from a process-global counter, so they are excluded;
    what must match across equivalent runs is the level, the binding
    and the resources.
    """
    if result.sla is None:
        return (result.status.value, None)
    return (
        result.status.value,
        str(result.sla.agreed_level),
        tuple(result.sla.service_ids),
        tuple(sorted(result.sla.resource_assignment.items())),
    )
