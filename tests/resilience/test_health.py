"""Health-checked matchmaking: probes, quarantine, recovery."""

import pytest

from repro.resilience import HealthConfig, HealthError, HealthMonitor
from repro.soa import BurstOutage, FaultInjector
from repro.soa.registry import ServiceRegistry

from .conftest import publish_cost_provider


def outage_injector(service_id, start, length):
    injector = FaultInjector(seed=0)
    injector.attach(service_id, BurstOutage(start=start, length=length))
    return injector


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(HealthError):
            HealthConfig(interval_s=0)
        with pytest.raises(HealthError):
            HealthConfig(unhealthy_after=0)
        with pytest.raises(HealthError):
            HealthConfig(lease_s=-1.0)


class TestProbing:
    def test_outage_quarantines_then_recovery_reinstates(self, market):
        injector = outage_injector("filter-P2", start=0, length=3)
        monitor = HealthMonitor(
            market,
            injector=injector,
            config=HealthConfig(unhealthy_after=2, healthy_after=2),
            seed=7,
        )
        # Sweeps 0 and 1 fall inside the outage window.
        monitor.probe_all(tick=0)
        assert not market.is_quarantined("P2")  # one bad sweep is noise
        monitor.probe_all(tick=1)
        assert market.is_quarantined("P2")
        found = {d.provider for d in market.find(operation="filter")}
        assert found == {"P1", "P3"}
        # The window ends; two clean sweeps reinstate the provider.
        monitor.probe_all(tick=3)
        assert market.is_quarantined("P2")
        monitor.probe_all(tick=4)
        assert not market.is_quarantined("P2")
        assert [(p, to) for _, p, to in monitor.transitions] == [
            ("P2", "unhealthy"),
            ("P2", "healthy"),
        ]

    def test_quarantined_providers_keep_being_probed(self, market):
        injector = outage_injector("filter-P1", start=0, length=100)
        monitor = HealthMonitor(
            market,
            injector=injector,
            config=HealthConfig(unhealthy_after=1, healthy_after=1),
            seed=0,
        )
        monitor.probe_all(tick=0)
        assert market.is_quarantined("P1")
        # find() no longer returns P1, yet the monitor still sees it
        # (include_unavailable) — that is how it earns its way back.
        monitor.probe_all(tick=200)
        assert not market.is_quarantined("P1")

    def test_probes_never_pollute_injection_history(self, market):
        injector = outage_injector("filter-P2", start=0, length=10)
        monitor = HealthMonitor(
            market, injector=injector, config=HealthConfig(), seed=1
        )
        for tick in range(5):
            monitor.probe_all(tick=tick)
        assert injector.injected == []

    def test_probe_failures_are_seed_deterministic(self, market):
        from repro.soa import BernoulliCrash

        def verdicts(seed):
            injector = FaultInjector(seed=0)
            injector.attach("filter-P1", BernoulliCrash(0.5))
            monitor = HealthMonitor(
                market, injector=injector, config=HealthConfig(), seed=seed
            )
            return [
                monitor.probe_all(tick=t)["P1"] for t in range(16)
            ]

        assert verdicts(3) == verdicts(3)
        assert verdicts(3) != verdicts(4)  # keyed by the master seed

    def test_clean_probes_renew_leases(self):
        clock_now = [0.0]
        registry = ServiceRegistry(clock=lambda: clock_now[0])
        publish_cost_provider(registry, "P1", base=5.0)
        registry.renew_lease("filter-P1", 1.0)
        monitor = HealthMonitor(
            registry, config=HealthConfig(lease_s=5.0), seed=0
        )
        monitor.probe_all(tick=0)
        clock_now[0] = 2.0  # past the original lease, inside the renewal
        assert len(registry.find(operation="filter")) == 1

    def test_monitor_without_injector_sees_everything_healthy(self, market):
        monitor = HealthMonitor(market, config=HealthConfig(), seed=0)
        verdicts = monitor.probe_all()
        assert verdicts == {"P1": True, "P2": True, "P3": True}
        assert monitor.sweeps == 1
        assert monitor.is_healthy("P2")
