"""Hedged solves: tracker, policy, and the bit-identity regression."""

import asyncio
import random

import pytest

from repro.resilience import (
    HedgeConfig,
    HedgeError,
    HedgePolicy,
    LatencyTracker,
    ResilienceConfig,
    hedge_attempt_key,
)
from repro.runtime import RuntimeConfig, RuntimeServer
from repro.runtime.server import derive_session_seed
from repro.soa import Broker, FaultInjector, RandomDelay, ServiceRegistry
from repro.soa.faults import BernoulliCrash

from .conftest import agreement_fingerprint, publish_cost_provider

#: A hedge that qualifies every deadline session but whose launch delay
#: is far beyond any solve time — applies() is True, shadows never run.
IDLE_HEDGE = HedgeConfig(delay_s=30.0, min_samples=10**6)


def make_broker():
    registry = ServiceRegistry()
    publish_cost_provider(registry, "P1", base=5.0)
    publish_cost_provider(registry, "P2", base=3.0)
    publish_cost_provider(registry, "P3", base=8.0)
    return Broker(registry)


class TestLatencyTracker:
    def test_empty_tracker_has_no_quantile(self):
        assert LatencyTracker().quantile(95.0) is None

    def test_nearest_rank_quantiles(self):
        tracker = LatencyTracker()
        for value in (0.1, 0.2, 0.3, 0.4):
            tracker.observe(value)
        assert tracker.quantile(50.0) == 0.2
        assert tracker.quantile(100.0) == 0.4
        assert tracker.quantile(1.0) == 0.1

    def test_window_overwrites_oldest(self):
        tracker = LatencyTracker(window=2)
        tracker.observe(1.0)
        tracker.observe(2.0)
        tracker.observe(9.0)  # evicts the 1.0 sample
        assert len(tracker) == 2
        assert tracker.quantile(100.0) == 9.0
        assert tracker.quantile(1.0) == 2.0

    def test_rejects_bad_window(self):
        with pytest.raises(HedgeError):
            LatencyTracker(window=0)


class TestPolicy:
    def test_rejects_bad_config(self):
        with pytest.raises(HedgeError):
            HedgeConfig(delay_s=-1.0)
        with pytest.raises(HedgeError):
            HedgeConfig(percentile=0.0)
        with pytest.raises(HedgeError):
            HedgeConfig(min_samples=0)
        with pytest.raises(HedgeError):
            HedgeConfig(max_hedges=0)

    def test_deadline_only_gating(self):
        policy = HedgePolicy(HedgeConfig(deadline_only=True))
        assert not policy.applies(None)
        assert policy.applies(1.0)
        hedge_all = HedgePolicy(HedgeConfig(deadline_only=False))
        assert hedge_all.applies(None)

    def test_launch_delay_warms_up_to_the_percentile(self):
        policy = HedgePolicy(
            HedgeConfig(delay_s=0.5, percentile=100.0, min_samples=3)
        )
        assert policy.launch_delay() == 0.5  # still warming up
        for latency in (0.9, 1.1, 1.3):
            policy.observe_latency(latency)
        assert policy.launch_delay() == 1.3
        # The fixed delay is a floor, never undercut by a fast window.
        floor = HedgePolicy(
            HedgeConfig(delay_s=0.5, percentile=100.0, min_samples=1)
        )
        floor.observe_latency(0.01)
        assert floor.launch_delay() == 0.5

    def test_attempt_keys_never_collide_with_session_keys(self):
        assert hedge_attempt_key("s-1", 1) == "s-1|hedge|1"
        assert hedge_attempt_key("s-1", 1) != hedge_attempt_key("s-1", 2)
        assert hedge_attempt_key("s-1", 1) != hedge_attempt_key("s-2", 1)


def run_keyed(server, requests):
    """Drive keyed sessions (k0, k1, …) and fingerprint each result."""

    async def drive():
        async with server:
            futures = [
                server.submit(request, session_key=f"k{i}")
                for i, request in enumerate(requests)
            ]
            return await asyncio.gather(*futures)

    results = asyncio.run(drive())
    return {r.session_key: agreement_fingerprint(r) for r in results}


class TestBitIdentity:
    def test_idle_hedging_is_bit_identical_to_disabled(self, make_request):
        """ISSUE satellite 1: hedging on, no hedge winning ⇒ the exact
        agreements of hedging off.  Faults and retries are active, so
        every session consumes RNG — any stray draw would show up."""

        def noisy_injector():
            injector = FaultInjector(seed=0)
            for provider in ("P1", "P2", "P3"):
                injector.attach(f"filter-{provider}", BernoulliCrash(0.3))
                injector.attach(
                    f"filter-{provider}", RandomDelay(0.5, 2.0)
                )
            return injector

        requests = [make_request(f"C{i}") for i in range(12)]
        config = RuntimeConfig(
            workers=3, seed=42, deadline_s=10.0, probe_interval_s=0.0
        )
        baseline = run_keyed(
            RuntimeServer(make_broker(), config, injector=noisy_injector()),
            requests,
        )
        hedged = run_keyed(
            RuntimeServer(
                make_broker(),
                config,
                injector=noisy_injector(),
                resilience=ResilienceConfig(hedge=IDLE_HEDGE),
            ),
            requests,
        )
        assert hedged == baseline


class TestHedgeRace:
    def test_shadow_wins_past_a_slow_primary(self, make_request):
        """Pin the master seed so the primary's keyed stream draws an
        injected delay and the shadow's keyed stream does not — the
        shadow must finish first and be recorded as the winner."""
        session_key = "slow-one"
        seed = next(
            s
            for s in range(1000)
            if random.Random(
                derive_session_seed(s, session_key)
            ).random()
            < 0.5
            < random.Random(
                derive_session_seed(s, hedge_attempt_key(session_key, 1))
            ).random()
        )
        injector = FaultInjector(seed=0)
        # Every provider stalls or not on its first session-stream draw.
        for provider in ("P1", "P2", "P3"):
            injector.attach(
                f"filter-{provider}", RandomDelay(0.5, 1500.0)
            )
        server = RuntimeServer(
            make_broker(),
            RuntimeConfig(
                workers=2, seed=seed, deadline_s=10.0, probe_interval_s=0.0
            ),
            injector=injector,
            resilience=ResilienceConfig(
                hedge=HedgeConfig(delay_s=0.05, min_samples=10**6)
            ),
        )

        async def drive():
            async with server:
                return await server.submit(
                    make_request("C"), session_key=session_key
                )

        result = asyncio.run(drive())
        assert result.status.value == "completed"
        hedge = server.resilience.hedge
        assert hedge.launched == 1
        assert hedge.won == 1
        assert result.latency_s < 1.5  # did not sit out the full delay
