"""Policy composition, fleet sharing, and whole-layer determinism."""

from repro.fleet import FleetConfig, FleetFrontend
from repro.resilience import (
    NO_RESILIENCE,
    BreakerConfig,
    BreakerRegistry,
    BulkheadConfig,
    DeadLetterQueue,
    DLQConfig,
    HealthConfig,
    HedgeConfig,
    ResilienceConfig,
    build_resilience,
)
from repro.runtime import RuntimeConfig, RuntimeServer
from repro.soa import (
    BernoulliCrash,
    Broker,
    FaultInjector,
    RandomDelay,
    ServiceRegistry,
)

from .conftest import agreement_fingerprint, publish_cost_provider

#: Everything enabled, nothing ever triggering: breaker thresholds and
#: health flap counts out of reach, hedge launch delay beyond any solve,
#: bulkheads effectively uncapped.  The layer is live but must be
#: *observationally idle* — the determinism acceptance criterion.
IDLE_EVERYTHING = ResilienceConfig(
    breaker=BreakerConfig(failure_threshold=10**9),
    bulkhead=BulkheadConfig(default_limit=10**6),
    health=HealthConfig(interval_s=60.0, unhealthy_after=10**6),
    hedge=HedgeConfig(delay_s=30.0, min_samples=10**6),
    dlq=DLQConfig(),
)


def make_market():
    registry = ServiceRegistry()
    publish_cost_provider(registry, "P1", base=5.0)
    publish_cost_provider(registry, "P2", base=3.0)
    publish_cost_provider(registry, "P3", base=8.0)
    return registry


def noisy_injector():
    injector = FaultInjector(seed=0)
    for provider in ("P1", "P2", "P3"):
        injector.attach(f"filter-{provider}", BernoulliCrash(0.3))
        injector.attach(f"filter-{provider}", RandomDelay(0.5, 2.0))
    return injector


class TestConfig:
    def test_the_default_is_everything_off(self):
        assert not NO_RESILIENCE.any_enabled
        assert ResilienceConfig(dlq=DLQConfig()).any_enabled

    def test_all_defaults_turns_everything_on(self):
        config = ResilienceConfig.all_defaults()
        assert config.any_enabled
        assert None not in (
            config.breaker,
            config.bulkhead,
            config.health,
            config.hedge,
            config.dlq,
        )


class TestBuild:
    def test_disabled_config_builds_an_inert_policy(self, market):
        policy = build_resilience(None, market)
        assert policy.breakers is None
        assert policy.bulkhead is None
        assert policy.health is None
        assert policy.hedge is None
        assert policy.dlq is None
        assert market._gates == []
        assert policy.snapshot() == {}

    def test_only_requested_patterns_are_built(self, market):
        policy = build_resilience(
            ResilienceConfig(dlq=DLQConfig()), market
        )
        assert policy.dlq is not None
        assert policy.breakers is None
        assert market._gates == []  # no breaker, no gate

    def test_breaker_gate_attaches_and_detaches(self, market):
        policy = build_resilience(
            ResilienceConfig(breaker=BreakerConfig()), market
        )
        assert len(market._gates) == 1
        policy.detach()
        assert market._gates == []

    def test_shared_instances_are_adopted(self, market):
        breakers = BreakerRegistry(BreakerConfig())
        dlq = DeadLetterQueue()
        policy = build_resilience(
            ResilienceConfig(breaker=BreakerConfig(), dlq=DLQConfig()),
            market,
            shared_breakers=breakers,
            shared_dlq=dlq,
            owns_health_loop=False,
        )
        assert policy.breakers is breakers
        assert policy.dlq is dlq
        assert not policy.owns_health_loop

    def test_snapshot_reports_every_live_pattern(self, market):
        policy = build_resilience(
            ResilienceConfig.all_defaults(), market, seed=0
        )
        snapshot = policy.snapshot()
        assert snapshot["breakers"] == {}
        assert snapshot["bulkhead_rejections"] == {}
        assert snapshot["health_sweeps"] == 0
        assert snapshot["hedges_launched"] == 0
        assert snapshot["dlq"]["depth"] == 0


class TestFleetSharing:
    def test_breakers_health_and_dlq_are_fleet_global(self, make_request):
        market = make_market()
        frontend = FleetFrontend(
            market,
            FleetConfig(
                shards=3,
                workers_per_shard=1,
                seed=0,
                resilience=ResilienceConfig.all_defaults(),
            ),
        )
        for shard in frontend.shards.values():
            policy = shard.server.resilience
            assert policy.breakers is frontend.breakers
            assert policy.dlq is frontend.dlq
            # The fleet owns the single probe loop; shards get none.
            assert policy.health is None
            assert not policy.owns_health_loop
            # Per-shard state stays private.
            assert policy.bulkhead is not None
            assert policy.hedge is not None
        assert frontend.health is not None
        # One shared breaker registry ⇒ exactly one gate, not three.
        assert len(market._gates) == 1
        results = frontend.run([make_request(f"C{i}") for i in range(6)])
        assert all(r.status.value == "completed" for r in results)
        snapshot = frontend.resilience_snapshot()
        assert snapshot["enabled"]
        assert snapshot["quarantined"] == []
        assert set(snapshot["per_shard"]) == set(frontend.shards)


class TestWholeLayerDeterminism:
    def test_idle_resilience_is_bit_identical_to_disabled(
        self, make_request
    ):
        """Acceptance criterion: a fixed master seed yields bit-identical
        agreements with the resilience layer enabled and disabled, as
        long as no breaker trips and no hedge wins — here enforced by
        unreachable thresholds while faults keep every session's RNG
        busy."""
        requests = [make_request(f"C{i}") for i in range(10)]

        def run(resilience):
            server = RuntimeServer(
                Broker(make_market()),
                RuntimeConfig(
                    workers=3, seed=11, deadline_s=10.0,
                    probe_interval_s=0.0,
                ),
                injector=noisy_injector(),
                resilience=resilience,
            )
            results = server.run(requests)
            return {
                r.request.client: agreement_fingerprint(r) for r in results
            }

        assert run(IDLE_EVERYTHING) == run(None)
