"""Circuit breakers: the FSM, deterministic scheduling, the gate."""

import random

import pytest

from repro.resilience import (
    BreakerConfig,
    BreakerError,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)
from repro.soa import ServiceRegistry

from .conftest import publish_cost_provider


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_breaker(**overrides):
    clock = FakeClock()
    defaults = dict(
        failure_threshold=2, recovery_s=1.0, probe_jitter=0.0
    )
    defaults.update(overrides)
    breaker = CircuitBreaker(
        "P", BreakerConfig(**defaults), clock, random.Random(0)
    )
    return breaker, clock


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(BreakerError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(BreakerError):
            BreakerConfig(recovery_s=-1.0)
        with pytest.raises(BreakerError):
            BreakerConfig(probe_jitter=1.5)
        with pytest.raises(BreakerError):
            BreakerConfig(half_open_probes=0)


class TestStateMachine:
    def test_trips_after_consecutive_failures(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_recovery_then_close_on_probe_success(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allows()
        clock.advance(1.0)
        assert breaker.allows()  # the half-open probe slot
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()

    def test_half_open_hands_out_bounded_probe_slots(self):
        breaker, clock = make_breaker(half_open_probes=2)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allows()
        assert breaker.allows()
        assert not breaker.allows()  # both slots outstanding

    def test_failed_probe_reopens_with_a_fresh_deadline(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()
        clock.advance(1.0)
        assert breaker.allows()  # probing again after the new deadline

    def test_transition_journal_records_the_path(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allows()
        breaker.record_success()
        assert [(a, b) for _, a, b in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_jittered_recovery_is_seed_deterministic(self):
        def deadlines(seed):
            clock = FakeClock()
            breaker = CircuitBreaker(
                "P",
                BreakerConfig(
                    failure_threshold=1, recovery_s=1.0, probe_jitter=0.5
                ),
                clock,
                random.Random(seed),
            )
            out = []
            for _ in range(3):
                breaker.record_failure()
                out.append(breaker._reopen_at - clock.now)
                clock.advance(2.0)
                breaker.allows()
            return out

        assert deadlines(7) == deadlines(7)
        assert deadlines(7) != deadlines(8)
        assert all(0.5 <= d <= 1.5 for d in deadlines(7))


class TestRegistryGate:
    def test_open_breaker_hides_provider_from_find(self, market):
        clock = FakeClock()
        breakers = BreakerRegistry(
            BreakerConfig(
                failure_threshold=1, recovery_s=1.0, probe_jitter=0.0
            ),
            clock=clock,
            seed=0,
        )
        market.add_gate(breakers.admit)
        assert len(market.find(operation="filter")) == 3
        breakers.record_failure("P2")
        found = {d.provider for d in market.find(operation="filter")}
        assert found == {"P1", "P3"}
        # Recovery: the half-open probe slot readmits exactly P2.
        clock.advance(1.0)
        found = {d.provider for d in market.find(operation="filter")}
        assert found == {"P1", "P2", "P3"}
        breakers.record_success("P2")
        assert breakers.state("P2") is BreakerState.CLOSED

    def test_gate_dedupes_across_shared_policies(self, market):
        breakers = BreakerRegistry(BreakerConfig(half_open_probes=1))
        market.add_gate(breakers.admit)
        market.add_gate(breakers.admit)  # second shard, same registry
        assert len(market._gates) == 1

    def test_violation_counts_like_a_failure(self):
        breakers = BreakerRegistry(BreakerConfig(failure_threshold=2))
        breakers.record_violation("P")
        breakers.record_violation("P")
        assert breakers.state("P") is BreakerState.OPEN
        assert breakers.open_providers() == ["P"]

    def test_include_unavailable_bypasses_the_gate(self):
        registry = ServiceRegistry()
        publish_cost_provider(registry, "P1", base=5.0)
        breakers = BreakerRegistry(BreakerConfig(failure_threshold=1))
        registry.add_gate(breakers.admit)
        breakers.record_failure("P1")
        assert registry.find(operation="filter") == []
        assert len(registry.find(include_unavailable=True)) == 1
