"""Dead-letter queue: capture, persistence, and replay fidelity."""

import pytest

from repro.constraints import ConstantConstraint
from repro.resilience import (
    DLQConfig,
    DLQError,
    DeadLetterQueue,
    ResilienceConfig,
    replay_letter,
)
from repro.runtime import (
    RetryPolicy,
    RuntimeConfig,
    RuntimeServer,
    SessionResult,
    SessionStatus,
)
from repro.semirings import FuzzySemiring
from repro.soa import BernoulliCrash, Broker, ClientRequest, FaultInjector


def failed_result(request, index=0, session_key=None, detail="boom"):
    return SessionResult(
        request=request,
        status=SessionStatus.FAILED,
        detail=detail,
        attempts=3,
        index=index,
        session_key=session_key,
    )


#: Fast retries so a crash-everything run exhausts attempts quickly.
FAST_RETRY = RetryPolicy(max_attempts=2, base_backoff_s=0.001)


def crashed_run(broker, requests, seed=5):
    """Serve ``requests`` against a market where every provider crashes,
    capturing the terminal sessions in a DLQ; returns (results, dlq)."""
    injector = FaultInjector(seed=0)
    for description in broker.registry.find(include_unavailable=True):
        injector.attach(description.service_id, BernoulliCrash(1.0))
    server = RuntimeServer(
        broker,
        RuntimeConfig(
            workers=2, seed=seed, retry=FAST_RETRY, probe_interval_s=0.0
        ),
        injector=injector,
        resilience=ResilienceConfig(dlq=DLQConfig()),
    )
    results = server.run(requests)
    return results, server.resilience.dlq


class TestCapture:
    def test_captures_only_configured_statuses(self, make_request):
        queue = DeadLetterQueue()
        request = make_request("C")
        assert queue.capture(failed_result(request)) is not None
        ok = SessionResult(request=request, status=SessionStatus.COMPLETED)
        assert queue.capture(ok) is None
        rejected = SessionResult(
            request=request, status=SessionStatus.REJECTED
        )
        assert queue.capture(rejected) is None
        assert len(queue) == 1

    def test_envelopes_carry_reproducibility_coordinates(self, make_request):
        queue = DeadLetterQueue()
        letter = queue.capture(
            failed_result(make_request("C"), index=7, session_key="k7"),
            master_seed=42,
            tick=19,
        )
        assert (letter.master_seed, letter.tick) == (42, 19)
        assert (letter.session_key, letter.index) == ("k7", 7)
        assert letter.seq == 0 and letter.replayable
        # Without an explicit tick the admission index stands in.
        second = queue.capture(failed_result(make_request("D"), index=8))
        assert second.tick == 8 and second.seq == 1

    def test_overflow_drops_oldest(self, make_request):
        queue = DeadLetterQueue(DLQConfig(maxlen=2))
        for i in range(3):
            queue.capture(failed_result(make_request(f"C{i}"), index=i))
        assert [letter.seq for letter in queue] == [1, 2]
        assert queue.dropped == 1
        assert queue.captured_total == 3
        assert queue.stats() == {
            "depth": 2,
            "captured_total": 3,
            "dropped": 1,
            "by_status": {"failed": 2},
        }

    def test_rejects_bad_config(self):
        with pytest.raises(DLQError):
            DLQConfig(maxlen=0)
        with pytest.raises(DLQError):
            DLQConfig(capture_statuses=())


class TestPersistence:
    def test_jsonl_round_trip(self, make_request, tmp_path):
        queue = DeadLetterQueue()
        queue.capture(
            failed_result(make_request("C"), session_key="k0"),
            master_seed=9,
        )
        queue.capture(failed_result(make_request("D"), index=1))
        path = queue.to_jsonl(tmp_path / "dead" / "letters.jsonl")
        restored = DeadLetterQueue.from_jsonl(path)
        assert [letter.to_dict() for letter in restored] == [
            letter.to_dict() for letter in queue
        ]
        # The seq counter resumes past the loaded envelopes.
        follow_up = restored.capture(failed_result(make_request("E")))
        assert follow_up.seq == 2


class TestReplay:
    def test_replay_reproduces_the_original_agreement(
        self, market, make_request
    ):
        """Acceptance criterion: the agreement a replayed envelope signs
        is exactly the one a healthy market would have given the
        original request."""
        requests = [make_request(f"C{i}") for i in range(4)]
        results, dlq = crashed_run(Broker(market), requests)
        # Retries exhausted everywhere: every session was captured.
        assert all(
            r.status is not SessionStatus.COMPLETED for r in results
        )
        assert len(dlq) == len(requests)

        healthy = Broker(market)
        expected = healthy.negotiate(make_request("reference")).sla
        rows = dlq.replay(healthy)
        assert [row["outcome"] for row in rows] == ["completed"] * 4
        for row in rows:
            assert row["sla"]["agreed_level"] == expected.agreed_level
            assert row["sla"]["service_ids"] == list(expected.service_ids)
            assert row["sla"]["resource_assignment"] == {
                name: value
                for name, value in sorted(
                    expected.resource_assignment.items()
                )
            }

    def test_replay_against_a_runtime_server(self, market, make_request):
        results, dlq = crashed_run(Broker(market), [make_request("C")])
        server = RuntimeServer(
            Broker(market),
            RuntimeConfig(workers=1, seed=0, probe_interval_s=0.0),
        )
        rows = dlq.replay(server)
        assert rows[0]["outcome"] == "completed"
        assert rows[0]["sla"]["agreed_level"] is not None

    def test_unserializable_request_is_kept_but_flagged(self):
        class CustomSemiring(FuzzySemiring):
            @property
            def name(self):
                return "custom"

        request = ClientRequest(
            client="C",
            operation="filter",
            attribute="cost",
            requirements=[ConstantConstraint(CustomSemiring(), 0.5)],
        )
        queue = DeadLetterQueue()
        letter = queue.capture(failed_result(request))
        assert letter is not None and not letter.replayable
        with pytest.raises(DLQError):
            letter.to_request()
        row = replay_letter(letter, target=object())
        assert row["outcome"] == "unreplayable"

    def test_replay_rejects_unknown_targets(self, make_request):
        queue = DeadLetterQueue()
        letter = queue.capture(failed_result(make_request("C")))
        with pytest.raises(DLQError):
            replay_letter(letter, target=object())
