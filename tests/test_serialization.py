"""JSON round-trips for problems, QoS documents and trust networks."""

import math

import pytest

from repro import serialization as ser
from repro.coalitions import TrustNetwork, figure9_network
from repro.constraints import (
    ConstantConstraint,
    FunctionConstraint,
    Polynomial,
    TableConstraint,
    constraints_equal,
    integer_variable,
    variable,
)
from repro.semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)
from repro.soa import QoSDocument, QoSPolicy
from repro.solver import SCSP, solve


class TestSemiringRoundTrip:
    @pytest.mark.parametrize(
        "semiring",
        [
            BooleanSemiring(),
            FuzzySemiring(),
            ProbabilisticSemiring(),
            WeightedSemiring(),
            WeightedSemiring(integral=True),
            BoundedWeightedSemiring(cap=9.0),
            SetSemiring({"a", "b"}),
            ProductSemiring([WeightedSemiring(), FuzzySemiring()]),
        ],
        ids=lambda s: s.name,
    )
    def test_round_trip(self, semiring):
        payload = ser.semiring_to_dict(semiring)
        assert ser.semiring_from_dict(payload) == semiring

    def test_unknown_kind_rejected(self):
        with pytest.raises(ser.SerializationError):
            ser.semiring_from_dict({"kind": "quantum"})


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [0.5, True, math.inf, frozenset({"x", "y"}), (3.0, 0.5), "a"],
    )
    def test_round_trip(self, value):
        assert ser.value_from_json(ser.value_to_json(value)) == value

    def test_infinity_encoding(self):
        assert ser.value_to_json(math.inf) == "inf"

    def test_nested_tuple(self):
        value = ((1.0, frozenset({"a"})), 2.0)
        assert ser.value_from_json(ser.value_to_json(value)) == value


class TestConstraintRoundTrip:
    def test_table_constraint(self, fuzzy):
        x = variable("x", [0, 1, 2])
        constraint = TableConstraint(
            fuzzy, [x], {(0,): 0.9, (1,): 0.4}, default=0.1, name="t"
        )
        clone = ser.constraint_from_dict(
            ser.constraint_to_dict(constraint)
        )
        assert constraints_equal(constraint, clone)
        assert clone.name == "t"

    def test_weighted_table_with_infinity(self, weighted):
        x = variable("x", [0, 1])
        constraint = TableConstraint(
            weighted, [x], {(0,): 3.0, (1,): weighted.zero}
        )
        clone = ser.constraint_from_dict(
            ser.constraint_to_dict(constraint)
        )
        assert constraints_equal(constraint, clone)

    def test_constant_constraint(self, probabilistic):
        constraint = ConstantConstraint(probabilistic, 0.7)
        clone = ser.constraint_from_dict(
            ser.constraint_to_dict(constraint)
        )
        assert constraints_equal(constraint, clone)

    def test_polynomial_constraint_stays_symbolic(self, weighted):
        x = integer_variable("x", 10)
        constraint = ser.serializable_polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 2}, 2), name="2x+2"
        )
        payload = ser.constraint_to_dict(constraint)
        assert payload["kind"] == "polynomial"
        clone = ser.constraint_from_dict(payload)
        assert constraints_equal(constraint, clone)

    def test_function_constraint_materializes(self, fuzzy):
        x = variable("x", [0, 1])
        constraint = FunctionConstraint(fuzzy, (x,), lambda v: 0.5)
        payload = ser.constraint_to_dict(constraint)
        assert payload["kind"] == "table"
        assert constraints_equal(
            constraint, ser.constraint_from_dict(payload)
        )


class TestProblemRoundTrip:
    def test_fig1_problem(self, fig1):
        problem = SCSP(
            [fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"], name="fig1"
        )
        clone = ser.problem_from_dict(ser.problem_to_dict(problem))
        assert clone.name == "fig1"
        assert clone.con == ("X",)
        assert solve(clone).blevel == solve(problem).blevel == 7.0

    def test_dumps_loads_top_level(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])
        text = ser.dumps(problem)
        clone = ser.loads(text)
        assert isinstance(clone, SCSP)
        assert solve(clone).blevel == 7.0

    def test_unsupported_object_rejected(self):
        with pytest.raises(ser.SerializationError):
            ser.dumps(object())


class TestQoSRoundTrip:
    def test_full_document(self):
        document = QoSDocument(
            service_name="compress",
            provider="ACME",
            policies=[
                QoSPolicy(attribute="reliability", constant=0.97),
                QoSPolicy(
                    attribute="cost",
                    variables={"jobs": range(0, 4)},
                    polynomial=Polynomial.linear({"jobs": 1.5}, 2.0),
                ),
                QoSPolicy(
                    attribute="fuzzy-reliability",
                    variables={"tier": (0, 1)},
                    table={(0,): 0.3, (1,): 0.9},
                ),
            ],
        )
        clone = ser.qos_document_from_dict(
            ser.qos_document_to_dict(document)
        )
        assert clone.provider == "ACME"
        assert clone.policy_for("reliability").constant == 0.97
        assert clone.policy_for("cost").polynomial == Polynomial.linear(
            {"jobs": 1.5}, 2.0
        )
        assert clone.policy_for("fuzzy-reliability").table[(1,)] == 0.9

    def test_fn_policy_rejected(self):
        document = QoSDocument(
            service_name="x",
            provider="P",
            policies=[
                QoSPolicy(
                    attribute="cost",
                    variables={"x": (0, 1)},
                    fn=lambda x: float(x),
                )
            ],
        )
        with pytest.raises(ser.SerializationError, match="fn-based"):
            ser.qos_document_to_dict(document)


class TestPlanRoundTrip:
    def test_nested_plan(self):
        from repro.soa import Choose, Invoke, Pipeline, Split

        plan = Pipeline(
            [
                Invoke("a"),
                Split([Invoke("b"), Invoke("c")]),
                Choose([Invoke("d"), Pipeline([Invoke("e"), Invoke("f")])]),
            ]
        )
        clone = ser.plan_from_dict(ser.plan_to_dict(plan))
        assert clone.describe() == plan.describe()
        assert clone.services() == plan.services()

    def test_dumps_loads_dispatch(self):
        import json

        from repro.soa import Invoke, Split

        plan = Split([Invoke("x"), Invoke("y")])
        payload = json.loads(ser.dumps(plan))
        assert payload["kind"] == "plan"
        clone = ser.loads(ser.dumps(plan))
        assert clone.describe() == plan.describe()

    def test_unknown_node_type_rejected(self):
        with pytest.raises(ser.SerializationError):
            ser.plan_from_dict(
                {"kind": "plan", "root": {"type": "loop", "children": []}}
            )

    def test_invoke_requires_service_id(self):
        with pytest.raises(ser.SerializationError):
            ser.plan_from_dict({"kind": "plan", "root": {"type": "invoke"}})


class TestTrustNetworkRoundTrip:
    def test_figure9(self):
        network = figure9_network()
        clone = ser.trust_network_from_dict(
            ser.trust_network_to_dict(network)
        )
        assert clone.agents == network.agents
        assert clone.known_scores() == network.known_scores()
        assert clone.default == network.default

    def test_dumps_loads(self):
        network = TrustNetwork(["a", "b"], {("a", "b"): 0.7})
        clone = ser.loads(ser.dumps(network))
        assert isinstance(clone, TrustNetwork)
        assert clone.trust("a", "b") == 0.7

    def test_unknown_payload_kind(self):
        with pytest.raises(ser.SerializationError):
            ser.loads('{"kind": "mystery"}')


class TestCoalitionSolution:
    def test_exact_solution_includes_stable_universe(self):
        from repro.coalitions import solve_exact

        solution = solve_exact(figure9_network(), op="avg")
        payload = ser.coalition_solution_to_dict(solution)
        assert payload["kind"] == "coalition-solution"
        assert payload["method"] == "exact"
        assert payload["found"] is True
        assert payload["stable_partitions"] >= 1
        assert all(
            group == sorted(group) for group in payload["partition"]
        )

    def test_heuristic_solution_omits_stable_universe(self):
        from repro.coalitions import solve_engine

        solution = solve_engine(figure9_network(), op="avg", seed=3)
        payload = ser.coalition_solution_to_dict(solution)
        assert payload["method"] == "engine"
        assert "stable_partitions" not in payload
        assert payload["partitions_examined"] > 0

    def test_dumps_dispatches(self):
        import json

        from repro.coalitions import solve_exact

        solution = solve_exact(figure9_network(), op="avg")
        payload = json.loads(ser.dumps(solution))
        assert payload["kind"] == "coalition-solution"
