"""docs/tutorial.md is executable documentation — run every snippet."""

import pathlib
import re

TUTORIAL = (
    pathlib.Path(__file__).resolve().parents[1] / "docs" / "tutorial.md"
)


def test_tutorial_snippets_run_in_order(capsys):
    text = TUTORIAL.read_text()
    snippets = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(snippets) >= 8, "tutorial lost its code"
    namespace: dict = {}
    for index, snippet in enumerate(snippets):
        try:
            exec(snippet, namespace)  # noqa: S102 - docs under test
        except Exception as exc:  # pragma: no cover - diagnostic
            raise AssertionError(
                f"tutorial snippet {index} failed: {exc!r}\n{snippet}"
            ) from exc

    # the walkthrough's promised endings actually happened
    assert namespace["negotiated"].sla.providers == ("Acme",)
    run_report = namespace["run_report"]
    assert run_report.rebindings >= 1
    assert not run_report.gave_up
