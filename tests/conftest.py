"""Shared fixtures: semiring instances, paper constraints, trust networks."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Polynomial,
    TableConstraint,
    integer_variable,
    polynomial_constraint,
    variable,
)
from repro.semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)

# ----------------------------------------------------------------------
# Semirings
# ----------------------------------------------------------------------


@pytest.fixture
def boolean():
    return BooleanSemiring()


@pytest.fixture
def fuzzy():
    return FuzzySemiring()


@pytest.fixture
def probabilistic():
    return ProbabilisticSemiring()


@pytest.fixture
def weighted():
    return WeightedSemiring()


@pytest.fixture
def bounded():
    return BoundedWeightedSemiring(cap=10.0)


@pytest.fixture
def setbased():
    return SetSemiring({"read", "write", "exec"})


@pytest.fixture
def product(weighted, fuzzy):
    return ProductSemiring([weighted, fuzzy])


#: Every shipped instance, parameterizable.
ALL_SEMIRINGS = [
    BooleanSemiring(),
    FuzzySemiring(),
    ProbabilisticSemiring(),
    WeightedSemiring(),
    BoundedWeightedSemiring(cap=8.0),
    SetSemiring({"a", "b", "c"}),
    ProductSemiring([WeightedSemiring(), FuzzySemiring()]),
]


@pytest.fixture(params=ALL_SEMIRINGS, ids=lambda s: s.name)
def any_semiring(request):
    return request.param


TOTAL_SEMIRINGS = [s for s in ALL_SEMIRINGS if s.is_total_order()]


@pytest.fixture(params=TOTAL_SEMIRINGS, ids=lambda s: s.name)
def total_semiring(request):
    return request.param


# ----------------------------------------------------------------------
# The paper's Fig. 1 problem
# ----------------------------------------------------------------------


@pytest.fixture
def fig1(weighted):
    """Variables and constraints of the paper's Fig. 1 weighted SCSP."""
    x = variable("X", ["a", "b"])
    y = variable("Y", ["a", "b"])
    c1 = TableConstraint(weighted, [x], {("a",): 1, ("b",): 9}, name="c1")
    c2 = TableConstraint(
        weighted,
        [x, y],
        {("a", "a"): 5, ("a", "b"): 1, ("b", "a"): 2, ("b", "b"): 2},
        name="c2",
    )
    c3 = TableConstraint(weighted, [y], {("a",): 5, ("b",): 5}, name="c3")
    return {"x": x, "y": y, "c1": c1, "c2": c2, "c3": c3}


# ----------------------------------------------------------------------
# The paper's Fig. 7 polynomial policies
# ----------------------------------------------------------------------


@pytest.fixture
def fig7(weighted):
    """c1 = x+3, c2 = y+1, c3 = 2x, c4 = x+5 over x, y ∈ 0..20."""
    x = integer_variable("x", 20)
    y = integer_variable("y", 20)
    return {
        "x": x,
        "y": y,
        "c1": polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 1}, 3), name="c1"
        ),
        "c2": polynomial_constraint(
            weighted, [y], Polynomial.linear({"y": 1}, 1), name="c2"
        ),
        "c3": polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 2}), name="c3"
        ),
        "c4": polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 1}, 5), name="c4"
        ),
    }


@pytest.fixture
def sync_flags(weighted):
    """Synchronization constraints sp1/sp2 used in Examples 1–2."""
    sp1_var = variable("sp1", [0, 1])
    sp2_var = variable("sp2", [0, 1])
    inf = weighted.zero
    return {
        "sp1": TableConstraint(weighted, [sp1_var], {(1,): 0.0, (0,): inf}),
        "sp2": TableConstraint(weighted, [sp2_var], {(1,): 0.0, (0,): inf}),
    }
