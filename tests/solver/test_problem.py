"""SCSP definitions: Sol, blevel, α-consistency."""

import pytest

from repro.constraints import ConstantConstraint, FunctionConstraint, variable
from repro.solver import SCSP, ProblemError


class TestConstruction:
    def test_fig1_problem(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])
        assert len(problem.variables) == 2
        assert problem.con == ("X",)
        assert problem.semiring.name == "Weighted"

    def test_con_defaults_to_all_variables(self, fig1):
        problem = SCSP([fig1["c2"]])
        assert problem.con == ("X", "Y")

    def test_empty_constraints_rejected(self):
        with pytest.raises(ProblemError):
            SCSP([])

    def test_mixed_semirings_rejected(self, fuzzy, weighted):
        x = variable("x", [0])
        with pytest.raises(ProblemError, match="share one semiring"):
            SCSP(
                [
                    ConstantConstraint(fuzzy, 0.5),
                    FunctionConstraint(weighted, (x,), lambda v: 1.0),
                ]
            )

    def test_unknown_con_variable_rejected(self, fig1):
        with pytest.raises(ProblemError, match="unknown"):
            SCSP([fig1["c1"]], con=["Z"])

    def test_con_accepts_variable_objects(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"]], con=[fig1["x"]])
        assert problem.con == ("X",)


class TestPaperSemantics:
    def test_solution_matches_paper(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])
        solution = problem.solution().materialize()
        assert dict(solution.items()) == {("a",): 7, ("b",): 16}

    def test_blevel_is_seven(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])
        assert problem.blevel() == 7.0

    def test_alpha_consistency(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])
        assert problem.is_alpha_consistent(7.0)
        assert not problem.is_alpha_consistent(6.0)

    def test_consistency(self, fig1, weighted):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]])
        assert problem.is_consistent()
        impossible = ConstantConstraint(weighted, weighted.zero)
        assert not SCSP([impossible]).is_consistent()

    def test_evaluate_complete_assignment(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]])
        assert problem.evaluate({"X": "a", "Y": "a"}) == 11.0
        assert problem.evaluate({"X": "b", "Y": "b"}) == 16.0

    def test_constraints_on(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]])
        assert len(problem.constraints_on("X")) == 2
        assert len(problem.constraints_on("Y")) == 2
