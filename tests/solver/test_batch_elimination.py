"""Batched bucket elimination and the materialized-bucket memo.

``solve_elimination_batch`` over B topology-sharing problems must be
bit-identical, member by member, to B independent ``solve_elimination``
calls — blevel, frontier, optima and the shared work counters.  The
:class:`BucketCache` must answer unchanged buckets from the memo after
a re-solve (``buckets_reused`` > 0, same result), and after a
:class:`FactoredStore` delta only the buckets downstream of the changed
factor may recompute.
"""

import random

import pytest

from repro.constraints import FactoredStore, TableConstraint, variable
from repro.semirings import SetSemiring, WeightedSemiring
from repro.solver import (
    SCSP,
    BucketCache,
    ProblemError,
    clear_bucket_cache,
    eliminate_batch,
    shared_bucket_cache,
    solve_elimination,
    solve_elimination_batch,
)

from .test_kernels_equivalence import (
    LOWERABLE,
    _random_table,
    assert_identical,
    random_problem,
)


def batch_problems(semiring, structure_seed, batch):
    """B problems sharing one topology with independently random tables."""
    template = random_problem(semiring, structure_seed)
    problems = []
    for member in range(batch):
        rng = random.Random(1000 * structure_seed + member + 17)
        constraints = [
            _random_table(semiring, list(c.scope), rng)
            for c in template.constraints
        ]
        problems.append(
            SCSP(constraints, con=template.con, name=f"member-{member}")
        )
    return problems


@pytest.mark.parametrize("semiring", LOWERABLE, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("batch", (1, 3))
def test_batch_matches_independent_solves(semiring, seed, batch):
    problems = batch_problems(semiring, seed, batch)
    results = solve_elimination_batch(problems)
    assert len(results) == batch
    for problem, batched in zip(problems, results):
        single = solve_elimination(problem, backend="dense")
        assert_identical(single, batched)
        assert batched.stats.buckets_processed == (
            single.stats.buckets_processed
        )
        # Dict-path cross-check: still exact, per the kernel contract.
        assert_identical(solve_elimination(problem, backend="dict"), batched)


def test_shared_constraint_objects_broadcast(weighted):
    # One shared "offer" plus per-member "requirements" — the market
    # shape the scheduler batches.  Sharing must not perturb results.
    x = variable("x", (0, 1, 2))
    y = variable("y", (0, 1))
    offer = TableConstraint(
        weighted, [x, y], {(i, j): float(i + j) for i in range(3)
                           for j in range(2)}
    )
    problems = []
    for member in range(4):
        requirement = TableConstraint(
            weighted, [x], {(i,): float((i * member) % 3) for i in range(3)}
        )
        problems.append(SCSP([offer, requirement], con=["x"]))
    for problem, batched in zip(problems, solve_elimination_batch(problems)):
        assert_identical(solve_elimination(problem, backend="dense"), batched)


class TestBatchValidation:
    def test_empty_batch_refused(self):
        with pytest.raises(ProblemError, match="at least one problem"):
            eliminate_batch([])

    def test_mixed_semirings_refused(self, weighted, fuzzy):
        x = variable("x", (0, 1))
        a = SCSP([TableConstraint(weighted, [x], {(0,): 1.0})])
        b = SCSP([TableConstraint(fuzzy, [x], {(0,): 0.5})])
        with pytest.raises(ProblemError, match="share one semiring"):
            eliminate_batch([a, b])

    def test_mixed_scopes_refused(self, weighted):
        x = variable("x", (0, 1))
        y = variable("y", (0, 1))
        a = SCSP([TableConstraint(weighted, [x], {(0,): 1.0})])
        b = SCSP([TableConstraint(weighted, [y], {(0,): 1.0})])
        with pytest.raises(ProblemError, match="scopes differ"):
            eliminate_batch([a, b])

    def test_mixed_con_refused(self, weighted):
        x = variable("x", (0, 1))
        y = variable("y", (0, 1))
        a = SCSP([TableConstraint(weighted, [x, y], {})], con=["x"])
        b = SCSP([TableConstraint(weighted, [x, y], {})], con=["y"])
        with pytest.raises(ProblemError, match="con"):
            eliminate_batch([a, b])

    def test_non_lowerable_semiring_refused(self):
        semiring = SetSemiring(frozenset({"r", "w"}))
        x = variable("x", (0, 1))
        c = TableConstraint(semiring, [x], {(0,): frozenset({"r"})})
        with pytest.raises(ProblemError, match="lowerable semiring"):
            eliminate_batch([SCSP([c])])


@pytest.mark.parametrize("backend", ("dict", "dense"))
@pytest.mark.parametrize("semiring", LOWERABLE, ids=lambda s: s.name)
def test_bucket_cache_reuse_is_exact(semiring, backend):
    problem = random_problem(semiring, 3)
    cache = BucketCache()
    cold = solve_elimination(problem, backend=backend, bucket_cache=cache)
    assert cold.stats.buckets_reused == 0
    warm = solve_elimination(problem, backend=backend, bucket_cache=cache)
    assert_identical(cold, warm)
    # Every bucket is answered from the memo on the identical re-solve.
    assert warm.stats.buckets_reused == warm.stats.buckets_processed > 0


def test_bucket_cache_partial_reuse_after_delta(weighted):
    # A chain x0-x1-x2-x3: changing the tail constraint must leave the
    # head buckets reusable.
    variables = [variable(f"x{i}", (0, 1)) for i in range(4)]
    chain = [
        TableConstraint(
            weighted,
            [variables[i], variables[i + 1]],
            {(a, b): float(a + 2 * b + i) for a in (0, 1) for b in (0, 1)},
        )
        for i in range(3)
    ]
    cache = BucketCache()
    base = SCSP(chain, con=["x3"])
    cold = solve_elimination(base, bucket_cache=cache)
    assert cold.stats.buckets_reused == 0
    tail = TableConstraint(
        weighted,
        [variables[2], variables[3]],
        {(a, b): float(5 * a + b) for a in (0, 1) for b in (0, 1)},
    )
    changed = SCSP(chain[:2] + [tail], con=["x3"])
    warm = solve_elimination(changed, bucket_cache=cache)
    # Head-of-chain buckets hit the memo; the bucket that consumes the
    # changed tail (and everything downstream of it) recomputes.
    assert 0 < warm.stats.buckets_reused < warm.stats.buckets_processed
    assert_identical(solve_elimination(changed), warm)


def test_store_deltas_reuse_shared_bucket_cache(weighted):
    clear_bucket_cache()
    x = variable("x", range(0, 6))
    y = variable("y", range(0, 6))
    store = FactoredStore(weighted)
    store = store.tell(TableConstraint(
        weighted, [x], {(i,): float(i) for i in range(6)}
    ))
    store = store.tell(TableConstraint(
        weighted, [x, y],
        {(i, j): float(abs(i - j)) for i in range(6) for j in range(6)},
    ))
    first = store.consistency()
    baseline = len(shared_bucket_cache())
    assert baseline > 0
    # A tell touching only y leaves x-only buckets reusable; consistency
    # answers must track the delta exactly.
    grown = store.tell(TableConstraint(
        weighted, [y], {(j,): float(2 * j) for j in range(6)}
    ))
    assert grown.consistency() >= first  # weighted: costs only grow
    assert len(shared_bucket_cache()) > baseline
    stats = shared_bucket_cache().stats()
    assert stats["hits"] > 0
    clear_bucket_cache()


def test_bucket_cache_does_not_change_uncached_results(weighted):
    problem = random_problem(weighted, 7)
    plain = solve_elimination(problem)
    cached = solve_elimination(problem, bucket_cache=BucketCache())
    assert_identical(plain, cached)
    assert plain.stats.buckets_processed == cached.stats.buckets_processed
