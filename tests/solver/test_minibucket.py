"""Mini-bucket elimination: bound soundness and tightening."""

import itertools
import random

import pytest

from repro.constraints import TableConstraint, variable
from repro.semirings import (
    FuzzySemiring,
    ProbabilisticSemiring,
    WeightedSemiring,
)
from repro.solver import SCSP, ProblemError, solve_exhaustive
from repro.solver.minibucket import minibucket_bound, screening_test


def random_problem(n_vars, domain, density, seed, semiring):
    rng = random.Random(seed)
    variables = [variable(f"v{i}", range(domain)) for i in range(n_vars)]

    def level():
        if isinstance(semiring, WeightedSemiring):
            return float(rng.randint(0, 9))
        return rng.choice((0.1, 0.3, 0.5, 0.7, 0.9, 1.0))

    constraints = [
        TableConstraint(semiring, [v], {(d,): level() for d in v.domain})
        for v in variables
    ]
    for left, right in itertools.combinations(variables, 2):
        if rng.random() < density:
            constraints.append(
                TableConstraint(
                    semiring,
                    [left, right],
                    {
                        key: level()
                        for key in itertools.product(
                            left.domain, right.domain
                        )
                    },
                )
            )
    return SCSP(constraints)


SEMIRINGS = [FuzzySemiring(), WeightedSemiring(), ProbabilisticSemiring()]


class TestBoundSoundness:
    @pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_bound_never_below_blevel(self, semiring, seed):
        problem = random_problem(6, 3, 0.5, seed, semiring)
        exact = solve_exhaustive(problem).blevel
        for i_bound in (1, 2, 3):
            bound, _ = minibucket_bound(problem, i_bound)
            assert semiring.geq(bound, exact) or semiring.equiv(bound, exact)

    @pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
    def test_large_i_bound_is_exact(self, semiring):
        problem = random_problem(5, 3, 0.5, seed=11, semiring=semiring)
        exact = solve_exhaustive(problem).blevel
        bound, _ = minibucket_bound(problem, i_bound=10)
        assert semiring.equiv(bound, exact)

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_monotone_in_i_bound(self, seed):
        semiring = WeightedSemiring()
        problem = random_problem(7, 3, 0.5, seed + 50, semiring)
        bounds = [
            minibucket_bound(problem, i)[0] for i in (1, 2, 3, 4)
        ]
        # larger i_bound can only tighten: numerically non-decreasing
        # costs, i.e. semiring-non-increasing (closer to the blevel).
        for looser, tighter in zip(bounds, bounds[1:]):
            assert semiring.geq(looser, tighter)

    def test_invalid_i_bound(self):
        problem = random_problem(3, 2, 1.0, 1, FuzzySemiring())
        with pytest.raises(ProblemError):
            minibucket_bound(problem, 0)

    def test_work_capped_by_i_bound(self):
        semiring = WeightedSemiring()
        problem = random_problem(8, 3, 0.8, seed=3, semiring=semiring)
        _, stats_small = minibucket_bound(problem, 2)
        assert stats_small.largest_intermediate <= 3**2


class TestScreening:
    def test_never_rejects_satisfiable_levels(self):
        semiring = FuzzySemiring()
        for seed in range(5):
            problem = random_problem(5, 3, 0.6, seed, semiring)
            blevel = solve_exhaustive(problem).blevel
            # the true blevel is reachable: screening must say "possible"
            assert screening_test(problem, blevel, i_bound=2)

    def test_rejects_impossible_levels(self):
        semiring = FuzzySemiring()
        x = variable("x", [0, 1])
        c = TableConstraint(semiring, [x], {(0,): 0.3, (1,): 0.4})
        problem = SCSP([c])
        assert not screening_test(problem, 0.9, i_bound=3)

    def test_screening_is_only_necessary(self):
        """A screening pass can say 'possible' for an unreachable level —
        that is the price of the bound (documented, not a bug).

        Splitting the bucket of x decouples the two binary constraints:
        each picks its own favourite x, overestimating the joint optimum.
        """
        semiring = ProbabilisticSemiring()
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        z = variable("z", [0, 1])
        a = TableConstraint(
            semiring,
            [x, y],
            {(0, 0): 0.9, (0, 1): 0.3, (1, 0): 0.3, (1, 1): 0.3},
        )
        b = TableConstraint(
            semiring,
            [x, z],
            {(1, 0): 0.9, (0, 0): 0.3, (0, 1): 0.3, (1, 1): 0.3},
        )
        problem = SCSP([a, b])
        exact = solve_exhaustive(problem).blevel
        assert exact == pytest.approx(0.27)  # no x pleases both
        # eliminate x first with a 2-variable cap → the {x,y,z} bucket
        # must split and each half keeps its private best x
        bound, _ = minibucket_bound(problem, 2, ordering="given")
        assert bound == pytest.approx(0.81)
        # screening therefore optimistically passes 0.8…
        assert semiring.geq(bound, 0.8)
        # …while the exact solver would reject it
        assert not semiring.geq(exact, 0.8)
