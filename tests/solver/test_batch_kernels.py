"""Batched dense kernels vs per-instance paths: bit-identical results.

Hypothesis generates a shared constraint topology plus B independent
value tables per constraint; combine/project/hide through
:class:`BatchDenseFactor` must match both the per-instance dense path
and the dict path *exactly* for every batch member, across all four
lowered semirings and including the B=1 degenerate batch.  Stacking B
references to one factor object must store a broadcast view, and
``stack_factors``/``split_results`` must round-trip.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TableConstraint, variable
from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    WeightedSemiring,
)
from repro.solver import (
    BatchDenseFactor,
    DenseFactor,
    KernelError,
    lower_semiring,
    split_results,
    stack_factors,
)

LOWERABLE = (
    WeightedSemiring(),
    FuzzySemiring(),
    ProbabilisticSemiring(),
    BooleanSemiring(),
)

_X = variable("x", (0, 1))
_Y = variable("y", (0, 1, 2))
_Z = variable("z", (0, 1))

#: Scope pairs exercising disjoint, overlapping and identical supports,
#: including shuffled variable orders (alignment must be order-free).
SCOPE_PAIRS = (
    ((_X, _Y), (_Y, _Z)),
    ((_X,), (_Y, _Z)),
    ((_X, _Y), (_Y, _X)),
    ((_X, _Y, _Z), (_Z, _X)),
)


def _levels(semiring):
    if isinstance(semiring, WeightedSemiring):
        return st.sampled_from((0.0, 1.0, 2.0, 5.0, 9.0))
    if isinstance(semiring, BooleanSemiring):
        return st.booleans()
    return st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0))


@st.composite
def batched_tables(draw):
    """(semiring, scope pair, B table-pairs sharing those scopes)."""
    semiring = draw(st.sampled_from(LOWERABLE))
    scopes = draw(st.sampled_from(SCOPE_PAIRS))
    levels = _levels(semiring)
    batch = draw(st.integers(1, 4))
    instances = []
    for _ in range(batch):
        pair = []
        for scope in scopes:
            keys = list(itertools.product(*(v.domain for v in scope)))
            values = draw(
                st.lists(levels, min_size=len(keys), max_size=len(keys))
            )
            pair.append(
                TableConstraint(semiring, scope, dict(zip(keys, values)))
            )
        instances.append(tuple(pair))
    return semiring, scopes, instances


def _assignments(support, scopes):
    domains = {
        v.name: v.domain for scope in scopes for v in scope
    }
    names = sorted(support)
    for combo in itertools.product(*(domains[n] for n in names)):
        yield dict(zip(names, combo))


@settings(max_examples=60, deadline=None)
@given(batched_tables())
def test_batched_combine_matches_dict_and_dense(case):
    semiring, scopes, instances = case
    lowering = lower_semiring(semiring)
    lefts = stack_factors(
        [DenseFactor.from_constraint(a, lowering) for a, _ in instances]
    )
    rights = stack_factors(
        [DenseFactor.from_constraint(b, lowering) for _, b in instances]
    )
    batched = lefts.combine(rights)
    assert batched.batch == len(instances)
    for index, (a, b) in enumerate(instances):
        dense = DenseFactor.from_constraint(a, lowering).combine(
            DenseFactor.from_constraint(b, lowering)
        )
        reference = a.combine(b)
        member = batched.member(index)
        assert member.support == dense.support
        assert np.array_equal(member._aligned(dense.scope), dense.array)
        for assignment in _assignments(set(member.support), scopes):
            # == not approx: batched ops are the scalar IEEE-754 ops.
            assert member.value(assignment) == reference.value(assignment)


@settings(max_examples=60, deadline=None)
@given(batched_tables())
def test_batched_project_and_hide_match_per_instance(case):
    semiring, scopes, instances = case
    lowering = lower_semiring(semiring)
    batched = stack_factors(
        [DenseFactor.from_constraint(a, lowering) for a, _ in instances]
    )
    support = list(batched.support)
    keep = support[: max(1, len(support) - 1)]
    hidden = support[-1]
    projected = batched.project(keep)
    hidden_batch = batched.hide(hidden)
    for index, (a, _) in enumerate(instances):
        dense = DenseFactor.from_constraint(a, lowering)
        assert np.array_equal(
            projected.member(index)._aligned(dense.project(keep).scope),
            dense.project(keep).array,
        )
        assert np.array_equal(
            hidden_batch.member(index)._aligned(dense.hide(hidden).scope),
            dense.hide(hidden).array,
        )
        reference = a.project(keep)
        member = projected.member(index)
        for assignment in _assignments(set(keep), scopes):
            assert member.value(assignment) == reference.value(assignment)


@settings(max_examples=60, deadline=None)
@given(batched_tables())
def test_batched_consistency_matches_per_instance(case):
    semiring, scopes, instances = case
    lowering = lower_semiring(semiring)
    lefts = stack_factors(
        [DenseFactor.from_constraint(a, lowering) for a, _ in instances]
    )
    rights = stack_factors(
        [DenseFactor.from_constraint(b, lowering) for _, b in instances]
    )
    levels = lefts.combine(rights).consistency()
    assert len(levels) == len(instances)
    for level, (a, b) in zip(levels, instances):
        dense = DenseFactor.from_constraint(a, lowering).combine(
            DenseFactor.from_constraint(b, lowering)
        )
        assert level == dense.consistency()


@settings(max_examples=40, deadline=None)
@given(batched_tables())
def test_stack_split_roundtrip(case):
    semiring, _, instances = case
    lowering = lower_semiring(semiring)
    factors = [
        DenseFactor.from_constraint(a, lowering) for a, _ in instances
    ]
    back = split_results(stack_factors(factors))
    assert len(back) == len(factors)
    for original, member in zip(factors, back):
        assert member.support == original.support
        assert np.array_equal(
            member._aligned(original.scope), original.array
        )


class TestStackingUnits:
    def test_shared_object_stacks_as_broadcast_view(self, weighted):
        c = TableConstraint(weighted, [_X], {(0,): 1.0, (1,): 2.0})
        lowering = lower_semiring(weighted)
        factor = DenseFactor.from_constraint(c, lowering)
        batched = stack_factors([factor] * 5)
        # One slice backs all five members — no copies for shared offers.
        assert batched.array.shape[0] == 1
        assert batched.batch == 5
        assert batched.array.base is factor.array
        for index in range(5):
            assert np.array_equal(batched.member(index).array, factor.array)

    def test_singleton_batch_is_degenerate(self, weighted):
        c = TableConstraint(weighted, [_X], {(0,): 3.0, (1,): 1.0})
        lowering = lower_semiring(weighted)
        factor = DenseFactor.from_constraint(c, lowering)
        batched = stack_factors([factor])
        assert batched.batch == 1
        assert batched.consistency() == [factor.consistency()]

    def test_mixed_scopes_refused(self, weighted):
        lowering = lower_semiring(weighted)
        a = DenseFactor.from_constraint(
            TableConstraint(weighted, [_X], {(0,): 1.0}), lowering
        )
        b = DenseFactor.from_constraint(
            TableConstraint(weighted, [_Y], {(0,): 1.0}), lowering
        )
        with pytest.raises(KernelError, match="different scopes"):
            stack_factors([a, b])

    def test_mixed_lowerings_refused(self, weighted, fuzzy):
        a = DenseFactor.from_constraint(
            TableConstraint(weighted, [_X], {(0,): 1.0}),
            lower_semiring(weighted),
        )
        b = DenseFactor.from_constraint(
            TableConstraint(fuzzy, [_X], {(0,): 1.0}),
            lower_semiring(fuzzy),
        )
        with pytest.raises(KernelError, match="different semirings"):
            stack_factors([a, b])

    def test_empty_stack_refused(self):
        with pytest.raises(KernelError, match="at least one factor"):
            stack_factors([])

    def test_member_out_of_range(self, weighted):
        lowering = lower_semiring(weighted)
        factor = DenseFactor.from_constraint(
            TableConstraint(weighted, [_X], {(0,): 1.0}), lowering
        )
        batched = stack_factors([factor] * 2)
        with pytest.raises(KernelError, match="out of range"):
            batched.member(2)

    def test_mismatched_batch_sizes_refuse_combine(self, weighted):
        lowering = lower_semiring(weighted)
        f = DenseFactor.from_constraint(
            TableConstraint(weighted, [_X], {(0,): 1.0, (1,): 2.0}),
            lowering,
        )
        g = DenseFactor.from_constraint(
            TableConstraint(weighted, [_X], {(0,): 4.0, (1,): 5.0}),
            lowering,
        )
        two = stack_factors([f, g])
        three = stack_factors([f, g, f])
        with pytest.raises(KernelError, match="cannot combine batches"):
            two.combine(three)

    def test_batch_axis_validation(self, weighted):
        lowering = lower_semiring(weighted)
        array = np.zeros((2, 2))
        with pytest.raises(KernelError, match="batch axis"):
            BatchDenseFactor(lowering, (_X,), array, batch=3)
