"""Soft arc consistency: solution-preserving tightening."""

import pytest

from repro.constraints import TableConstraint, variable
from repro.solver import (
    SCSP,
    ProblemError,
    enforce_arc_consistency,
    prune_domains,
    solve_exhaustive,
)


@pytest.fixture
def fuzzy_chain(fuzzy):
    a = variable("a", [0, 1, 2])
    b = variable("b", [0, 1, 2])
    c = variable("c", [0, 1, 2])
    ca = TableConstraint(fuzzy, [a], {(0,): 0.3, (1,): 0.9, (2,): 0.0})
    cab = TableConstraint(
        fuzzy,
        [a, b],
        {(i, j): 1.0 if i <= j else 0.2 for i in range(3) for j in range(3)},
    )
    cbc = TableConstraint(
        fuzzy,
        [b, c],
        {(i, j): 0.8 if i == j else 0.4 for i in range(3) for j in range(3)},
    )
    return SCSP([ca, cab, cbc])


class TestArcConsistency:
    def test_preserves_blevel(self, fuzzy_chain, fuzzy):
        tightened, stats = enforce_arc_consistency(fuzzy_chain)
        assert fuzzy.equiv(tightened.blevel(), fuzzy_chain.blevel())
        assert stats.revisions > 0

    def test_preserves_solution_table(self, fuzzy_chain):
        tightened, _ = enforce_arc_consistency(fuzzy_chain)
        original = solve_exhaustive(fuzzy_chain)
        after = solve_exhaustive(tightened)
        assert original.blevel == after.blevel
        assert {tuple(sorted(d.items())) for d in original.optima[0]} == {
            tuple(sorted(d.items())) for d in after.optima[0]
        }

    def test_unary_levels_only_tighten(self, fuzzy_chain, fuzzy):
        tightened, _ = enforce_arc_consistency(fuzzy_chain)
        # every unary constraint of the result is ⊑ the implied original
        from repro.constraints import combine, constraint_leq

        combined_before = combine(
            list(fuzzy_chain.constraints), semiring=fuzzy
        )
        for constraint in tightened.constraints:
            if len(constraint.scope) == 1:
                name = constraint.scope[0].name
                implied = combined_before.project([name])
                assert constraint_leq(implied, constraint)

    def test_rejects_non_idempotent_semirings(self, weighted):
        x = variable("x", [0, 1])
        c = TableConstraint(weighted, [x], {(0,): 1.0, (1,): 2.0})
        with pytest.raises(ProblemError, match="idempotent"):
            enforce_arc_consistency(SCSP([c]))

    def test_boolean_arc_consistency(self, boolean):
        # classic crisp AC: x < y over 0..2 removes x=2 and y=0
        x = variable("x", [0, 1, 2])
        y = variable("y", [0, 1, 2])
        cxy = TableConstraint(
            boolean,
            [x, y],
            {(i, j): i < j for i in range(3) for j in range(3)},
        )
        problem = SCSP([cxy])
        tightened, stats = enforce_arc_consistency(problem)
        unary = {
            c.scope[0].name: c
            for c in tightened.constraints
            if len(c.scope) == 1
        }
        assert unary["x"].value({"x": 2}) is False
        assert unary["y"].value({"y": 0}) is False
        assert unary["x"].value({"x": 0}) is True
        assert stats.changes >= 2


class TestDomainPruning:
    def test_prunes_zero_values(self, fuzzy_chain):
        tightened, _ = enforce_arc_consistency(fuzzy_chain)
        pruned, removed = prune_domains(tightened)
        assert removed >= 1  # a=2 has unary level 0.0
        names = {v.name: v for v in pruned.variables}
        assert 2 not in names["a"].domain

    def test_pruning_preserves_blevel(self, fuzzy_chain, fuzzy):
        tightened, _ = enforce_arc_consistency(fuzzy_chain)
        pruned, _ = prune_domains(tightened)
        assert fuzzy.equiv(pruned.blevel(), fuzzy_chain.blevel())

    def test_noop_without_zeros(self, fuzzy):
        x = variable("x", [0, 1])
        c = TableConstraint(fuzzy, [x], {(0,): 0.5, (1,): 0.9})
        problem = SCSP([c])
        pruned, removed = prune_domains(problem)
        assert removed == 0
        assert pruned is problem
