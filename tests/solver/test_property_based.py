"""Property-based differential testing of the solver backends.

Hypothesis generates arbitrary small SCSPs; every exact backend must
agree on the blevel and on the optimal con-assignments, and derived
quantities (blevel vs solution table, consistency of SCSP.blevel with
the backends) must stay coherent.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TableConstraint, variable
from repro.semirings import FuzzySemiring, WeightedSemiring
from repro.solver import (
    SCSP,
    solve_branch_bound,
    solve_elimination,
    solve_exhaustive,
)

FUZZY = FuzzySemiring()
WEIGHTED = WeightedSemiring()

_VARS = [variable(f"v{i}", (0, 1, 2)) for i in range(3)]

fuzzy_levels = st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0))
weights = st.sampled_from((0.0, 1.0, 2.0, 5.0, 9.0))


def problems(semiring, levels):
    """Strategy producing SCSPs with 1–4 unary/binary constraints."""
    scopes = st.sampled_from(
        [(_VARS[0],), (_VARS[1],), (_VARS[2],)]
        + [
            (a, b)
            for a, b in itertools.combinations(_VARS, 2)
        ]
    )

    @st.composite
    def build(draw):
        n = draw(st.integers(1, 4))
        constraints = []
        for _ in range(n):
            scope = draw(scopes)
            keys = list(itertools.product(*[v.domain for v in scope]))
            values = draw(
                st.lists(levels, min_size=len(keys), max_size=len(keys))
            )
            constraints.append(
                TableConstraint(semiring, scope, dict(zip(keys, values)))
            )
        used = sorted({name for c in constraints for name in c.support})
        k = draw(st.integers(1, len(used)))
        return SCSP(constraints, con=used[:k])

    return build()


@settings(max_examples=40, deadline=None)
@given(problems(FUZZY, fuzzy_levels))
def test_fuzzy_backends_agree(problem):
    reference = solve_exhaustive(problem)
    bnb = solve_branch_bound(problem)
    elim = solve_elimination(problem)
    assert FUZZY.equiv(reference.blevel, bnb.blevel)
    assert FUZZY.equiv(reference.blevel, elim.blevel)
    ref = {tuple(sorted(d.items())) for d in reference.optima[0]}
    assert {tuple(sorted(d.items())) for d in elim.optima[0]} == ref
    bnb_set = {tuple(sorted(d.items())) for d in bnb.optima[0]}
    if reference.is_consistent:
        assert bnb_set and bnb_set <= ref


@settings(max_examples=40, deadline=None)
@given(problems(WEIGHTED, weights))
def test_weighted_backends_agree(problem):
    reference = solve_exhaustive(problem)
    bnb = solve_branch_bound(problem)
    elim = solve_elimination(problem)
    assert reference.blevel == bnb.blevel == elim.blevel


@settings(max_examples=40, deadline=None)
@given(problems(FUZZY, fuzzy_levels))
def test_blevel_equals_solution_consistency(problem):
    # blevel(P) = Sol(P) ⇓∅ — the paper's definition, both routes
    assert FUZZY.equiv(problem.blevel(), problem.solution().consistency())


@settings(max_examples=40, deadline=None)
@given(problems(WEIGHTED, weights))
def test_blevel_reachable_by_some_assignment(problem):
    from repro.constraints import iter_assignments

    blevel = problem.blevel()
    achieved = [
        problem.evaluate(a) for a in iter_assignments(problem.variables)
    ]
    # for total orders the blevel is attained exactly
    assert blevel in achieved


@settings(max_examples=40, deadline=None)
@given(problems(FUZZY, fuzzy_levels))
def test_minibucket_dominates_blevel(problem):
    from repro.solver import minibucket_bound

    exact = problem.blevel()
    for i_bound in (1, 2):
        bound, _ = minibucket_bound(problem, i_bound)
        assert FUZZY.geq(bound, exact) or FUZZY.equiv(bound, exact)
