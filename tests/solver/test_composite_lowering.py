"""Composite semirings through the dense kernels: bit-identical results.

PR 9's compositional lowering maps Product/Lexicographic composites onto
nested NumPy structured dtypes (one float64/bool plane per leaf
component), so multicriteria problems ride the same vectorized sweeps as
their bases.  These tests are the acceptance criterion: randomized
composite SCSPs — pairs *and* nested composites over all four lowered
bases — must solve bit-identically on the dict and dense paths, through
single-problem elimination, branch & bound (Lex: the total order
``solve("auto")`` routes to it), stacked batched elimination, and warm
:class:`~repro.solver.elimination.BucketCache` re-solves.  Composites
with an unlowerable component must fall back silently on ``auto`` and
tally the ``lowering-fallbacks`` stats row (the observability satellite).
"""

import itertools
import random

import pytest

from repro.constraints import TableConstraint, variable
from repro.semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    LexicographicSemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)
from repro.solver import (
    SCSP,
    BucketCache,
    ProblemError,
    lower_semiring,
    lowering_fallback_stats,
    solve,
    solve_branch_bound,
    solve_elimination,
    solve_elimination_batch,
)

from .test_kernels_equivalence import assert_identical

WEIGHTED = WeightedSemiring()
FUZZY = FuzzySemiring()
PROBABILISTIC = ProbabilisticSemiring()
BOOLEAN = BooleanSemiring()

#: Pairs and nested composites over the four lowered bases.
PRODUCTS = (
    ProductSemiring([WEIGHTED, FUZZY]),
    ProductSemiring([FUZZY, PROBABILISTIC, BOOLEAN]),
    ProductSemiring(
        [WEIGHTED, ProductSemiring([FUZZY, BOOLEAN])]
    ),
    ProductSemiring(
        [LexicographicSemiring([FUZZY, PROBABILISTIC]), WEIGHTED]
    ),
)

LEXES = (
    LexicographicSemiring([FUZZY, PROBABILISTIC]),
    LexicographicSemiring([WEIGHTED, WEIGHTED]),
    LexicographicSemiring(
        [FUZZY, LexicographicSemiring([PROBABILISTIC, FUZZY])]
    ),
)

COMPOSITES = PRODUCTS + LEXES


def _random_value(semiring, rng):
    if isinstance(semiring, (ProductSemiring, LexicographicSemiring)):
        return tuple(
            _random_value(component, rng)
            for component in semiring.components
        )
    if isinstance(semiring, WeightedSemiring):
        return float(rng.randint(0, 12))
    if isinstance(semiring, BooleanSemiring):
        return rng.random() < 0.8
    # Fuzzy / Probabilistic carriers are [0, 1].
    return round(rng.random(), 6)


def _random_table(semiring, scope, rng):
    table = {}
    for key in itertools.product(*(v.domain for v in scope)):
        # ~25% of tuples stay at the default, exercising sparse storage
        # of structured fill values.
        if rng.random() < 0.75:
            table[key] = _random_value(semiring, rng)
    default = semiring.zero if rng.random() < 0.5 else semiring.one
    return TableConstraint(semiring, scope, table, default=default)


def random_composite_problem(semiring, seed, n_vars=5, max_arity=3, domain=3):
    """A connected random SCSP over a composite carrier (mirrors
    ``test_kernels_equivalence.random_problem``, with tuple values)."""
    rng = random.Random(seed)
    variables = [
        variable(f"x{i}", list(range(rng.randint(2, domain))))
        for i in range(n_vars)
    ]
    constraints = []
    for i in range(n_vars - 1):
        scope = [variables[i], variables[i + 1]]
        rng.shuffle(scope)
        constraints.append(_random_table(semiring, scope, rng))
    for _ in range(2):
        arity = rng.randint(1, max_arity)
        scope = rng.sample(variables, arity)
        constraints.append(_random_table(semiring, scope, rng))
    con = sorted(
        v.name for v in rng.sample(variables, rng.randint(1, n_vars))
    )
    return SCSP(constraints, con=con, name=f"composite-{seed}")


@pytest.mark.parametrize("semiring", COMPOSITES, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", range(4))
class TestCompositeDenseMatchesDict:
    def test_elimination(self, semiring, seed):
        problem = random_composite_problem(semiring, seed)
        dict_result = solve_elimination(problem, backend="dict")
        dense_result = solve_elimination(problem, backend="dense")
        assert_identical(dict_result, dense_result)
        assert (
            dict_result.stats.buckets_processed
            == dense_result.stats.buckets_processed
        )

    def test_auto_entrypoint(self, semiring, seed):
        # Product routes to elimination (partial order), Lex to branch &
        # bound (total) — both must agree with the forced dict path.
        problem = random_composite_problem(semiring, seed)
        assert_identical(
            solve(problem, backend="auto"),
            solve(problem, backend="dict"),
        )


@pytest.mark.parametrize(
    "semiring", LEXES, ids=lambda s: s.name
)
@pytest.mark.parametrize("seed", range(4))
class TestLexBranchBound:
    def test_branch_bound_dense_matches_dict(self, semiring, seed):
        problem = random_composite_problem(semiring, seed)
        dict_result = solve_branch_bound(problem, backend="dict")
        dense_result = solve_branch_bound(problem, backend="dense")
        assert_identical(dict_result, dense_result)
        assert (
            dict_result.stats.nodes_expanded
            == dense_result.stats.nodes_expanded
        )
        assert dict_result.stats.prunes == dense_result.stats.prunes

    def test_auto_routes_to_branch_bound(self, semiring, seed):
        problem = random_composite_problem(semiring, seed)
        result = solve(problem, method="auto", backend="auto")
        assert result.method == "branch-bound"
        assert_identical(
            result, solve_branch_bound(problem, backend="dict")
        )
        # Cross-method, only the *leading* criterion is guaranteed: the
        # first component of lex-``⊕`` is the base ``⊕``, so elimination
        # computes its true optimum — but pushing ``⊕`` inside ``×`` is
        # exactly the tie-collapse distributivity failure pinned in
        # tests/semirings/test_composite_laws.py, so trailing tie-break
        # components may differ.  Branch & bound (enumeration + the
        # absorptive pruning bound) is the exact method for Lex, which
        # is why ``auto`` routes there.
        leading = semiring.components[0]
        assert leading.equiv(
            result.blevel[0],
            solve_elimination(problem, backend="dict").blevel[0],
        )


# ----------------------------------------------------------------------
# Batched sweeps and warm bucket caches over composite carriers
# ----------------------------------------------------------------------


def _chain_problems(semiring, sessions, n_vars=4, domain=3, tweak=0):
    """B topology-sharing chain problems with per-session tables."""
    variables = [
        variable(f"r{i}", list(range(domain))) for i in range(n_vars)
    ]
    problems = []
    for session in range(sessions):
        rng = random.Random(session * 1009 + tweak)
        constraints = [
            _random_table(
                semiring, [variables[i], variables[i + 1]], rng
            )
            for i in range(n_vars - 1)
        ]
        problems.append(
            SCSP(constraints, con=["r0"], name=f"chain-{session}")
        )
    return problems


@pytest.mark.parametrize(
    "semiring",
    (PRODUCTS[0], PRODUCTS[2], LEXES[0], LEXES[2]),
    ids=lambda s: s.name,
)
class TestCompositeBatchAndCache:
    def test_batched_matches_sequential(self, semiring):
        problems = _chain_problems(semiring, sessions=5)
        batched = solve_elimination_batch(problems, backend="dense")
        assert len(batched) == len(problems)
        for problem, stacked in zip(problems, batched):
            assert_identical(
                solve_elimination(problem, backend="dict"), stacked
            )

    def test_warm_bucket_cache_reuses_and_matches(self, semiring):
        base = _chain_problems(semiring, sessions=1, tweak=0)[0]
        delta_constraints = list(base.constraints)
        rng = random.Random(99)
        delta_constraints[-1] = _random_table(
            semiring, list(delta_constraints[-1].scope), rng
        )
        delta = SCSP(delta_constraints, con=["r0"], name="chain-delta")

        warm_cache = BucketCache()
        solve_elimination(base, bucket_cache=warm_cache)
        cold = solve_elimination(delta, bucket_cache=BucketCache())
        warm = solve_elimination(delta, bucket_cache=warm_cache)
        assert_identical(cold, warm)
        assert_identical(solve_elimination(delta, backend="dict"), warm)
        assert warm.stats.buckets_reused > 0


# ----------------------------------------------------------------------
# Unlowerable composites: silent fallback, loud refusal, tallied stats
# ----------------------------------------------------------------------


class TestCompositeFallback:
    def _unlowerable_problem(self):
        semiring = ProductSemiring(
            [FUZZY, SetSemiring(frozenset({"r", "w"}))]
        )
        x = variable("x", [0, 1])
        constraint = TableConstraint(
            semiring,
            [x],
            {
                (0,): (0.5, frozenset({"r"})),
                (1,): (0.9, frozenset({"w"})),
            },
        )
        return semiring, SCSP([constraint])

    def test_bounded_component_does_not_lower(self):
        composite = ProductSemiring(
            [WEIGHTED, BoundedWeightedSemiring(8.0)]
        )
        assert lower_semiring(composite) is None

    def test_auto_falls_back_and_counts(self):
        semiring, problem = self._unlowerable_problem()
        before = {
            row["semiring"]: row["fallbacks"]
            for row in lowering_fallback_stats()
        }
        result = solve_elimination(problem, backend="auto")
        assert result.blevel == (0.9, frozenset({"r", "w"}))
        after = {
            row["semiring"]: row["fallbacks"]
            for row in lowering_fallback_stats()
        }
        # One solve may take the fallback in more than one internal
        # phase; the row must exist and strictly grow.
        assert after[semiring.name] > before.get(semiring.name, 0)

    def test_fallback_rows_surface_in_cache_stats(self):
        _, problem = self._unlowerable_problem()
        solve_elimination(problem, backend="auto")
        from repro.caching import cache_stats

        stats = cache_stats()
        assert "lowering-fallbacks" in stats
        names = {row["semiring"] for row in stats["lowering-fallbacks"]}
        assert "Product[Fuzzy, SetBased]" in names

    def test_dense_refuses_loudly(self):
        _, problem = self._unlowerable_problem()
        with pytest.raises(ProblemError, match="does not lower"):
            solve_elimination(problem, backend="dense")
