"""Dense ndarray kernels vs the dict path: bit-identical results.

Randomized SCSPs across all four lowerable semirings, solved with both
backends through bucket elimination and branch & bound — blevel,
frontier and optima must match exactly (not approximately: min/max
select operands and float64 add/multiply are the same IEEE-754 ops
CPython floats use).  Non-lowerable semirings must route to the dict
path on ``auto`` and refuse ``dense`` loudly.
"""

import random

import pytest

from repro.constraints import TableConstraint, variable
from repro.semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)
from repro.solver import (
    SCSP,
    DenseFactor,
    KernelError,
    ProblemError,
    lower_semiring,
    resolve_lowering,
    solve,
    solve_branch_bound,
    solve_elimination,
)

LOWERABLE = (
    WeightedSemiring(),
    FuzzySemiring(),
    ProbabilisticSemiring(),
    BooleanSemiring(),
)


def _random_value(semiring, rng):
    if isinstance(semiring, WeightedSemiring):
        return float(rng.randint(0, 12))
    if isinstance(semiring, BooleanSemiring):
        return rng.random() < 0.8
    # Fuzzy / Probabilistic carriers are [0, 1].
    return round(rng.random(), 6)


def random_problem(semiring, seed, n_vars=5, max_arity=3, domain=3):
    """A connected random SCSP with mixed arities and sparse defaults."""
    rng = random.Random(seed)
    variables = [
        variable(f"x{i}", list(range(rng.randint(2, domain))))
        for i in range(n_vars)
    ]
    constraints = []
    # A chain backbone keeps the constraint graph connected; extra random
    # constraints add shared variables in shuffled scope orders.
    for i in range(n_vars - 1):
        scope = [variables[i], variables[i + 1]]
        rng.shuffle(scope)
        constraints.append(_random_table(semiring, scope, rng))
    for _ in range(2):
        arity = rng.randint(1, max_arity)
        scope = rng.sample(variables, arity)
        constraints.append(_random_table(semiring, scope, rng))
    con = sorted(
        v.name for v in rng.sample(variables, rng.randint(1, n_vars))
    )
    return SCSP(constraints, con=con, name=f"rand-{seed}")


def _random_table(semiring, scope, rng):
    import itertools

    table = {}
    for key in itertools.product(*(v.domain for v in scope)):
        # ~25% of tuples stay at the default, exercising sparse storage.
        if rng.random() < 0.75:
            table[key] = _random_value(semiring, rng)
    default = semiring.zero if rng.random() < 0.5 else semiring.one
    return TableConstraint(semiring, scope, table, default=default)


def assert_identical(left, right):
    assert left.blevel == right.blevel
    assert left.frontier == right.frontier
    assert left.optima == right.optima


@pytest.mark.parametrize(
    "semiring", LOWERABLE, ids=lambda s: s.name
)
@pytest.mark.parametrize("seed", range(6))
class TestDenseMatchesDict:
    def test_elimination(self, semiring, seed):
        problem = random_problem(semiring, seed)
        dict_result = solve_elimination(problem, backend="dict")
        dense_result = solve_elimination(problem, backend="dense")
        assert_identical(dict_result, dense_result)
        # The bucket schedule is shared, so the work counters agree too.
        assert (
            dict_result.stats.buckets_processed
            == dense_result.stats.buckets_processed
        )
        assert (
            dict_result.stats.largest_intermediate
            == dense_result.stats.largest_intermediate
        )

    def test_branch_bound(self, semiring, seed):
        problem = random_problem(semiring, seed)
        dict_result = solve_branch_bound(problem, backend="dict")
        dense_result = solve_branch_bound(problem, backend="dense")
        assert_identical(dict_result, dense_result)
        # Dense lookahead precomputes the same bounds the dict loop
        # recomputes, so the search trees are node-for-node identical.
        assert dict_result.stats.nodes_expanded == (
            dense_result.stats.nodes_expanded
        )
        assert dict_result.stats.prunes == dense_result.stats.prunes

    def test_methods_agree(self, semiring, seed):
        problem = random_problem(semiring, seed)
        elim = solve_elimination(problem, backend="dense")
        bb = solve_branch_bound(problem, backend="dense")
        # The two methods associate ``×`` differently, so Probabilistic
        # float products may differ by an ulp — equiv, not ==, is the
        # cross-method contract (bit identity only holds per method).
        assert semiring.equiv(elim.blevel, bb.blevel)

    def test_solve_entrypoint(self, semiring, seed):
        problem = random_problem(semiring, seed)
        auto = solve(problem, backend="auto")
        forced = solve(problem, backend="dict")
        assert_identical(auto, forced)


class TestFallbackRouting:
    def _setbased_problem(self):
        semiring = SetSemiring(frozenset({"r", "w", "x"}))
        x = variable("x", [0, 1])
        c = TableConstraint(
            semiring,
            [x],
            {(0,): frozenset({"r"}), (1,): frozenset({"w"})},
        )
        return SCSP([c])

    def test_setbased_lowering_is_none(self):
        semiring = SetSemiring(frozenset({"r", "w"}))
        assert lower_semiring(semiring) is None
        assert resolve_lowering(semiring, "auto") is None

    def test_setbased_auto_routes_to_dict(self):
        result = solve(self._setbased_problem(), backend="auto")
        assert result.method == "elimination"
        assert result.blevel == frozenset({"r", "w"})

    def test_setbased_dense_raises(self):
        with pytest.raises(ProblemError, match="does not lower"):
            solve_elimination(self._setbased_problem(), backend="dense")

    def test_product_of_lowerables_lowers(self, fuzzy, weighted):
        # PR 9: composites lower compositionally (structured dtypes).
        product = ProductSemiring([fuzzy, weighted])
        lowering = lower_semiring(product)
        assert lowering is not None
        assert lowering.dtype.names == ("f0", "f1")

    def test_product_with_unlowerable_component_does_not_lower(self, fuzzy):
        product = ProductSemiring(
            [fuzzy, SetSemiring(frozenset({"r", "w"}))]
        )
        assert lower_semiring(product) is None

    def test_bounded_weighted_does_not_lower(self):
        semiring = BoundedWeightedSemiring(10.0)
        assert lower_semiring(semiring) is None
        x = variable("x", [0, 1])
        c = TableConstraint(semiring, [x], {(0,): 2.0, (1,): 4.0})
        problem = SCSP([c])
        # auto silently keeps the dict path (saturating × is not a ufunc)
        result = solve_branch_bound(problem, backend="auto")
        assert result.blevel == 2.0
        with pytest.raises(ProblemError, match="does not lower"):
            solve_branch_bound(problem, backend="dense")

    def test_unknown_backend_rejected(self, weighted):
        with pytest.raises(KernelError, match="unknown solver backend"):
            resolve_lowering(weighted, "vectorised")


class TestDenseFactorUnits:
    def test_roundtrip_preserves_values(self, weighted):
        x = variable("x", ["a", "b"])
        y = variable("y", [0, 1, 2])
        c = TableConstraint(
            weighted, [x, y], {("a", 0): 1.0, ("b", 2): 4.0}, default=2.0
        )
        lowering = lower_semiring(weighted)
        factor = DenseFactor.from_constraint(c, lowering)
        back = factor.to_table()
        for key, value in c.items():
            assert back.value(dict(zip(("x", "y"), key))) == value

    def test_combine_aligns_shuffled_scopes(self, fuzzy):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1, 2])
        lowering = lower_semiring(fuzzy)
        c1 = TableConstraint(
            fuzzy,
            [x, y],
            {(a, b): 0.1 * (a + b + 1) for a in (0, 1) for b in (0, 1, 2)},
        )
        c2 = TableConstraint(
            fuzzy,
            [y, x],
            {(b, a): 0.2 * (b + 1) for a in (0, 1) for b in (0, 1, 2)},
        )
        dense = DenseFactor.from_constraint(c1, lowering).combine(
            DenseFactor.from_constraint(c2, lowering)
        )
        reference = c1.combine(c2)
        for a in (0, 1):
            for b in (0, 1, 2):
                assignment = {"x": a, "y": b}
                assert dense.value(assignment) == pytest.approx(
                    reference.value(assignment)
                )

    def test_memoized_conversion_is_reused(self, weighted):
        x = variable("x", [0, 1])
        c = TableConstraint(weighted, [x], {(0,): 1.0, (1,): 2.0})
        lowering = lower_semiring(weighted)
        first = DenseFactor.from_constraint(c, lowering)
        second = DenseFactor.from_constraint(c, lowering)
        assert first is second
