"""Variable-ordering heuristics."""

import pytest

from repro.constraints import TableConstraint, variable
from repro.solver import (
    ORDERINGS,
    given_order,
    max_degree_order,
    min_degree_order,
    min_domain_order,
    resolve_ordering,
)


@pytest.fixture
def star(fuzzy):
    """hub connected to three leaves; hub has the largest domain."""
    hub = variable("hub", range(4))
    leaves = [variable(f"leaf{i}", range(2)) for i in range(3)]
    constraints = [
        TableConstraint(
            fuzzy,
            [hub, leaf],
            {
                (h, l): 0.5
                for h in hub.domain
                for l in leaf.domain
            },
        )
        for leaf in leaves
    ]
    return [hub] + leaves, constraints


class TestOrderings:
    def test_given_order_is_identity(self, star):
        variables, constraints = star
        assert given_order(variables, constraints) == variables

    def test_min_domain_puts_leaves_first(self, star):
        variables, constraints = star
        ordered = min_domain_order(variables, constraints)
        assert ordered[-1].name == "hub"

    def test_min_degree_eliminates_leaves_first(self, star):
        variables, constraints = star
        ordered = min_degree_order(variables, constraints)
        # The hub (degree 3) cannot be eliminated before at least two
        # leaves have dropped its degree to a tie.
        assert ordered[0].name.startswith("leaf")
        assert ordered[1].name.startswith("leaf")

    def test_max_degree_branches_on_hub_first(self, star):
        variables, constraints = star
        ordered = max_degree_order(variables, constraints)
        assert ordered[0].name == "hub"

    def test_every_ordering_is_a_permutation(self, star):
        variables, constraints = star
        for name, ordering in ORDERINGS.items():
            ordered = ordering(variables, constraints)
            assert sorted(v.name for v in ordered) == sorted(
                v.name for v in variables
            ), name

    def test_orderings_deterministic(self, star):
        variables, constraints = star
        for ordering in ORDERINGS.values():
            assert ordering(variables, constraints) == ordering(
                variables, constraints
            )


class TestResolve:
    def test_resolve_by_name(self):
        assert resolve_ordering("min-degree") is min_degree_order

    def test_resolve_callable_passthrough(self):
        fn = lambda vs, cs: list(vs)  # noqa: E731
        assert resolve_ordering(fn) is fn

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="known:"):
            resolve_ordering("best-first-telepathy")
