"""The three solver backends, individually and against each other."""

import itertools
import random

import pytest

from repro.constraints import TableConstraint, variable
from repro.semirings import (
    FuzzySemiring,
    ProbabilisticSemiring,
    SetSemiring,
    WeightedSemiring,
)
from repro.solver import (
    SCSP,
    ProblemError,
    solve,
    solve_branch_bound,
    solve_elimination,
    solve_exhaustive,
)


@pytest.fixture
def fig1_problem(fig1):
    return SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])


class TestExhaustive:
    def test_fig1(self, fig1_problem):
        result = solve_exhaustive(fig1_problem)
        assert result.blevel == 7.0
        assert result.frontier == [7.0]
        assert result.optima == [[{"X": "a"}]]
        assert result.stats.leaves_evaluated == 4

    def test_partial_order_frontier(self, setbased):
        x = variable("x", [0, 1, 2])
        c = TableConstraint(
            setbased,
            [x],
            {
                (0,): frozenset({"read"}),
                (1,): frozenset({"write"}),
                (2,): frozenset(),
            },
        )
        result = solve_exhaustive(SCSP([c]))
        assert len(result.frontier) == 2
        assert result.blevel == frozenset({"read", "write"})  # lub


class TestBranchBound:
    def test_fig1(self, fig1_problem):
        result = solve_branch_bound(fig1_problem)
        assert result.blevel == 7.0
        assert result.optima == [[{"X": "a"}]]

    def test_rejects_partial_orders(self, setbased):
        x = variable("x", [0])
        c = TableConstraint(setbased, [x], {(0,): frozenset({"read"})})
        with pytest.raises(ProblemError, match="total order"):
            solve_branch_bound(SCSP([c]))

    def test_pruning_happens(self, weighted):
        # A chain of variables with one clearly best value each: B&B must
        # prune a substantial part of the leaf space.
        variables = [variable(f"v{i}", range(4)) for i in range(5)]
        constraints = [
            TableConstraint(
                weighted,
                [v],
                {(d,): 0.0 if d == 0 else 50.0 for d in range(4)},
            )
            for v in variables
        ]
        problem = SCSP(constraints)
        result = solve_branch_bound(problem)
        assert result.blevel == 0.0
        assert result.stats.leaves_evaluated < 4**5

    def test_lookahead_toggle_same_result(self, fig1_problem):
        with_la = solve_branch_bound(fig1_problem, lookahead=True)
        without_la = solve_branch_bound(fig1_problem, lookahead=False)
        assert with_la.blevel == without_la.blevel
        assert with_la.optima == without_la.optima

    def test_ordering_choices_same_result(self, fig1_problem):
        for ordering in ("given", "min-domain", "min-degree", "max-degree"):
            result = solve_branch_bound(fig1_problem, ordering=ordering)
            assert result.blevel == 7.0

    def test_inconsistent_problem(self, weighted):
        x = variable("x", [0, 1])
        c = TableConstraint(weighted, [x], {})  # all zero (∞)
        result = solve_branch_bound(SCSP([c]))
        assert result.blevel == weighted.zero
        assert result.optima == [[]]
        assert not result.is_consistent


class TestElimination:
    def test_fig1(self, fig1_problem):
        result = solve_elimination(fig1_problem)
        assert result.blevel == 7.0
        assert result.optima == [[{"X": "a"}]]
        assert result.stats.buckets_processed == 1  # only Y eliminated

    def test_partial_order_supported(self, setbased):
        x = variable("x", [0, 1])
        y = variable("y", [0, 1])
        cxy = TableConstraint(
            setbased,
            [x, y],
            {
                (0, 0): frozenset({"read"}),
                (0, 1): frozenset({"write"}),
                (1, 0): frozenset(),
                (1, 1): frozenset({"read", "write"}),
            },
        )
        result = solve_elimination(SCSP([cxy], con=["x"]))
        reference = solve_exhaustive(SCSP([cxy], con=["x"]))
        assert result.blevel == reference.blevel
        assert sorted(map(str, result.frontier)) == sorted(
            map(str, reference.frontier)
        )

    def test_intermediate_size_tracked(self, fig1_problem):
        result = solve_elimination(fig1_problem)
        assert result.stats.largest_intermediate >= 2


class TestAutoDispatch:
    def test_auto_picks_branch_bound_for_total_orders(self, fig1_problem):
        assert solve(fig1_problem).method == "branch-bound"

    def test_auto_picks_elimination_for_partial_orders(self, setbased):
        x = variable("x", [0])
        c = TableConstraint(setbased, [x], {(0,): frozenset({"read"})})
        assert solve(SCSP([c])).method == "elimination"

    def test_unknown_method_rejected(self, fig1_problem):
        with pytest.raises(ProblemError, match="unknown solve method"):
            solve(fig1_problem, method="quantum")


class TestCrossBackendAgreement:
    """Randomized differential testing: all backends must agree."""

    @pytest.mark.parametrize("seed", range(8))
    def test_total_order_agreement(self, seed):
        rng = random.Random(seed)
        semiring = rng.choice(
            [FuzzySemiring(), WeightedSemiring(), ProbabilisticSemiring()]
        )
        n = rng.randint(2, 4)
        variables = [
            variable(f"v{i}", range(rng.randint(2, 3))) for i in range(n)
        ]
        constraints = []
        for _ in range(rng.randint(2, 5)):
            scope = rng.sample(variables, rng.randint(1, 2))
            table = {}
            for key in itertools.product(*[v.domain for v in scope]):
                if isinstance(semiring, WeightedSemiring):
                    table[key] = float(rng.randint(0, 9))
                else:
                    table[key] = rng.choice([0.0, 0.25, 0.5, 0.75, 1.0])
            constraints.append(TableConstraint(semiring, scope, table))
        used = sorted({name for c in constraints for name in c.support})
        con = rng.sample(used, rng.randint(1, len(used)))
        problem = SCSP(constraints, con=con)

        reference = solve_exhaustive(problem)
        bnb = solve_branch_bound(problem)
        elim = solve_elimination(problem)

        assert semiring.equiv(reference.blevel, bnb.blevel)
        assert semiring.equiv(reference.blevel, elim.blevel)

        ref_optima = {
            tuple(sorted(d.items())) for d in reference.optima[0]
        }
        elim_optima = {tuple(sorted(d.items())) for d in elim.optima[0]}
        assert ref_optima == elim_optima
        bnb_optima = {tuple(sorted(d.items())) for d in bnb.optima[0]}
        if reference.is_consistent:
            assert bnb_optima and bnb_optima <= ref_optima

    @pytest.mark.parametrize("seed", range(4))
    def test_partial_order_agreement(self, seed):
        rng = random.Random(100 + seed)
        semiring = SetSemiring({"p", "q", "r"})
        subsets = [
            frozenset(),
            frozenset({"p"}),
            frozenset({"q"}),
            frozenset({"p", "q"}),
            frozenset({"p", "q", "r"}),
        ]
        variables = [variable(f"v{i}", range(2)) for i in range(3)]
        constraints = []
        for _ in range(3):
            scope = rng.sample(variables, rng.randint(1, 2))
            table = {
                key: rng.choice(subsets)
                for key in itertools.product(*[v.domain for v in scope])
            }
            constraints.append(TableConstraint(semiring, scope, table))
        used = sorted({name for c in constraints for name in c.support})
        problem = SCSP(constraints, con=used)
        reference = solve_exhaustive(problem)
        elim = solve_elimination(problem)
        assert reference.blevel == elim.blevel
        assert {frozenset(v) for v in reference.frontier} == {
            frozenset(v) for v in elim.frontier
        }
