"""The fingerprint-keyed solve cache and its broker integration."""

import pytest

from repro.constraints import TableConstraint, variable
from repro.semirings import FuzzySemiring, WeightedSemiring
from repro.soa.broker import Broker, ClientRequest
from repro.soa.qos import QoSDocument, QoSPolicy
from repro.soa.registry import ServiceRegistry
from repro.soa.service import ServiceDescription, ServiceInterface
from repro.solver import (
    SCSP,
    SolveCache,
    problem_fingerprint,
    solve,
)


def make_problem(weight=3.0, con=None, semiring=None):
    semiring = semiring or WeightedSemiring()
    x = variable("x", [0, 1])
    y = variable("y", [0, 1])
    c1 = TableConstraint(
        semiring, [x, y], {(0, 0): weight, (1, 1): 1.0}, default=5.0
    )
    c2 = TableConstraint(semiring, [y], {(0,): 2.0, (1,): 0.0})
    return SCSP([c1, c2], con=con)


class TestFingerprint:
    def test_stable_across_instances(self):
        a = problem_fingerprint(make_problem(), "branch-bound")
        b = problem_fingerprint(make_problem(), "branch-bound")
        assert a == b

    def test_constraint_order_irrelevant(self):
        semiring = WeightedSemiring()
        x = variable("x", [0, 1])
        c1 = TableConstraint(semiring, [x], {(0,): 1.0, (1,): 2.0})
        c2 = TableConstraint(semiring, [x], {(0,): 3.0, (1,): 4.0})
        assert problem_fingerprint(
            SCSP([c1, c2]), "elimination"
        ) == problem_fingerprint(SCSP([c2, c1]), "elimination")

    def test_table_change_changes_key(self):
        assert problem_fingerprint(
            make_problem(weight=3.0), "branch-bound"
        ) != problem_fingerprint(make_problem(weight=4.0), "branch-bound")

    def test_con_change_changes_key(self):
        assert problem_fingerprint(
            make_problem(con=["x"]), "branch-bound"
        ) != problem_fingerprint(make_problem(con=["x", "y"]), "branch-bound")

    def test_method_backend_options_change_key(self):
        problem = make_problem()
        base = problem_fingerprint(problem, "branch-bound", "auto", {})
        assert base != problem_fingerprint(problem, "elimination", "auto", {})
        assert base != problem_fingerprint(problem, "branch-bound", "dict", {})
        assert base != problem_fingerprint(
            problem, "branch-bound", "auto", {"lookahead": False}
        )

    def test_semiring_changes_key(self):
        x = variable("x", [0, 1])
        weighted = TableConstraint(
            WeightedSemiring(), [x], {(0,): 0.5, (1,): 1.0}
        )
        fuzzy = TableConstraint(FuzzySemiring(), [x], {(0,): 0.5, (1,): 1.0})
        assert problem_fingerprint(
            SCSP([weighted]), "branch-bound"
        ) != problem_fingerprint(SCSP([fuzzy]), "branch-bound")


class TestSolveCache:
    def test_hit_returns_equal_result(self):
        cache = SolveCache()
        first = solve(make_problem(), cache=cache)
        second = solve(make_problem(), cache=cache)
        assert second.blevel == first.blevel
        assert second.frontier == first.frontier
        assert second.optima == first.optima
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert len(cache) == 1

    def test_returned_results_are_isolated(self):
        cache = SolveCache()
        solve(make_problem(), cache=cache)
        warm = solve(make_problem(), cache=cache)
        warm.optima[0][0]["x"] = "corrupted"
        warm.frontier.append("junk")
        clean = solve(make_problem(), cache=cache)
        assert clean.optima[0][0]["x"] != "corrupted"
        assert "junk" not in clean.frontier

    def test_result_rebinds_to_callers_problem(self):
        cache = SolveCache()
        solve(make_problem(), cache=cache)
        mine = make_problem()
        assert solve(mine, cache=cache).problem is mine

    def test_lru_bound_evicts(self):
        cache = SolveCache(maxsize=2)
        for weight in (1.0, 2.0, 3.0):
            solve(make_problem(weight=weight), cache=cache)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_clear(self):
        cache = SolveCache()
        solve(make_problem(), cache=cache)
        cache.clear()
        assert len(cache) == 0

    def test_different_methods_do_not_collide(self):
        cache = SolveCache()
        bb = solve(make_problem(), method="branch-bound", cache=cache)
        elim = solve(make_problem(), method="elimination", cache=cache)
        assert cache.stats()["misses"] == 2
        assert bb.method == "branch-bound"
        assert elim.method == "elimination"


def _cost_registry():
    registry = ServiceRegistry()
    for provider, cost in (("P1", 5.0), ("P2", 3.0)):
        document = QoSDocument(
            service_name="compress",
            provider=provider,
            policies=(
                QoSPolicy(attribute="cost", variables={}, constant=cost),
            ),
        )
        registry.publish(
            ServiceDescription(
                service_id=f"svc-{provider}",
                name="compress",
                provider=provider,
                interface=ServiceInterface(operation="compress"),
                qos=document,
            )
        )
    return registry


class TestBrokerIntegration:
    def test_cache_on_by_default_and_warms_up(self):
        broker = Broker(_cost_registry())
        assert broker.solve_cache is not None
        request = ClientRequest(
            client="c", operation="compress", attribute="cost"
        )
        cold = broker.negotiate(request)
        misses = broker.solve_cache.stats()["misses"]
        assert misses > 0
        warm = broker.negotiate(request)
        stats = broker.solve_cache.stats()
        assert stats["hits"] > 0
        assert stats["misses"] == misses  # second run is all hits
        assert warm.success == cold.success
        assert warm.sla.providers == cold.sla.providers
        assert warm.sla.agreed_level == cold.sla.agreed_level

    def test_cache_can_be_disabled(self):
        broker = Broker(_cost_registry(), solve_cache=False)
        assert broker.solve_cache is None
        request = ClientRequest(
            client="c", operation="compress", attribute="cost"
        )
        assert broker.negotiate(request).success

    def test_backend_flag_plumbs_through(self):
        request = ClientRequest(
            client="c", operation="compress", attribute="cost"
        )
        outcomes = {
            backend: Broker(
                _cost_registry(), solver_backend=backend
            ).negotiate(request)
            for backend in ("auto", "dict", "dense")
        }
        levels = {
            outcome.sla.agreed_level for outcome in outcomes.values()
        }
        assert len(levels) == 1

    def test_invalid_backend_surfaces(self):
        broker = Broker(_cost_registry(), solver_backend="bogus")
        request = ClientRequest(
            client="c", operation="compress", attribute="cost"
        )
        with pytest.raises(Exception, match="unknown solver backend"):
            broker.negotiate(request)
