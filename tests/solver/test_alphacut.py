"""α-cuts: threshold slicing into crisp problems."""

import pytest

from repro.constraints import TableConstraint, variable
from repro.solver import (
    SCSP,
    ProblemError,
    alpha_cut,
    alpha_cut_problem,
    consistency_level_among,
    satisfiable_at,
)


@pytest.fixture
def fuzzy_problem(fuzzy):
    x = variable("x", [0, 1, 2])
    c = TableConstraint(fuzzy, [x], {(0,): 0.2, (1,): 0.6, (2,): 0.9})
    return SCSP([c]), c


class TestAlphaCut:
    def test_cut_keeps_tuples_at_or_above(self, fuzzy_problem):
        _, c = fuzzy_problem
        cut = alpha_cut(c, 0.6)
        assert cut({"x": 0}) is False
        assert cut({"x": 1}) is True
        assert cut({"x": 2}) is True

    def test_cut_at_zero_keeps_everything(self, fuzzy_problem, fuzzy):
        _, c = fuzzy_problem
        cut = alpha_cut(c, fuzzy.zero)
        assert all(value for _, value in cut.items())

    def test_cut_result_is_boolean(self, fuzzy_problem):
        _, c = fuzzy_problem
        assert alpha_cut(c, 0.5).semiring.name == "Classical"

    def test_weighted_cut_uses_inverted_order(self, weighted):
        x = variable("x", [0, 1])
        c = TableConstraint(weighted, [x], {(0,): 3.0, (1,): 8.0})
        cut = alpha_cut(c, 5.0)  # at least as good as cost 5
        assert cut({"x": 0}) is True
        assert cut({"x": 1}) is False

    def test_partial_order_rejected(self, setbased):
        x = variable("x", [0])
        c = TableConstraint(setbased, [x], {(0,): frozenset({"read"})})
        with pytest.raises(ProblemError, match="totally ordered"):
            alpha_cut(c, frozenset())


class TestCutProblem:
    def test_idempotent_semiring_cut_problem_exact(self, fuzzy):
        # With idempotent ×, per-constraint cuts are exact.
        x = variable("x", [0, 1])
        a = TableConstraint(fuzzy, [x], {(0,): 0.9, (1,): 0.4})
        b = TableConstraint(fuzzy, [x], {(0,): 0.7, (1,): 0.9})
        problem = SCSP([a, b])
        cut = alpha_cut_problem(problem, 0.7)
        assert cut.blevel() is True  # x=0 survives both cuts

    def test_non_idempotent_cut_problem_is_only_necessary(self, probabilistic):
        # 0.8 × 0.8 = 0.64 < 0.8: tuple-level cuts pass, combined fails.
        x = variable("x", [0])
        a = TableConstraint(probabilistic, [x], {(0,): 0.8})
        b = TableConstraint(probabilistic, [x], {(0,): 0.8})
        problem = SCSP([a, b])
        assert alpha_cut_problem(problem, 0.8).blevel() is True
        assert not satisfiable_at(problem, 0.8)  # exact check disagrees


class TestSatisfiability:
    def test_satisfiable_at_blevel(self, fuzzy_problem):
        problem, _ = fuzzy_problem
        assert satisfiable_at(problem, 0.9)
        assert satisfiable_at(problem, 0.5)
        assert not satisfiable_at(problem, 0.95)

    def test_consistency_level_among(self, fuzzy_problem):
        problem, _ = fuzzy_problem
        best = consistency_level_among(problem, [0.3, 0.6, 0.9, 0.95])
        assert best == 0.9

    def test_consistency_level_among_weighted(self, weighted):
        x = variable("x", [0, 1])
        c = TableConstraint(weighted, [x], {(0,): 4.0, (1,): 9.0})
        problem = SCSP([c])
        # candidate cost budgets; the best reachable is 4
        best = consistency_level_among(problem, [10.0, 5.0, 4.0, 3.0])
        assert best == 4.0
