"""Every figure and worked example of the paper, asserted in one place.

This is the reproduction contract: each test corresponds to one row of
the experiment index in DESIGN.md (E1–E8) and states the exact values the
paper reports.
"""

import pytest

from repro.constraints import (
    FunctionConstraint,
    Polynomial,
    constraints_equal,
    integer_variable,
    polynomial_constraint,
    variable,
)
from repro.coalitions import (
    blocking_pairs,
    coalition,
    figure9_network,
    is_stable,
    solve_exact,
)
from repro.dependability import (
    assume_unreliable,
    compression_reliability,
    integrate,
    locally_refines,
    meets_requirement,
    system_reliability,
)
from repro.sccp import (
    SUCCESS,
    Status,
    ask,
    explore,
    interval,
    parallel,
    retract,
    run,
    sequence,
    tell,
    update,
)
from repro.semirings import BooleanSemiring, ProbabilisticSemiring
from repro.soa import fuzzy_agreement
from repro.solver import SCSP, solve


class TestE1Figure1:
    """Fig. 1: the weighted SCSP worked through in Sec. 2."""

    def test_combined_tuples(self, fig1):
        combined = fig1["c1"].combine(fig1["c2"]).combine(fig1["c3"])
        expected = {
            ("a", "a"): 11.0,
            ("a", "b"): 7.0,
            ("b", "a"): 16.0,
            ("b", "b"): 16.0,
        }
        assert dict(combined.materialize().items()) == expected

    def test_projection_onto_X(self, fig1):
        combined = fig1["c1"].combine(fig1["c2"]).combine(fig1["c3"])
        projected = combined.project(["X"]).materialize()
        assert dict(projected.items()) == {("a",): 7.0, ("b",): 16.0}

    def test_blevel_and_witness(self, fig1):
        problem = SCSP([fig1["c1"], fig1["c2"], fig1["c3"]], con=["X"])
        result = solve(problem)
        assert result.blevel == 7.0
        assert result.best_assignment == {"X": "a"}
        # "the blevel is 7, related to the solution X = a, Y = b"
        full = solve(SCSP([fig1["c1"], fig1["c2"], fig1["c3"]]))
        assert full.best_assignment == {"X": "a", "Y": "b"}


class TestE2Figure5:
    """Fig. 5: the graphical fuzzy agreement meeting at 0.5."""

    def test_intersection_blevel(self, fuzzy):
        resource = integer_variable("r", 9, lower=1)
        provider = FunctionConstraint(
            fuzzy, (resource,), lambda r: (r - 1) / 8.0
        )
        client = FunctionConstraint(
            fuzzy, (resource,), lambda r: (9 - r) / 8.0
        )
        combined, blevel = fuzzy_agreement(provider, client)
        assert blevel == 0.5
        winners = [
            a["r"] for a, v in combined.enumerate_values() if v == blevel
        ]
        assert winners == [5]


class TestE3Example1:
    """Ex. 1: c4 ⊗ c3 ≡ 3x+5, consistency 5 ∉ [1,4] ⇒ no agreement."""

    def test_full_reproduction(self, weighted, fig7, sync_flags):
        p1 = sequence(
            tell(fig7["c4"]),
            tell(sync_flags["sp2"]),
            ask(sync_flags["sp1"], interval(weighted, lower=10.0, upper=2.0)),
            SUCCESS,
        )
        p2 = sequence(
            tell(fig7["c3"]),
            tell(sync_flags["sp1"]),
            ask(sync_flags["sp2"], interval(weighted, lower=4.0, upper=1.0)),
            SUCCESS,
        )
        agents = parallel(p1, p2)
        result = run(agents, semiring=weighted)
        assert result.status is Status.DEADLOCK
        assert result.consistency() == 5.0
        target = polynomial_constraint(
            weighted, [fig7["x"]], Polynomial.linear({"x": 3}, 5)
        )
        assert constraints_equal(result.store.project(["x"]), target)
        assert explore(agents, semiring=weighted).never_succeeds


class TestE4Example2:
    """Ex. 2: retract(c1) relaxes the store to 2x+2; both succeed at 2."""

    def test_full_reproduction(self, weighted, fig7, sync_flags):
        p1 = sequence(
            tell(fig7["c4"]),
            tell(sync_flags["sp2"]),
            ask(sync_flags["sp1"], interval(weighted, lower=10.0, upper=2.0)),
            retract(fig7["c1"], interval(weighted, lower=10.0, upper=2.0)),
            SUCCESS,
        )
        p2 = sequence(
            tell(fig7["c3"]),
            tell(sync_flags["sp1"]),
            ask(sync_flags["sp2"], interval(weighted, lower=4.0, upper=1.0)),
            SUCCESS,
        )
        agents = parallel(p1, p2)
        result = run(agents, semiring=weighted)
        assert result.status is Status.SUCCESS
        assert result.consistency() == 2.0
        target = polynomial_constraint(
            weighted, [fig7["x"]], Polynomial.linear({"x": 2}, 2)
        )
        assert constraints_equal(result.store.project(["x"]), target)
        exploration = explore(agents, semiring=weighted)
        assert exploration.always_succeeds
        assert set(exploration.success_consistencies()) == {2.0}


class TestE5Example3:
    """Ex. 3: update_{x}(c2) turns the store into y + 4."""

    def test_full_reproduction(self, weighted, fig7):
        agent = sequence(tell(fig7["c1"]), update(["x"], fig7["c2"]), SUCCESS)
        result = run(agent, semiring=weighted)
        assert result.status is Status.SUCCESS
        target = polynomial_constraint(
            weighted, [fig7["y"]], Polynomial.linear({"y": 1}, 4)
        )
        assert constraints_equal(result.store.constraint, target)
        assert result.store.support == ("y",)


SIZES = (256, 512, 666, 1024, 2048, 4096)


class TestE6Section5Crisp:
    """Sec. 5: Imp1 upholds Memory; Imp2 (unreliable REDF) does not."""

    @pytest.fixture
    def policies(self):
        boolean = BooleanSemiring()
        outcomp = variable("outcomp", SIZES)
        incomp = variable("incomp", SIZES)
        redbyte = variable("redbyte", SIZES)
        bwbyte = variable("bwbyte", SIZES)
        return {
            "memory": FunctionConstraint(
                boolean, (incomp, outcomp), lambda i, o: i <= o
            ),
            "red": FunctionConstraint(
                boolean, (redbyte, bwbyte), lambda r, b: r <= b
            ),
            "bw": FunctionConstraint(
                boolean, (bwbyte, outcomp), lambda b, o: b <= o
            ),
            "comp": FunctionConstraint(
                boolean, (incomp, redbyte), lambda i, r: i <= r
            ),
        }

    def test_imp1_upholds_memory(self, policies):
        imp1 = integrate([policies["red"], policies["bw"], policies["comp"]])
        assert locally_refines(
            imp1, policies["memory"], ["incomp", "outcomp"]
        ).holds

    def test_imp2_fails_memory(self, policies):
        imp2 = integrate(
            [
                assume_unreliable(policies["red"]),
                policies["bw"],
                policies["comp"],
            ],
            semiring=BooleanSemiring(),
        )
        report = locally_refines(
            imp2, policies["memory"], ["incomp", "outcomp"]
        )
        assert not report.holds


class TestE7Section5Quantitative:
    """Sec. 5: c1(4096, 1024) = 0.96; MemoryProb ⊑ Imp3; blevel ranks."""

    def test_c1_value(self):
        outcomp = variable("outcomp", SIZES)
        bwbyte = variable("bwbyte", SIZES)
        c1 = compression_reliability(outcomp, bwbyte)
        assert c1({"outcomp": 4096, "bwbyte": 1024}) == pytest.approx(0.96)

    def test_requirement_entailment(self):
        probabilistic = ProbabilisticSemiring()
        outcomp = variable("outcomp", SIZES)
        bwbyte = variable("bwbyte", SIZES)
        c1 = compression_reliability(outcomp, bwbyte)
        c2 = FunctionConstraint(probabilistic, (bwbyte,), lambda b: 0.99)
        imp3 = system_reliability([c1, c2])
        weak_requirement = FunctionConstraint(
            probabilistic, (outcomp,), lambda o: 0.0
        )
        assert meets_requirement(weak_requirement, imp3)
        strict_requirement = FunctionConstraint(
            probabilistic, (outcomp,), lambda o: 0.99
        )
        assert not meets_requirement(strict_requirement, imp3)


class TestE8Figures9And10:
    """Sec. 6: the seven-component trust network and blocking coalitions."""

    def test_fig10_blocking(self):
        network = figure9_network()
        partition = [
            coalition("x1", "x2", "x3"),
            coalition("x4", "x5", "x6", "x7"),
        ]
        assert not is_stable(partition, network, "avg")
        witness = blocking_pairs(partition, network, "avg")[0]
        assert witness.defector == "x4"

    def test_optimal_stable_partition_found(self):
        network = figure9_network()
        solution = solve_exact(network, op="avg", aggregate="min")
        assert solution.found and solution.stable
        # x4 ends up with the coalition it prefers
        x4_group = next(g for g in solution.partition if "x4" in g)
        assert {"x1", "x2", "x3"} <= set(x4_group)
