"""Cross-package integration: negotiate → bind → compose → execute →
monitor → renegotiate, plus the runnable examples as smoke tests."""

import pathlib
import subprocess
import sys

import pytest

from repro.constraints import Polynomial, integer_variable, polynomial_constraint
from repro.sccp import interval
from repro.soa import (
    BernoulliCrash,
    Broker,
    BurstOutage,
    ClientRequest,
    ExecutionEngine,
    FaultInjector,
    MessageBus,
    QoSDocument,
    QoSPolicy,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    ServiceRegistry,
    SLAMonitor,
)

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_scripts_run_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "✓" in completed.stdout


class TestFullLifecycle:
    @pytest.fixture
    def world(self):
        registry = ServiceRegistry()
        pool = ServicePool()
        for operation, provider, reliability in (
            ("compress", "ACME", 0.99),
            ("compress", "Globex", 0.95),
            ("archive", "Hooli", 0.98),
        ):
            document = QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(attribute="reliability", constant=reliability),
                    QoSPolicy(
                        attribute="cost",
                        variables={"jobs": range(0, 6)},
                        polynomial=Polynomial.linear({"jobs": 1.0}, 2.0),
                    ),
                ],
            )
            service_id = f"{operation}-{provider}"
            description = ServiceDescription(
                service_id=service_id,
                name=operation,
                provider=provider,
                interface=ServiceInterface(operation=operation),
                qos=document,
            )
            registry.publish(description)
            pool.add(
                Service(description, reliability=reliability, seed=len(pool))
            )
        return registry, pool

    def test_negotiate_compose_execute_monitor(self, world, weighted):
        registry, pool = world
        bus = MessageBus()
        broker = Broker(registry, bus=bus)

        # 1. single-service SLA over cost
        jobs = integer_variable("jobs", 5)
        request = ClientRequest(
            client="shop",
            operation="compress",
            attribute="cost",
            requirements=[
                polynomial_constraint(
                    weighted, [jobs], Polynomial.linear({"jobs": 0.5})
                )
            ],
            acceptance=interval(weighted, lower=10.0, upper=0.0),
        )
        single = broker.negotiate(request)
        assert single.success

        # 2. composite SLA over reliability
        sla, plan, _ = broker.negotiate_composition(
            "shop", ["compress", "archive"], "reliability", minimum_level=0.9
        )
        assert sla is not None
        assert sla.agreed_level == pytest.approx(0.99 * 0.98)

        # 3. execute under an injected outage, 4. monitor detects it
        injector = FaultInjector(seed=2)
        injector.attach(plan.services()[0], BurstOutage(start=20, length=10))
        engine = ExecutionEngine(pool, injector=injector, seed=2)
        monitor = SLAMonitor(sla, window=15, min_samples=8)
        monitor.observe_many(engine.execute_many(plan, runs=60))
        assert monitor.violations

        # 5. violation triggers renegotiation excluding the bad provider
        bad_provider = registry.get(plan.services()[0]).provider
        sla.terminate()
        remaining = [
            d
            for d in registry.find(operation="compress")
            if d.provider != bad_provider
        ]
        assert remaining  # another provider exists to fall back to
        fallback = ClientRequest(
            client="shop", operation="compress", attribute="reliability"
        )
        renegotiated = broker.negotiate(fallback)
        assert renegotiated.success

        # the bus journalled the whole story
        kinds = bus.journal_kinds()
        assert kinds.count("sla-created") >= 2 or (
            "composition-sla" in kinds and "sla-created" in kinds
        )

    def test_monitor_quiet_on_healthy_system(self, world):
        registry, pool = world
        broker = Broker(registry)
        sla, plan, _ = broker.negotiate_composition(
            "shop", ["compress"], "reliability", minimum_level=0.9
        )
        engine = ExecutionEngine(pool, seed=3)
        monitor = SLAMonitor(sla, window=15, min_samples=8)
        violations = monitor.observe_many(engine.execute_many(plan, runs=60))
        # the chosen service has reliability 0.99 ≥ agreed 0.99; a healthy
        # window may rarely dip below with small samples, so allow the
        # rate to stay tiny rather than demanding zero.
        assert len(violations) <= 3

    def test_background_noise_vs_agreement(self, world):
        registry, pool = world
        broker = Broker(registry)
        sla, plan, _ = broker.negotiate_composition(
            "shop", ["compress"], "reliability"
        )
        injector = FaultInjector(seed=9)
        injector.attach(plan.services()[0], BernoulliCrash(0.4))
        engine = ExecutionEngine(pool, injector=injector, seed=9)
        monitor = SLAMonitor(sla, window=20, min_samples=10)
        monitor.observe_many(engine.execute_many(plan, runs=100))
        # 40% crash noise must breach a ~0.99 reliability agreement
        assert monitor.violations
        assert monitor.in_breach
