"""Joint multi-attribute negotiation over product semirings."""

import pytest

from repro.constraints import Polynomial
from repro.soa import (
    Broker,
    BrokerError,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)


def publish(registry, provider, cost, reliability, operation="compress"):
    registry.publish(
        ServiceDescription(
            service_id=f"{operation}-{provider}",
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(attribute="cost", constant=cost),
                    QoSPolicy(attribute="reliability", constant=reliability),
                ],
            ),
        )
    )


@pytest.fixture
def market():
    registry = ServiceRegistry()
    publish(registry, "Cheap", cost=2.0, reliability=0.90)
    publish(registry, "Solid", cost=6.0, reliability=0.99)
    publish(registry, "Bad", cost=7.0, reliability=0.85)  # dominated
    return registry


class TestParetoFrontier:
    def test_frontier_keeps_tradeoffs_drops_dominated(self, market):
        broker = Broker(market)
        result = broker.negotiate_multicriteria(
            "client", "compress", ["cost", "reliability"]
        )
        assert result.satisfiable
        assert set(result.providers()) == {"Cheap", "Solid"}
        levels = {point.level for point in result.frontier}
        assert (2.0, 0.90) in levels
        assert (6.0, 0.99) in levels

    def test_dominated_check(self, market):
        broker = Broker(market)
        result = broker.negotiate_multicriteria(
            "client", "compress", ["cost", "reliability"]
        )
        assert result.dominated_by_frontier((7.0, 0.85))
        assert not result.dominated_by_frontier((1.0, 0.999))

    def test_needs_two_attributes(self, market):
        broker = Broker(market)
        with pytest.raises(BrokerError, match="at least two"):
            broker.negotiate_multicriteria("client", "compress", ["cost"])

    def test_empty_market(self, market):
        broker = Broker(market)
        result = broker.negotiate_multicriteria(
            "client", "teleport", ["cost", "reliability"]
        )
        assert not result.satisfiable
        assert result.providers() == []

    def test_candidates_missing_an_attribute_excluded(self, market):
        market.publish(
            ServiceDescription(
                service_id="compress-CostOnly",
                name="compress",
                provider="CostOnly",
                interface=ServiceInterface(operation="compress"),
                qos=QoSDocument(
                    service_name="compress",
                    provider="CostOnly",
                    policies=[QoSPolicy(attribute="cost", constant=0.5)],
                ),
            )
        )
        broker = Broker(market)
        result = broker.negotiate_multicriteria(
            "client", "compress", ["cost", "reliability"]
        )
        assert "CostOnly" not in result.providers()


class TestResourceDependentOffers:
    def test_variable_offers_produce_per_assignment_points(self):
        registry = ServiceRegistry()
        registry.publish(
            ServiceDescription(
                service_id="compress-Var",
                name="compress",
                provider="Var",
                interface=ServiceInterface(operation="compress"),
                qos=QoSDocument(
                    service_name="compress",
                    provider="Var",
                    policies=[
                        QoSPolicy(
                            attribute="cost",
                            variables={"batch": (1, 2, 4)},
                            polynomial=Polynomial.linear({"batch": 2.0}),
                        ),
                        QoSPolicy(
                            attribute="reliability",
                            variables={"batch": (1, 2, 4)},
                            table={(1,): 0.99, (2,): 0.95, (4,): 0.90},
                        ),
                    ],
                ),
            )
        )
        broker = Broker(registry)
        result = broker.negotiate_multicriteria(
            "client", "compress", ["cost", "reliability"]
        )
        # batch=1 → (2, 0.99): cheapest AND most reliable — it dominates
        levels = {point.level for point in result.frontier}
        assert levels == {(2.0, 0.99)}
        assert result.frontier[0].assignment == {"batch": 1}

    def test_genuine_tradeoff_across_assignments(self):
        registry = ServiceRegistry()
        registry.publish(
            ServiceDescription(
                service_id="compress-Var",
                name="compress",
                provider="Var",
                interface=ServiceInterface(operation="compress"),
                qos=QoSDocument(
                    service_name="compress",
                    provider="Var",
                    policies=[
                        QoSPolicy(
                            attribute="cost",
                            variables={"tier": (0, 1)},
                            table={(0,): 1.0, (1,): 5.0},
                        ),
                        QoSPolicy(
                            attribute="reliability",
                            variables={"tier": (0, 1)},
                            table={(0,): 0.90, (1,): 0.999},
                        ),
                    ],
                ),
            )
        )
        broker = Broker(registry)
        result = broker.negotiate_multicriteria(
            "client", "compress", ["cost", "reliability"]
        )
        levels = {point.level for point in result.frontier}
        assert levels == {(1.0, 0.90), (5.0, 0.999)}
