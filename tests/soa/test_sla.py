"""SLA objects and the repository."""

import pytest

from repro.constraints import ConstantConstraint
from repro.semirings import ProbabilisticSemiring, WeightedSemiring
from repro.soa import SLA, SLAError, SLARepository, SLAViolation


def make_sla(client="C", providers=("P",), level=0.9, attribute="reliability"):
    semiring = ProbabilisticSemiring()
    return SLA(
        client=client,
        providers=providers,
        attribute=attribute,
        semiring=semiring,
        agreed_constraint=ConstantConstraint(semiring, level),
        agreed_level=level,
    )


class TestAsStore:
    @pytest.mark.parametrize("backend", ["monolith", "factored"])
    def test_rebuilds_the_agreed_store(self, backend):
        sla = make_sla(level=0.8)
        store = sla.as_store(backend=backend)
        assert store.backend == backend
        assert store.consistency() == 0.8
        assert store.entails(
            ConstantConstraint(sla.semiring, sla.agreed_level)
        )

    def test_default_backend(self):
        store = make_sla().as_store()
        assert store.consistency() == make_sla().agreed_level


class TestSLA:
    def test_ids_unique_and_increasing(self):
        a = make_sla()
        b = make_sla()
        assert b.sla_id > a.sla_id

    def test_needs_provider(self):
        with pytest.raises(SLAError, match="at least one provider"):
            make_sla(providers=())

    def test_level_must_be_semiring_element(self):
        semiring = ProbabilisticSemiring()
        with pytest.raises(SLAError):
            SLA(
                client="C",
                providers=("P",),
                attribute="reliability",
                semiring=semiring,
                agreed_constraint=ConstantConstraint(semiring, 0.9),
                agreed_level=7.0,
            )

    def test_satisfied_by_probabilistic(self):
        sla = make_sla(level=0.9)
        assert sla.satisfied_by(0.95)
        assert sla.satisfied_by(0.9)
        assert not sla.satisfied_by(0.85)

    def test_satisfied_by_weighted_inverts(self):
        semiring = WeightedSemiring()
        sla = SLA(
            client="C",
            providers=("P",),
            attribute="latency",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, 20.0),
            agreed_level=20.0,
        )
        assert sla.satisfied_by(15.0)  # faster is better
        assert not sla.satisfied_by(25.0)

    def test_terminate(self):
        sla = make_sla()
        assert sla.active
        sla.terminate()
        assert not sla.active


class TestRepository:
    def test_queries(self):
        repo = SLARepository()
        a = make_sla(client="C1", providers=("P1",))
        b = make_sla(client="C2", providers=("P1", "P2"))
        repo.add(a)
        repo.add(b)
        assert len(repo) == 2
        assert repo.for_client("C1") == [a]
        assert repo.for_provider("P1") == [a, b]
        assert repo.for_provider("P2") == [b]
        assert list(repo) == [a, b]

    def test_active_filter(self):
        repo = SLARepository()
        a = make_sla()
        b = make_sla()
        repo.add(a)
        repo.add(b)
        a.terminate()
        assert repo.active() == [b]


class TestViolation:
    def test_str_mentions_parties(self):
        violation = SLAViolation(
            sla_id=7,
            attribute="availability",
            expected=0.99,
            observed=0.8,
            at_execution=42,
        )
        text = str(violation)
        assert "SLA#7" in text and "availability" in text and "42" in text
