"""The self-healing dependability manager."""

import pytest

from repro.soa import (
    Broker,
    BurstOutage,
    ExecutionEngine,
    FaultInjector,
    QoSDocument,
    QoSPolicy,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    ServiceRegistry,
)
from repro.soa.manager import DependabilityManager, ManagerError


def build_world(providers, perfect_runtime=True):
    """providers: list of (operation, provider, advertised_reliability).

    With ``perfect_runtime`` the live services never fail on their own,
    so injected faults are the only failure source and the self-healing
    behaviour under test is fully deterministic.
    """
    registry = ServiceRegistry()
    pool = ServicePool()
    for operation, provider, reliability in providers:
        service_id = f"{operation}-{provider}"
        description = ServiceDescription(
            service_id=service_id,
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(attribute="reliability", constant=reliability)
                ],
            ),
        )
        registry.publish(description)
        pool.add(
            Service(
                description,
                reliability=1.0 if perfect_runtime else reliability,
                seed=17,
            )
        )
    return registry, pool


@pytest.fixture
def redundant_world():
    return build_world(
        [
            ("compress", "Best", 0.999),
            ("compress", "Backup", 0.99),
            ("archive", "Store", 0.999),
        ]
    )


class TestHealthyOperation:
    def test_runs_without_rebinding(self, redundant_world):
        registry, pool = redundant_world
        manager = DependabilityManager(
            Broker(registry), ExecutionEngine(pool, seed=1)
        )
        outcome = manager.manage(
            ["compress", "archive"], "reliability", runs=40
        )
        assert outcome.runs == 40
        assert outcome.rebindings == 0
        assert not outcome.gave_up
        assert outcome.final_sla is not None
        assert outcome.availability > 0.9
        assert outcome.events[0].kind == "bound"

    def test_initial_binding_picks_best(self, redundant_world):
        registry, pool = redundant_world
        manager = DependabilityManager(
            Broker(registry), ExecutionEngine(pool, seed=1)
        )
        sla, plan = manager.bind(["compress"], "reliability")
        assert sla.providers == ("Best",)

    def test_zero_runs_rejected(self, redundant_world):
        registry, pool = redundant_world
        manager = DependabilityManager(
            Broker(registry), ExecutionEngine(pool, seed=1)
        )
        with pytest.raises(ManagerError):
            manager.manage(["compress"], "reliability", runs=0)


class TestSelfHealing:
    def test_outage_triggers_rebinding_to_backup(self, redundant_world):
        registry, pool = redundant_world
        injector = FaultInjector(seed=3)
        # the initially chosen Best provider goes down hard
        injector.attach("compress-Best", BurstOutage(start=5, length=60))
        engine = ExecutionEngine(pool, injector=injector, seed=3)
        manager = DependabilityManager(
            Broker(registry), engine, window=10, min_samples=5
        )
        outcome = manager.manage(
            ["compress"], "reliability", runs=60, minimum_level=0.9
        )
        assert outcome.rebindings >= 1
        assert "Best" in manager.blacklist
        assert outcome.final_plan is not None
        assert outcome.final_plan.services() == ["compress-Backup"]
        kinds = [event.kind for event in outcome.events]
        assert kinds[0] == "bound"
        assert "violation" in kinds and "rebound" in kinds
        # after the rebinding the system recovers
        assert not outcome.gave_up

    def test_gives_up_when_no_market_remains(self):
        registry, pool = build_world([("compress", "Only", 0.99)])
        injector = FaultInjector(seed=5)
        injector.attach("compress-Only", BurstOutage(start=2, length=100))
        engine = ExecutionEngine(pool, injector=injector, seed=5)
        manager = DependabilityManager(
            Broker(registry), engine, window=8, min_samples=4
        )
        outcome = manager.manage(
            ["compress"], "reliability", runs=50, minimum_level=0.9
        )
        assert outcome.gave_up
        assert outcome.events[-1].kind == "gave-up"
        assert outcome.final_sla is None

    def test_rebinding_budget_respected(self):
        registry, pool = build_world(
            [
                ("compress", f"P{i}", 0.99) for i in range(4)
            ]
        )
        injector = FaultInjector(seed=7)
        for i in range(4):
            injector.attach(f"compress-P{i}", BurstOutage(start=0, length=500))
        engine = ExecutionEngine(pool, injector=injector, seed=7)
        manager = DependabilityManager(
            Broker(registry), engine, window=6, min_samples=3
        )
        outcome = manager.manage(
            ["compress"],
            "reliability",
            runs=200,
            minimum_level=0.9,
            max_rebindings=2,
        )
        assert outcome.gave_up
        assert outcome.rebindings <= 2

    def test_blacklist_survives_across_manage_calls(self, redundant_world):
        registry, pool = redundant_world
        injector = FaultInjector(seed=3)
        injector.attach("compress-Best", BurstOutage(start=5, length=60))
        engine = ExecutionEngine(pool, injector=injector, seed=3)
        manager = DependabilityManager(
            Broker(registry), engine, window=10, min_samples=5
        )
        manager.manage(["compress"], "reliability", runs=60)
        assert "Best" in manager.blacklist
        sla, plan = manager.bind(["compress"], "reliability")
        assert sla.providers == ("Backup",)

    def test_registry_restored_after_blacklisted_bind(self, redundant_world):
        registry, pool = redundant_world
        manager = DependabilityManager(
            Broker(registry), ExecutionEngine(pool, seed=1)
        )
        manager.blacklist.add("Best")
        manager.bind(["compress"], "reliability")
        # the blacklisted provider is only *temporarily* unpublished
        assert registry.find(provider="Best")
