"""Execution engine, fault injection and SLA monitoring."""

import pytest

from repro.semirings import ProbabilisticSemiring, WeightedSemiring
from repro.soa import (
    SLA,
    BernoulliCrash,
    BurstOutage,
    Choose,
    ExecutionEngine,
    FaultInjector,
    Invoke,
    QoSDocument,
    QoSPolicy,
    RandomDelay,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    SLAMonitor,
    Split,
    pipeline,
)
from repro.constraints import ConstantConstraint


def make_service(service_id, reliability=1.0, latency=10.0, seed=1):
    description = ServiceDescription(
        service_id=service_id,
        name=service_id,
        provider="P",
        interface=ServiceInterface(operation=service_id),
        qos=QoSDocument(
            service_name=service_id,
            provider="P",
            policies=[QoSPolicy(attribute="reliability", constant=reliability)],
        ),
    )
    return Service(
        description,
        reliability=reliability,
        base_latency_ms=latency,
        latency_jitter_ms=0.0,
        seed=seed,
    )


@pytest.fixture
def pool():
    p = ServicePool()
    for sid in ("s1", "s2", "s3"):
        p.add(make_service(sid))
    return p


class TestEngine:
    def test_pipeline_latency_accumulates(self, pool):
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(pipeline("s1", "s2", "s3"))
        assert report.success
        assert report.latency_ms == pytest.approx(30.0)
        assert report.services_touched == ["s1", "s2", "s3"]

    def test_pipeline_aborts_on_failure(self):
        pool = ServicePool()
        pool.add(make_service("ok"))
        pool.add(make_service("bad", reliability=0.0))
        pool.add(make_service("never"))
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(pipeline("ok", "bad", "never"))
        assert not report.success
        assert report.aborted_at == "bad"
        assert report.services_touched == ["ok", "bad"]

    def test_pipeline_threads_payload(self):
        pool = ServicePool()
        double = make_service("double")
        double.behaviour = lambda x: x * 2
        inc = make_service("inc")
        inc.behaviour = lambda x: x + 1
        pool.add(double)
        pool.add(inc)
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(pipeline("double", "inc"), payload=5)
        assert report.output == 11

    def test_split_waits_for_slowest(self):
        pool = ServicePool()
        pool.add(make_service("fast", latency=5.0))
        pool.add(make_service("slow", latency=50.0))
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(Split([Invoke("fast"), Invoke("slow")]))
        assert report.success
        assert report.latency_ms == pytest.approx(50.0)

    def test_split_fails_if_any_branch_fails(self):
        pool = ServicePool()
        pool.add(make_service("good"))
        pool.add(make_service("bad", reliability=0.0))
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(Split([Invoke("good"), Invoke("bad")]))
        assert not report.success
        assert report.aborted_at == "bad"

    def test_choose_picks_one_branch(self, pool):
        engine = ExecutionEngine(pool, seed=3)
        report = engine.execute(Choose([Invoke("s1"), Invoke("s2")]))
        assert report.success
        assert len(report.services_touched) == 1

    def test_execute_many_and_statistics(self, pool):
        engine = ExecutionEngine(pool, seed=1)
        reports = engine.execute_many(pipeline("s1"), runs=10)
        assert len(reports) == 10
        assert engine.observed_availability() == 1.0
        assert engine.mean_latency() == pytest.approx(10.0)

    def test_ticks_increase(self, pool):
        engine = ExecutionEngine(pool, seed=1)
        reports = engine.execute_many(pipeline("s1"), runs=3)
        assert [r.tick for r in reports] == [0, 1, 2]


class TestFaults:
    def test_bernoulli_crash_rate(self, pool):
        injector = FaultInjector(seed=5)
        injector.attach("s1", BernoulliCrash(0.5))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        reports = engine.execute_many(pipeline("s1"), runs=200)
        failures = sum(1 for r in reports if not r.success)
        assert 60 < failures < 140

    def test_burst_outage_window(self, pool):
        injector = FaultInjector(seed=1)
        injector.attach("s1", BurstOutage(start=5, length=3))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        reports = engine.execute_many(pipeline("s1"), runs=12)
        outcome = [r.success for r in reports]
        assert outcome == [True] * 5 + [False] * 3 + [True] * 4

    def test_delay_fault_adds_latency(self, pool):
        injector = FaultInjector(seed=1)
        injector.attach("s1", RandomDelay(probability=1.0, extra_ms=100.0))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        report = engine.execute(pipeline("s1"))
        assert report.success
        assert report.latency_ms == pytest.approx(110.0)

    def test_injection_history(self, pool):
        injector = FaultInjector(seed=1)
        injector.attach("s1", BurstOutage(start=0, length=2))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        engine.execute_many(pipeline("s1"), runs=3)
        assert len(injector.history_for("s1")) == 2

    def test_invalid_fault_parameters(self):
        with pytest.raises(ValueError):
            BernoulliCrash(1.5)
        with pytest.raises(ValueError):
            BurstOutage(start=-1, length=1)
        with pytest.raises(ValueError):
            RandomDelay(probability=2.0, extra_ms=1.0)


class TestSeedPlumbing:
    """One engine seed must reproduce the whole run, faults included."""

    def run_outcomes(self, seed):
        pool = ServicePool()
        for sid in ("s1", "s2"):
            pool.add(make_service(sid))
        injector = FaultInjector()  # unseeded: adopts the engine's stream
        injector.attach("s1", BernoulliCrash(0.4))
        injector.attach("s2", BernoulliCrash(0.2))
        engine = ExecutionEngine(pool, injector=injector, seed=seed)
        plan = Choose(
            children=(pipeline("s1", "s2"), pipeline("s2", "s1"))
        )
        reports = engine.execute_many(plan, runs=40)
        return [(r.success, tuple(r.services_touched)) for r in reports]

    def test_same_seed_reproduces_choices_and_faults(self):
        assert self.run_outcomes(7) == self.run_outcomes(7)

    def test_different_seeds_diverge(self):
        assert len({tuple(self.run_outcomes(s)) for s in range(5)}) > 1

    def test_unseeded_injector_adopts_engine_stream(self):
        injector = FaultInjector()
        engine = ExecutionEngine(ServicePool(), injector=injector, seed=3)
        assert injector._rng is engine._rng

    def test_explicitly_seeded_injector_keeps_its_stream(self):
        injector = FaultInjector(seed=99)
        engine = ExecutionEngine(ServicePool(), injector=injector, seed=3)
        assert injector._rng is not engine._rng

    def test_shared_rng_object_spans_both(self):
        import random

        stream = random.Random(11)
        injector = FaultInjector(rng=stream)
        engine = ExecutionEngine(
            ServicePool(), injector=injector, rng=stream
        )
        assert injector._rng is engine._rng is stream


def availability_sla(level=0.95):
    semiring = ProbabilisticSemiring()
    return SLA(
        client="C",
        providers=("P",),
        attribute="availability",
        semiring=semiring,
        agreed_constraint=ConstantConstraint(semiring, level),
        agreed_level=level,
    )


class TestMonitor:
    def test_healthy_run_no_violations(self, pool):
        engine = ExecutionEngine(pool, seed=1)
        monitor = SLAMonitor(availability_sla(0.9), window=10, min_samples=5)
        violations = monitor.observe_many(
            engine.execute_many(pipeline("s1"), runs=30)
        )
        assert violations == []
        assert not monitor.in_breach
        assert monitor.current_level() == 1.0

    def test_outage_trips_violation(self, pool):
        injector = FaultInjector(seed=1)
        injector.attach("s1", BurstOutage(start=10, length=8))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        monitor = SLAMonitor(availability_sla(0.9), window=10, min_samples=5)
        violations = monitor.observe_many(
            engine.execute_many(pipeline("s1"), runs=30)
        )
        assert violations
        first = violations[0]
        assert first.attribute == "availability"
        assert first.observed < 0.9
        assert first.expected == 0.9

    def test_min_samples_gate(self, pool):
        engine = ExecutionEngine(pool, seed=1)
        monitor = SLAMonitor(availability_sla(0.99), window=10, min_samples=5)
        report = engine.execute(pipeline("s1"))
        # even a failure cannot trip before min_samples observations
        assert monitor.observe(report) is None

    def test_violation_callback(self, pool):
        injector = FaultInjector(seed=1)
        injector.attach("s1", BurstOutage(start=0, length=20))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        seen = []
        monitor = SLAMonitor(
            availability_sla(0.9),
            window=10,
            min_samples=5,
            on_violation=seen.append,
        )
        monitor.observe_many(engine.execute_many(pipeline("s1"), runs=10))
        assert seen == monitor.violations

    def test_covered_by_agreement_routes_through_the_store(self):
        semiring = ProbabilisticSemiring()
        sla = SLA(
            client="C",
            providers=("P",),
            attribute="availability",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, 0.9),
            agreed_level=0.9,
        )
        monitor = SLAMonitor(sla, window=5, min_samples=3)
        # a weaker constraint (admits up to 0.95) is already entailed …
        assert monitor.covered_by_agreement(
            ConstantConstraint(semiring, 0.95)
        )
        # … but one the agreed store exceeds (caps at 0.5) is not.
        assert not monitor.covered_by_agreement(
            ConstantConstraint(semiring, 0.5)
        )

    def test_latency_sla_uses_inverted_order(self, pool):
        semiring = WeightedSemiring()
        sla = SLA(
            client="C",
            providers=("P",),
            attribute="latency",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, 15.0),
            agreed_level=15.0,
        )
        engine = ExecutionEngine(pool, seed=1)
        monitor = SLAMonitor(sla, window=5, min_samples=3)
        # 10ms mean latency honours a 15ms agreement
        violations = monitor.observe_many(
            engine.execute_many(pipeline("s1"), runs=5)
        )
        assert violations == []
        # a 30ms pipeline violates it
        violations = monitor.observe_many(
            engine.execute_many(pipeline("s1", "s2", "s3"), runs=5)
        )
        assert violations

    def test_window_recovery(self, pool):
        injector = FaultInjector(seed=1)
        injector.attach("s1", BurstOutage(start=0, length=5))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        monitor = SLAMonitor(availability_sla(0.9), window=5, min_samples=3)
        monitor.observe_many(engine.execute_many(pipeline("s1"), runs=30))
        # after the outage leaves the window the monitor recovers
        assert not monitor.in_breach
        assert monitor.violation_rate() > 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SLAMonitor(availability_sla(), window=0)
