"""Property-based tests (hypothesis) for plan aggregation.

Random series-parallel trees must agree with the closed-form
:func:`compose_series_parallel`; unknown-attribute and custom-``rule=``
paths behave as documented; ``aggregate_many`` is pointwise consistent
with ``aggregate``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependability.metrics import compose_series_parallel
from repro.soa import (
    AGGREGATION_RULES,
    AggregationRule,
    Choose,
    CompositionError,
    Invoke,
    Pipeline,
    Split,
    aggregate,
    aggregate_many,
)

levels = st.floats(
    min_value=0.5, max_value=1.0, allow_nan=False, allow_infinity=False
)
costs = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def series_parallel(draw):
    """A Pipeline of Choose groups plus the matching level table —
    the exact shape ``compose_series_parallel`` computes in closed form
    under the redundant reading (here expressed via per-group values)."""
    n_groups = draw(st.integers(min_value=1, max_value=4))
    groups = []
    table = {}
    counter = 0
    for _ in range(n_groups):
        size = draw(st.integers(min_value=1, max_value=3))
        members = []
        for _ in range(size):
            name = f"s{counter}"
            counter += 1
            table[name] = draw(levels)
            members.append(name)
        groups.append(members)
    plan = Pipeline(
        [
            Invoke(group[0])
            if len(group) == 1
            else Split([Invoke(name) for name in group])
            for group in groups
        ]
    )
    return plan, groups, table


@st.composite
def nested_plan(draw, depth=3):
    """An arbitrary plan tree with unique leaves and a level table."""
    counter = [0]

    def build(remaining):
        if remaining == 0 or draw(st.booleans()):
            name = f"s{counter[0]}"
            counter[0] += 1
            return Invoke(name)
        node_type = draw(st.sampled_from((Pipeline, Split, Choose)))
        width = draw(st.integers(min_value=1, max_value=3))
        return node_type([build(remaining - 1) for _ in range(width)])

    plan = build(depth)
    table = {
        name: draw(levels)
        for name in plan.services()
    }
    return plan, table


class TestSeriesParallelAgreement:
    @settings(max_examples=60)
    @given(series_parallel())
    def test_split_groups_multiply_like_series_of_series(self, case):
        plan, groups, table = case
        # availability: sequence=product, split=product — the whole tree
        # is one big product regardless of grouping.
        expected = 1.0
        for group in groups:
            for name in group:
                expected *= table[name]
        assert aggregate(plan, table, "availability") == pytest.approx(
            expected
        )

    @settings(max_examples=60)
    @given(series_parallel())
    def test_redundant_groups_match_compose_series_parallel(self, case):
        from repro.slo import composite_bound

        plan, groups, table = case
        redundant = Pipeline(
            [
                Invoke(group[0])
                if len(group) == 1
                else Choose([Invoke(name) for name in group])
                for group in groups
            ]
        )
        assert composite_bound(
            redundant, table, "availability", choose="redundant"
        ) == pytest.approx(
            compose_series_parallel(
                [[table[name] for name in group] for group in groups]
            )
        )


class TestNestedTrees:
    @settings(max_examples=60)
    @given(nested_plan())
    def test_reliability_bound_within_leaf_extremes(self, case):
        plan, table = case
        value = aggregate(plan, table, "reliability")
        assert 0.0 <= value <= 1.0
        # product/min folds can never exceed the best leaf.
        assert value <= max(table.values()) + 1e-12

    @settings(max_examples=60)
    @given(nested_plan())
    def test_monotone_in_every_leaf(self, case):
        plan, table = case
        base = aggregate(plan, table, "availability")
        for name in table:
            raised = dict(table)
            raised[name] = min(1.0, raised[name] + 0.1)
            assert (
                aggregate(plan, raised, "availability") >= base - 1e-12
            )

    @settings(max_examples=40)
    @given(nested_plan(), costs)
    def test_custom_rule_overrides_the_table(self, case, fill):
        plan, table = case
        flat = {name: fill for name in table}
        rule = AggregationRule(sequence=max, split=max, choose=max)
        assert aggregate(
            plan, flat, "anything-at-all", rule=rule
        ) == pytest.approx(fill)


class TestUnknownAttributeAndMany:
    def test_unknown_attribute_mentions_rule_escape_hatch(self):
        with pytest.raises(CompositionError, match="rule="):
            aggregate(Invoke("a"), {"a": 1.0}, "carbon-footprint")

    @settings(max_examples=40)
    @given(nested_plan())
    def test_aggregate_many_matches_pointwise_aggregate(self, case):
        plan, table = case
        tables = {
            "availability": table,
            "cost": {name: 2.0 for name in table},
            "latency": {name: 7.0 for name in table},
        }
        combined = aggregate_many(plan, tables)
        assert set(combined) == set(tables)
        for attribute, values in tables.items():
            assert combined[attribute] == pytest.approx(
                aggregate(plan, values, attribute)
            )

    def test_aggregation_rules_cover_the_standard_attributes(self):
        assert {
            "availability",
            "reliability",
            "cost",
            "latency",
            "downtime",
        } <= set(AGGREGATION_RULES)
