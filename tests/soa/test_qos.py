"""QoS attributes, policies and document → constraint translation."""

import pytest

from repro.constraints import Polynomial
from repro.soa import (
    QoSDocument,
    QoSError,
    QoSPolicy,
    compile_document,
    compile_policy,
    resolve_attribute,
    STANDARD_ATTRIBUTES,
)


class TestAttributes:
    def test_catalogue_covers_dependability_metrics(self):
        assert {"availability", "reliability", "cost", "latency"} <= set(
            STANDARD_ATTRIBUTES
        )

    def test_natural_semirings(self):
        assert resolve_attribute("availability").semiring().name == (
            "Probabilistic"
        )
        assert resolve_attribute("cost").semiring().name == "Weighted"
        assert resolve_attribute("fuzzy-reliability").semiring().name == (
            "Fuzzy"
        )

    def test_set_attribute_needs_universe(self):
        semiring = resolve_attribute("security-rights").semiring(
            universe={"read", "write"}
        )
        assert semiring.one == frozenset({"read", "write"})

    def test_unknown_attribute(self):
        with pytest.raises(QoSError, match="known:"):
            resolve_attribute("karma")


class TestPolicyValidation:
    def test_exactly_one_body_required(self):
        with pytest.raises(QoSError, match="exactly one"):
            QoSPolicy(attribute="cost")
        with pytest.raises(QoSError, match="exactly one"):
            QoSPolicy(
                attribute="cost",
                constant=1.0,
                polynomial=Polynomial.var("x"),
            )

    def test_table_needs_variables(self):
        with pytest.raises(QoSError, match="resource variables"):
            QoSPolicy(attribute="cost", table={(0,): 1.0})

    def test_fn_needs_variables(self):
        with pytest.raises(QoSError, match="resource variables"):
            QoSPolicy(attribute="cost", fn=lambda x: x)


class TestCompilation:
    def test_constant_policy(self, probabilistic):
        policy = QoSPolicy(attribute="reliability", constant=0.98)
        constraint = compile_policy(policy, probabilistic)
        assert constraint({}) == 0.98
        assert constraint.scope == ()

    def test_polynomial_policy(self, weighted):
        # "the reliability is 80% plus 5% per processor" shape, as cost
        policy = QoSPolicy(
            attribute="cost",
            variables={"x": range(5)},
            polynomial=Polynomial.linear({"x": 5}, 80),
        )
        constraint = compile_policy(policy, weighted)
        assert constraint({"x": 2}) == 90.0

    def test_table_policy(self, fuzzy):
        policy = QoSPolicy(
            attribute="fuzzy-reliability",
            variables={"tier": (0, 1, 2)},
            table={(0,): 0.3, (1,): 0.6, (2,): 0.9},
        )
        constraint = compile_policy(policy, fuzzy)
        assert constraint({"tier": 2}) == 0.9

    def test_fn_policy(self, probabilistic):
        policy = QoSPolicy(
            attribute="reliability",
            variables={"load": (1, 2, 4)},
            fn=lambda load: 1.0 / load,
        )
        constraint = compile_policy(policy, probabilistic)
        assert constraint({"load": 4}) == 0.25

    def test_variable_pool_shared_across_policies(self, weighted):
        pool = {}
        p1 = QoSPolicy(
            attribute="cost",
            variables={"x": range(3)},
            polynomial=Polynomial.var("x"),
        )
        p2 = QoSPolicy(
            attribute="cost",
            variables={"x": range(3)},
            polynomial=Polynomial.linear({"x": 2}),
        )
        c1 = compile_policy(p1, weighted, pool)
        c2 = compile_policy(p2, weighted, pool)
        assert c1.scope[0] is c2.scope[0]

    def test_conflicting_domains_rejected(self, weighted):
        pool = {}
        compile_policy(
            QoSPolicy(
                attribute="cost",
                variables={"x": range(3)},
                polynomial=Polynomial.var("x"),
            ),
            weighted,
            pool,
        )
        with pytest.raises(QoSError, match="two domains"):
            compile_policy(
                QoSPolicy(
                    attribute="cost",
                    variables={"x": range(5)},
                    polynomial=Polynomial.var("x"),
                ),
                weighted,
                pool,
            )


class TestDocuments:
    def test_compile_document_filters_by_attribute(self, weighted):
        document = QoSDocument(
            service_name="svc",
            provider="P",
            policies=[
                QoSPolicy(attribute="reliability", constant=0.9),
                QoSPolicy(
                    attribute="cost",
                    variables={"x": range(3)},
                    polynomial=Polynomial.var("x"),
                ),
            ],
        )
        cost_constraints = compile_document(document, "cost", weighted)
        assert len(cost_constraints) == 1
        assert cost_constraints[0]({"x": 2}) == 2.0

    def test_compile_document_default_semiring(self):
        document = QoSDocument(
            service_name="svc",
            provider="P",
            policies=[QoSPolicy(attribute="reliability", constant=0.9)],
        )
        constraints = compile_document(document, "reliability")
        assert constraints[0].semiring.name == "Probabilistic"

    def test_document_queries(self):
        document = QoSDocument(
            service_name="svc",
            provider="P",
            policies=[QoSPolicy(attribute="reliability", constant=0.9)],
        )
        assert document.attributes() == ["reliability"]
        assert document.policy_for("reliability").constant == 0.9
        assert document.policy_for("cost") is None

    def test_constraint_names_carry_provenance(self, probabilistic):
        document = QoSDocument(
            service_name="svc",
            provider="P",
            policies=[QoSPolicy(attribute="reliability", constant=0.9)],
        )
        constraints = compile_document(document, "reliability", probabilistic)
        assert constraints[0].name.startswith("P/svc:")
