"""Fault-model edge cases: windows, delays, and RNG adoption."""

import random

import pytest

from repro.soa import (
    BernoulliCrash,
    BurstOutage,
    FaultInjector,
    RandomDelay,
)


class TestBurstOutage:
    def test_zero_length_burst_rejected(self):
        with pytest.raises(ValueError, match="length"):
            BurstOutage(start=5, length=0)
        with pytest.raises(ValueError):
            BurstOutage(start=-1, length=3)

    def test_window_boundaries_are_half_open(self):
        outage = BurstOutage(start=2, length=3)
        rng = random.Random(0)
        assert outage.apply(1, rng) is None
        assert outage.apply(2, rng).fail  # first down tick
        assert outage.apply(4, rng).fail  # last down tick
        assert outage.apply(5, rng) is None  # start + length is up again

    def test_overlapping_windows_fail_through_either(self):
        injector = FaultInjector(seed=0)
        injector.attach("svc", BurstOutage(start=0, length=4))
        injector.attach("svc", BurstOutage(start=2, length=4))
        down_ticks = [
            tick
            for tick in range(8)
            if injector.decide("svc", tick) is not None
        ]
        # The union of [0, 4) and [2, 6): one failure per tick, never
        # two — decide() stops at the first applicable model.
        assert down_ticks == [0, 1, 2, 3, 4, 5]
        assert len(injector.history_for("svc")) == 6


class TestRandomDelay:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            RandomDelay(probability=1.5, extra_ms=10.0)
        with pytest.raises(ValueError):
            BernoulliCrash(probability=-0.1)

    def test_zero_probability_never_delays(self):
        delay = RandomDelay(probability=0.0, extra_ms=10.0)
        rng = random.Random(0)
        assert all(delay.apply(t, rng) is None for t in range(64))

    def test_certain_delay_slows_but_never_fails(self):
        delay = RandomDelay(probability=1.0, extra_ms=25.0)
        fault = delay.apply(0, random.Random(0))
        assert fault.extra_latency_ms == 25.0
        assert not fault.fail


class TestRngAdoption:
    def test_unseeded_injector_adopts_the_caller_stream(self):
        injector = FaultInjector()
        shared = random.Random(123)
        assert injector.adopt_rng_if_unseeded(shared)
        injector.attach("svc", BernoulliCrash(0.5))
        injector.decide("svc", 0)
        # The decision consumed a draw from the *shared* stream.
        assert shared.random() != random.Random(123).random()

    def test_seeded_injector_refuses_adoption(self):
        injector = FaultInjector(seed=9)
        assert not injector.adopt_rng_if_unseeded(random.Random(0))

    def test_adoption_is_one_shot(self):
        injector = FaultInjector()
        assert injector.adopt_rng_if_unseeded(random.Random(1))
        # A second caller must not silently re-seat the stream.
        assert not injector.adopt_rng_if_unseeded(random.Random(2))

    def test_adopted_copies_decide_identically(self):
        """Two injector copies adopting equal streams make identical
        fault decisions — the determinism contract behind sharing one
        master seed between engine and injector."""

        def decisions():
            injector = FaultInjector()
            injector.adopt_rng_if_unseeded(random.Random(42))
            injector.attach("svc", BernoulliCrash(0.4))
            injector.attach("svc", RandomDelay(0.4, 5.0))
            return [
                (fault.kind if fault is not None else None)
                for fault in (
                    injector.decide("svc", tick) for tick in range(32)
                )
            ]

        assert decisions() == decisions()
