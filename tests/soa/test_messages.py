"""The SOAP-like message bus."""

import pytest

from repro.soa import Envelope, MessageBus, MessageError, request_reply


@pytest.fixture
def bus():
    bus = MessageBus()
    bus.register("client")
    bus.register("broker")
    return bus


class TestDelivery:
    def test_send_and_receive(self, bus):
        envelope = bus.send("client", "broker", "query", {"op": "compress"})
        received = bus.receive("broker")
        assert received is envelope
        assert received.body == {"op": "compress"}
        assert bus.receive("broker") is None

    def test_fifo_order(self, bus):
        bus.send("client", "broker", "first", 1)
        bus.send("client", "broker", "second", 2)
        assert bus.receive("broker").kind == "first"
        assert bus.receive("broker").kind == "second"

    def test_unknown_recipient(self, bus):
        with pytest.raises(MessageError, match="unknown endpoint"):
            bus.send("client", "nowhere", "query", None)

    def test_unknown_receiver(self, bus):
        with pytest.raises(MessageError, match="unknown endpoint"):
            bus.receive("nowhere")

    def test_receive_all_drains(self, bus):
        for i in range(3):
            bus.send("client", "broker", "msg", i)
        drained = bus.receive_all("broker")
        assert [e.body for e in drained] == [0, 1, 2]
        assert bus.pending("broker") == 0

    def test_register_idempotent(self, bus):
        bus.register("client")
        assert bus.endpoints() == ["broker", "client"]


class TestCorrelation:
    def test_reply_correlates(self, bus):
        request = bus.send("client", "broker", "query", "ping")
        delivered = bus.receive("broker")
        reply = delivered.reply("answer", "pong")
        assert reply.correlation_id == request.message_id
        assert reply.recipient == "client"
        assert reply.sender == "broker"

    def test_request_reply_roundtrip(self, bus):
        def handler(envelope: Envelope) -> Envelope:
            return envelope.reply("answer", envelope.body * 2)

        answer = request_reply(bus, "client", "broker", "query", 21, handler)
        assert answer.body == 42
        assert answer.kind == "answer"

    def test_request_reply_rejects_uncorrelated_handler(self, bus):
        rogue = Envelope(
            message_id=999_999,
            sender="broker",
            recipient="client",
            kind="answer",
            body=None,
        )
        with pytest.raises(MessageError, match="correlate"):
            request_reply(
                bus, "client", "broker", "query", 1, lambda e: rogue
            )


class TestJournal:
    def test_journal_records_everything(self, bus):
        bus.send("client", "broker", "a", 1)
        bus.send("broker", "client", "b", 2)
        assert bus.journal_kinds() == ["a", "b"]

    def test_journal_can_be_disabled(self):
        bus = MessageBus(keep_journal=False)
        bus.register("x")
        bus.send("x", "x", "k", None)
        assert bus.journal == []

    def test_message_ids_strictly_increase(self, bus):
        first = bus.send("client", "broker", "a", None)
        second = bus.send("client", "broker", "b", None)
        assert second.message_id > first.message_id
