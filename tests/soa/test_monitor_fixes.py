"""Regression tests for the monitor/metrics correctness fixes: cost SLAs
judged on recorded charges (not latency), the threshold error message,
and charge recording on the execution path."""

import pytest

from repro.constraints import ConstantConstraint
from repro.semirings import ProbabilisticSemiring, WeightedSemiring
from repro.soa import (
    SLA,
    ExecutionEngine,
    ExecutionReport,
    FaultInjector,
    BernoulliCrash,
    QoSDocument,
    QoSPolicy,
    RandomDelay,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    SLAMonitor,
    pipeline,
)
from repro.soa.service import InvocationOutcome


def make_service(
    service_id,
    reliability=1.0,
    latency=10.0,
    cost=None,
    downtime=None,
    seed=1,
):
    policies = [QoSPolicy(attribute="reliability", constant=reliability)]
    if cost is not None:
        policies.append(QoSPolicy(attribute="cost", constant=cost))
    if downtime is not None:
        policies.append(QoSPolicy(attribute="downtime", constant=downtime))
    description = ServiceDescription(
        service_id=service_id,
        name=service_id,
        provider="P",
        interface=ServiceInterface(operation=service_id),
        qos=QoSDocument(
            service_name=service_id, provider="P", policies=policies
        ),
    )
    return Service(
        description,
        reliability=reliability,
        base_latency_ms=latency,
        latency_jitter_ms=0.0,
        seed=seed,
    )


def weighted_sla(attribute, level):
    semiring = WeightedSemiring()
    return SLA(
        client="C",
        providers=("P",),
        attribute=attribute,
        semiring=semiring,
        agreed_constraint=ConstantConstraint(semiring, level),
        agreed_level=level,
    )


class TestCostMonitoring:
    """The satellite bugfix: ``current_level`` for cost/downtime used to
    average ``latency_ms`` — cheap-but-slow services tripped cost SLAs
    and expensive-but-fast ones never did."""

    def test_cost_level_is_recorded_cost_not_latency(self):
        # Expensive but fast: latency 1ms, cost 50 per call.
        pool = ServicePool()
        pool.add(make_service("s", latency=1.0, cost=50.0))
        engine = ExecutionEngine(pool, seed=1)
        monitor = SLAMonitor(
            weighted_sla("cost", 10.0), window=10, min_samples=3
        )
        violations = monitor.observe_many(
            engine.execute_many(pipeline("s"), runs=5)
        )
        # Pre-fix: level = mean latency = 1.0 ≤ 10 agreed → no breach.
        assert monitor.current_level() == pytest.approx(50.0)
        assert violations, "cost SLA violation must fire on cost"
        assert violations[0].observed == pytest.approx(50.0)

    def test_cheap_slow_service_honours_cost_sla(self):
        # Cheap but slow: latency 500ms, cost 1 per call.
        pool = ServicePool()
        pool.add(make_service("s", latency=500.0, cost=1.0))
        engine = ExecutionEngine(pool, seed=1)
        monitor = SLAMonitor(
            weighted_sla("cost", 10.0), window=10, min_samples=3
        )
        violations = monitor.observe_many(
            engine.execute_many(pipeline("s"), runs=5)
        )
        # Pre-fix: mean latency 500 > 10 agreed → spurious violation.
        assert violations == []
        assert monitor.current_level() == pytest.approx(1.0)

    def test_pipeline_cost_sums_per_run(self):
        pool = ServicePool()
        pool.add(make_service("a", cost=2.0))
        pool.add(make_service("b", cost=3.0))
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(pipeline("a", "b"))
        assert report.charge("cost") == pytest.approx(5.0)
        monitor = SLAMonitor(
            weighted_sla("cost", 10.0), window=5, min_samples=1
        )
        monitor.observe(report)
        assert monitor.current_level() == pytest.approx(5.0)

    def test_downtime_uses_its_own_charges(self):
        pool = ServicePool()
        pool.add(make_service("s", cost=7.0, downtime=0.25))
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(pipeline("s"))
        assert report.charge("downtime") == pytest.approx(0.25)
        monitor = SLAMonitor(
            weighted_sla("downtime", 1.0), window=5, min_samples=1
        )
        monitor.observe(report)
        assert monitor.current_level() == pytest.approx(0.25)

    def test_legacy_reports_without_charges_read_zero(self):
        report = ExecutionReport(
            tick=0,
            success=True,
            latency_ms=400.0,
            outcomes=[InvocationOutcome("s", True, 400.0)],
        )
        assert report.charge("cost") == 0.0


class TestChargeRecording:
    def test_crashed_invocation_carries_no_charges(self):
        # A fault-injector crash fires before the service is reached:
        # nothing was invoked, nothing is billed.
        pool = ServicePool()
        pool.add(make_service("s", cost=5.0))
        injector = FaultInjector(seed=1)
        injector.attach("s", BernoulliCrash(probability=1.0))
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        report = engine.execute(pipeline("s"))
        assert not report.success
        assert report.charge("cost") == 0.0

    def test_delay_fault_preserves_charges(self):
        pool = ServicePool()
        pool.add(make_service("s", cost=5.0))
        injector = FaultInjector(seed=1)
        injector.attach(
            "s", RandomDelay(probability=1.0, extra_ms=100.0)
        )
        engine = ExecutionEngine(pool, injector=injector, seed=1)
        report = engine.execute(pipeline("s"))
        assert report.latency_ms >= 100.0
        assert report.charge("cost") == pytest.approx(5.0)

    def test_services_without_cost_policy_bill_nothing(self):
        pool = ServicePool()
        pool.add(make_service("s"))
        engine = ExecutionEngine(pool, seed=1)
        report = engine.execute(pipeline("s"))
        assert report.charge("cost") == 0.0
        assert report.outcomes[0].charges == {}

    def test_advertised_reads_constants_and_flat_tables(self):
        document = QoSDocument(
            service_name="s",
            provider="P",
            policies=[
                QoSPolicy(attribute="cost", constant=4.0),
                QoSPolicy(
                    attribute="downtime",
                    variables={"tier": ("gold", "silver")},
                    table={("gold",): 0.5, ("silver",): 0.5},
                ),
                QoSPolicy(
                    attribute="availability",
                    variables={"tier": ("gold", "silver")},
                    table={("gold",): 0.99, ("silver",): 0.9},
                ),
            ],
        )
        assert document.advertised("cost") == 4.0
        assert document.advertised("downtime") == 0.5  # single-valued
        assert document.advertised("availability") is None  # ambiguous
        assert document.advertised("latency") is None  # no policy


class TestThresholdMessage:
    """The satellite bugfix: the init error interpolated the raw
    ``threshold`` argument — ``None`` on the default arm — instead of
    the resolved ``self.threshold``."""

    def test_explicit_bad_threshold_named_in_message(self):
        semiring = ProbabilisticSemiring()
        sla = SLA(
            client="C",
            providers=("P",),
            attribute="availability",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, 0.9),
            agreed_level=0.9,
        )
        with pytest.raises(ValueError, match=r"threshold 1\.5"):
            SLAMonitor(sla, threshold=1.5)

    def test_default_arm_names_the_agreed_level_not_none(self):
        semiring = ProbabilisticSemiring()
        sla = SLA(
            client="C",
            providers=("P",),
            attribute="availability",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, 0.9),
            agreed_level=0.9,
        )
        # SLA validates agreed_level at construction, so corrupt it
        # afterwards to exercise the defaulted-threshold arm.
        sla.agreed_level = 7.5
        with pytest.raises(ValueError, match=r"threshold 7\.5"):
            SLAMonitor(sla)


class TestObservationWindowExport:
    def test_monitor_exports_its_window(self):
        pool = ServicePool()
        pool.add(make_service("good"))
        pool.add(make_service("bad", reliability=0.0))
        engine = ExecutionEngine(pool, seed=1)
        semiring = ProbabilisticSemiring()
        sla = SLA(
            client="C",
            providers=("P",),
            attribute="availability",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, 0.5),
            agreed_level=0.5,
        )
        monitor = SLAMonitor(sla, window=10, min_samples=1)
        monitor.observe_many(engine.execute_many(pipeline("good"), 3))
        monitor.observe_many(engine.execute_many(pipeline("bad"), 2))
        window = monitor.observation_window()
        assert (window.attempts, window.failures) == (5, 2)
        assert window.reliability == pytest.approx(0.6)
