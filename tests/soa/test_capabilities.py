"""MUST/MAY capability policies and their Set-semiring composition."""

import pytest

from repro.semirings import SetSemiring
from repro.soa.capabilities import (
    CapabilityError,
    compose_in_semiring,
    compose_policies,
    policy,
    to_semiring_value,
)

UNIVERSE = {"http-auth", "gzip", "tls", "plain"}


@pytest.fixture
def paper_policy():
    """'you MUST use HTTP Authentication and MAY use GZIP compression'"""
    return policy("ws-spec", must={"http-auth"}, may={"gzip"})


class TestSinglePolicy:
    def test_admits_paper_examples(self, paper_policy):
        assert paper_policy.admits({"http-auth"})
        assert paper_policy.admits({"http-auth", "gzip"})
        assert not paper_policy.admits({"gzip"})          # MUST missing
        assert not paper_policy.admits({"http-auth", "tls"})  # tls forbidden

    def test_floor_and_ceiling(self, paper_policy):
        assert paper_policy.floor == frozenset({"http-auth"})
        assert paper_policy.ceiling == frozenset({"http-auth", "gzip"})

    def test_admissible_profiles(self, paper_policy):
        profiles = paper_policy.admissible_profiles()
        assert set(profiles) == {
            frozenset({"http-auth"}),
            frozenset({"http-auth", "gzip"}),
        }

    def test_must_subsumes_may(self):
        redundant = policy("p", must={"tls"}, may={"tls", "gzip"})
        assert redundant.may == frozenset({"gzip"})

    def test_str_render(self, paper_policy):
        text = str(paper_policy)
        assert "MUST" in text and "http-auth" in text


class TestComposition:
    def test_compatible_composition(self, paper_policy):
        client = policy("client", must={"gzip"}, may={"http-auth"})
        verdict = compose_policies([paper_policy, client])
        assert verdict.compatible
        assert verdict.combined.must == frozenset({"http-auth", "gzip"})
        assert verdict.combined.may == frozenset()

    def test_incompatible_must_vs_forbidden(self, paper_policy):
        # the client insists on TLS which the service forbids
        client = policy("client", must={"tls", "http-auth"})
        verdict = compose_policies([paper_policy, client])
        assert not verdict.compatible
        assert verdict.conflicts == ["tls"]
        assert verdict.combined is None

    def test_composition_associative(self):
        a = policy("a", must={"x"}, may={"y", "z"})
        b = policy("b", may={"x", "y", "z"})
        c = policy("c", must={"y"}, may={"x", "z"})
        left = compose_policies(
            [compose_policies([a, b]).combined, c]
        ).combined
        right = compose_policies(
            [a, compose_policies([b, c]).combined]
        ).combined
        assert left.must == right.must
        assert left.ceiling == right.ceiling

    def test_composition_with_self_is_idempotent(self, paper_policy):
        verdict = compose_policies([paper_policy, paper_policy])
        assert verdict.combined.must == paper_policy.must
        assert verdict.combined.ceiling == paper_policy.ceiling

    def test_empty_composition_rejected(self):
        with pytest.raises(CapabilityError):
            compose_policies([])


class TestSemiringView:
    def test_denotation(self, paper_policy):
        semiring = SetSemiring(UNIVERSE)
        floor, ceiling = to_semiring_value(paper_policy, semiring)
        assert floor == frozenset({"http-auth"})
        assert ceiling == frozenset({"http-auth", "gzip"})

    def test_universe_violation_rejected(self, paper_policy):
        semiring = SetSemiring({"tls"})
        with pytest.raises(CapabilityError, match="outside the universe"):
            to_semiring_value(paper_policy, semiring)

    def test_semiring_composition_matches_policy_composition(
        self, paper_policy
    ):
        semiring = SetSemiring(UNIVERSE)
        client = policy("client", must={"gzip"}, may={"http-auth"})
        floor, ceiling, ok = compose_in_semiring(
            [paper_policy, client], semiring
        )
        verdict = compose_policies([paper_policy, client])
        assert ok == verdict.compatible
        assert floor == verdict.combined.must
        assert ceiling == verdict.combined.ceiling

    def test_semiring_detects_incompatibility(self, paper_policy):
        semiring = SetSemiring(UNIVERSE)
        client = policy("client", must={"tls"})
        _, _, ok = compose_in_semiring([paper_policy, client], semiring)
        assert not ok
