"""Time-dependent concession tactics and the alternating-offers protocol."""

import pytest

from repro.constraints import Polynomial, integer_variable, polynomial_constraint
from repro.sccp import interval
from repro.soa.strategies import (
    StrategyError,
    Tactic,
    alternating_offers,
    boulware,
    conceder,
    concession_index,
)


@pytest.fixture
def ladders(weighted):
    """Provider relaxes x+5 → x+3 → x; client stiffens its demands the
    other way (2x → x)."""
    x = integer_variable("x", 10)

    def poly(slope, const=0):
        return polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": slope}, const)
        )

    provider_ladder = [poly(1, 5), poly(1, 3), poly(1, 0)]
    client_ladder = [poly(2, 0), poly(1, 0)]
    return provider_ladder, client_ladder


class TestConcessionIndex:
    def test_starts_strict_ends_lax(self):
        assert concession_index(0, 10, 5, beta=1.0) == 0
        assert concession_index(10, 10, 5, beta=1.0) == 4

    def test_linear_midpoint(self):
        assert concession_index(5, 10, 5, beta=1.0) == 2

    def test_boulware_holds_longer(self):
        linear = concession_index(5, 10, 5, beta=1.0)
        stubborn = concession_index(5, 10, 5, beta=0.2)
        assert stubborn < linear

    def test_conceder_caves_earlier(self):
        linear = concession_index(2, 10, 5, beta=1.0)
        eager = concession_index(2, 10, 5, beta=4.0)
        assert eager > linear

    def test_monotone_in_time(self):
        for beta in (0.3, 1.0, 3.0):
            indices = [
                concession_index(t, 20, 6, beta) for t in range(21)
            ]
            assert indices == sorted(indices)

    def test_parameter_validation(self):
        with pytest.raises(StrategyError):
            concession_index(0, 0, 3, 1.0)
        with pytest.raises(StrategyError):
            concession_index(0, 5, 0, 1.0)
        with pytest.raises(StrategyError):
            concession_index(0, 5, 3, 0.0)


class TestTactic:
    def test_ladder_monotonicity_check(self, ladders):
        provider_ladder, _ = ladders
        tactic = Tactic("provider", provider_ladder)
        assert tactic.validate_ladder_monotone()

    def test_non_monotone_ladder_detected(self, ladders, weighted):
        provider_ladder, _ = ladders
        backwards = Tactic("oops", list(reversed(provider_ladder)))
        assert not backwards.validate_ladder_monotone()

    def test_factories_enforce_temperament(self, ladders):
        provider_ladder, _ = ladders
        with pytest.raises(StrategyError):
            boulware("p", provider_ladder, beta=2.0)
        with pytest.raises(StrategyError):
            conceder("p", provider_ladder, beta=0.5)

    def test_empty_ladder_rejected(self):
        with pytest.raises(StrategyError):
            Tactic("p", [])


class TestAlternatingOffers:
    def test_agreement_reached_before_deadline(self, weighted, ladders):
        provider_ladder, client_ladder = ladders
        provider = Tactic(
            "P",
            provider_ladder,
            beta=1.0,
            acceptance=interval(weighted, lower=10.0, upper=0.0),
        )
        client = Tactic(
            "C",
            client_ladder,
            beta=1.0,
            acceptance=interval(weighted, lower=4.0, upper=0.0),
        )
        outcome = alternating_offers(weighted, [provider, client], deadline=10)
        assert outcome.agreed
        # the strict opening offers cost 5 (> 4): some concession needed
        assert outcome.at_step > 0
        assert weighted.geq(outcome.agreed_level, 4.0)

    def test_conceder_agrees_no_later_than_boulware(self, weighted, ladders):
        provider_ladder, client_ladder = ladders
        client_acc = interval(weighted, lower=4.0, upper=0.0)

        def run(provider_tactic):
            client = Tactic("C", client_ladder, beta=1.0, acceptance=client_acc)
            return alternating_offers(
                weighted, [provider_tactic, client], deadline=20
            )

        eager = run(conceder("P", provider_ladder, beta=4.0))
        stubborn = run(boulware("P", provider_ladder, beta=0.2))
        assert eager.agreed and stubborn.agreed
        assert eager.at_step <= stubborn.at_step

    def test_free_store_only_at_the_deadline(self, weighted, ladders):
        """A client demanding a zero-cost store forces full concession:
        agreement lands exactly at the deadline, when both ladders hit
        their laxest rung (merged cost 0 at x = 0)."""
        provider_ladder, client_ladder = ladders
        hardnosed = Tactic(
            "C",
            client_ladder,
            acceptance=interval(weighted, lower=0.0, upper=0.0),
        )
        provider = Tactic("P", provider_ladder)
        outcome = alternating_offers(weighted, [provider, hardnosed], 8)
        assert outcome.agreed
        assert outcome.at_step == 8
        assert outcome.agreed_level == 0.0
        assert outcome.concession_curve() == [
            5.0, 5.0, 5.0, 5.0, 3.0, 3.0, 3.0, 3.0, 0.0
        ]

    def test_unsatisfiable_acceptance_never_agrees(self, weighted, ladders):
        provider_ladder, _ = ladders
        x = integer_variable("x", 10)
        from repro.constraints import polynomial_constraint, Polynomial

        pricey = polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 1}, 50)
        )
        greedy_client = Tactic(
            "C",
            [pricey],
            acceptance=interval(weighted, lower=4.0, upper=0.0),
        )
        provider = Tactic("P", provider_ladder)
        outcome = alternating_offers(weighted, [provider, greedy_client], 10)
        assert not outcome.agreed
        assert outcome.agreement is None

    def test_concession_curve_is_recorded(self, weighted, ladders):
        provider_ladder, client_ladder = ladders
        provider = Tactic("P", provider_ladder)
        client = Tactic(
            "C",
            client_ladder,
            acceptance=interval(weighted, lower=4.0, upper=0.0),
        )
        outcome = alternating_offers(weighted, [provider, client], 10)
        curve = outcome.concession_curve()
        assert len(curve) == len(outcome.rounds)
        # weighted consistencies cannot get worse as policies relax
        assert curve == sorted(curve, reverse=True)

    def test_needs_parties(self, weighted):
        with pytest.raises(StrategyError):
            alternating_offers(weighted, [], 5)
