"""Broker-side SLO analytics: advertised-level queries, the
unachievable-SLO precheck on composition negotiation, full reports over
the market, the default-off matchmaking penalty, and the registry's
delivered-quality observation ledger."""

import pytest

from repro.dependability.metrics import wilson_lower_bound
from repro.sccp import interval
from repro.semirings import ProbabilisticSemiring
from repro.soa import (
    Broker,
    BrokerError,
    ClientRequest,
    ExecutionReport,
    MessageBus,
    QoSDocument,
    QoSPolicy,
    RegistryError,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)
from repro.soa.service import InvocationOutcome


def publish(registry, provider, level, operation):
    registry.publish(
        ServiceDescription(
            service_id=f"{operation}-{provider}",
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(attribute="reliability", constant=level)
                ],
            ),
        )
    )


@pytest.fixture
def market():
    registry = ServiceRegistry()
    publish(registry, "A", 0.99, "red")
    publish(registry, "B", 0.95, "red")
    publish(registry, "C", 0.90, "bw")
    publish(registry, "D", 0.98, "bw")
    return registry


class TestAdvertisedLevels:
    def test_every_published_offer_surfaces(self, market):
        levels = Broker(market).advertised_levels("reliability")
        assert levels == {
            "red-A": pytest.approx(0.99),
            "red-B": pytest.approx(0.95),
            "bw-C": pytest.approx(0.90),
            "bw-D": pytest.approx(0.98),
        }

    def test_operation_filter(self, market):
        levels = Broker(market).advertised_levels(
            "reliability", operation="red"
        )
        assert set(levels) == {"red-A", "red-B"}


class TestCompositionPrecheck:
    def test_achievable_target_negotiates_normally(self, market):
        broker = Broker(market)
        sla, plan, diagnostics = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability", slo_target=0.95
        )
        assert sla is not None
        assert sla.service_ids == ("red-A", "bw-D")
        assert "slo" not in diagnostics

    def test_unachievable_target_rejected_before_solving(self, market):
        bus = MessageBus()
        broker = Broker(market, bus=bus)
        sla, plan, diagnostics = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability", slo_target=0.999
        )
        assert sla is None and plan is None
        assert diagnostics["blevel"] is None
        assert diagnostics["evaluations"] == 0  # the solve was skipped
        verdict = diagnostics["slo"]
        assert verdict["achievable"] is False
        # Even the best pair only reaches 0.99 × 0.98.
        assert verdict["bound"] == pytest.approx(0.99 * 0.98)
        assert verdict["remediations"], "rejection must be actionable"
        assert all(
            r["detail"] for r in verdict["remediations"]
        )
        assert "composition-slo-reject" in bus.journal_kinds()

    def test_redundant_choose_mode_threads_through(self, market):
        broker = Broker(market)
        # worst-case folding of a single-slot plan is just the best
        # offer; the precheck target sits between the two readings.
        sla, _, diagnostics = broker.negotiate_composition(
            "client",
            ["red", "bw"],
            "reliability",
            slo_target=0.999,
            slo_choose="redundant",
        )
        assert sla is None
        assert diagnostics["slo"]["choose"] == "redundant"

    def test_no_target_means_no_precheck(self, market):
        sla, plan, diagnostics = Broker(market).negotiate_composition(
            "client", ["red", "bw"], "reliability"
        )
        assert sla is not None
        assert "slo" not in diagnostics


class TestSloReport:
    def test_report_over_published_offers(self, market):
        broker = Broker(market)
        _, plan, _ = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability"
        )
        report = broker.slo_report(
            plan, 0.9, attribute="reliability", use_observations=False
        )
        assert report.achievable
        assert report.verdict.bound == pytest.approx(0.99 * 0.98)

    def test_observation_ledger_discounts_published(self, market):
        market.record_observations("red-A", attempts=200, failures=40)
        broker = Broker(market)
        _, plan, _ = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability"
        )
        report = broker.slo_report(plan, 0.9, attribute="reliability")
        by_id = {lv.service_id: lv for lv in report.levels}
        lower = wilson_lower_bound(160, 200)
        assert by_id["red-A"].informative
        assert by_id["red-A"].effective == pytest.approx(
            min(lower, 0.99) * 0.9
        )
        assert not by_id["bw-D"].informative
        assert not report.achievable  # evidence says A is much worse

    def test_unknown_service_in_plan_raises(self, market):
        from repro.soa import pipeline

        with pytest.raises(Exception):
            Broker(market).slo_report(pipeline("ghost"), 0.9)


class TestSloPenalty:
    def request(self, floor=0.9):
        semiring = ProbabilisticSemiring()
        return ClientRequest(
            client="C",
            operation="red",
            attribute="reliability",
            acceptance=interval(semiring, lower=floor, upper=1.0),
        )

    def test_invalid_penalty_rejected(self, market):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(BrokerError, match="slo_penalty"):
                Broker(market, slo_penalty=bad)

    def test_default_off_is_bit_identical(self, market):
        plain = Broker(market).negotiate(self.request())
        assert plain.success
        # The seam exists but defaults off: same winner, same level,
        # same evaluation order and values.
        again = Broker(market, slo_penalty=None).negotiate(self.request())
        assert again.sla.providers == plain.sla.providers
        assert again.sla.agreed_level == plain.sla.agreed_level
        assert [
            (e.provider, e.blevel) for e in again.evaluations
        ] == [(e.provider, e.blevel) for e in plain.evaluations]

    def test_penalty_on_keeps_the_unflagged_best(self, market):
        # Floor 0.9 → budget 0.1.  red-B spends (1-0.95)/0.1 = 50% of
        # the budget and is set aside; red-A (10%) survives and wins.
        result = Broker(market, slo_penalty=0.3).negotiate(
            self.request(floor=0.9)
        )
        assert result.success
        assert result.sla.providers == ("A",)

    def test_all_flagged_falls_back_to_full_pool(self, market):
        # Floor 0.989 → even red-A spends ~91% of the budget; with every
        # candidate flagged the penalty must not turn acceptance into
        # rejection.
        result = Broker(market, slo_penalty=0.3).negotiate(
            self.request(floor=0.989)
        )
        assert result.success
        assert result.sla.providers == ("A",)

    def test_non_probability_requests_skip_the_penalty(self, market):
        # No acceptance floor → no budget target → plain scan.
        request = ClientRequest(
            client="C", operation="red", attribute="reliability"
        )
        result = Broker(market, slo_penalty=0.3).negotiate(request)
        assert result.success
        assert result.sla.providers == ("A",)


class TestObservationLedger:
    def test_record_outcome_counts(self, market):
        market.record_outcome("red-A", True)
        market.record_outcome("red-A", False)
        window = market.observation_window("red-A")
        assert (window.attempts, window.failures) == (2, 1)

    def test_record_observations_validates(self, market):
        with pytest.raises(RegistryError):
            market.record_observations("red-A", attempts=2, failures=3)
        with pytest.raises(RegistryError):
            market.record_observations("red-A", attempts=-1, failures=0)

    def test_ingest_report_folds_outcomes(self, market):
        report = ExecutionReport(
            tick=0,
            success=False,
            latency_ms=1.0,
            outcomes=[
                InvocationOutcome("red-A", True, 1.0),
                InvocationOutcome("bw-C", False, 1.0),
            ],
        )
        assert market.ingest_report(report) == 2
        assert market.observation_window("bw-C").failures == 1
        assert market.observation_windows().keys() == {"red-A", "bw-C"}

    def test_unknown_service_reads_empty_window(self, market):
        window = market.observation_window("ghost")
        assert (window.attempts, window.failures) == (0, 0)

    def test_ledger_survives_unpublication(self, market):
        market.record_outcome("red-A", False)
        market.unpublish("red-A")
        assert market.observation_window("red-A").attempts == 1
