"""Broker edge paths: failed confirmations, semiring tie-breaks,
update-style repeated negotiations."""


from repro.constraints import Polynomial, integer_variable, polynomial_constraint
from repro.sccp import interval
from repro.soa import (
    Broker,
    ClientRequest,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)


def publish_cost(registry, provider, base, operation="op"):
    registry.publish(
        ServiceDescription(
            service_id=f"{operation}-{provider}",
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(
                        attribute="cost",
                        variables={"x": range(0, 6)},
                        polynomial=Polynomial.linear({"x": 1.0}, base),
                    )
                ],
            ),
        )
    )


class TestConfirmationPaths:
    def test_failed_confirmation_blocks_sla(self, weighted):
        """The nmsccp confirmation can fail even when the SCSP screen
        passed — here the acceptance's *upper* bound requires the store
        to stay expensive, which the merged store violates."""
        registry = ServiceRegistry()
        publish_cost(registry, "P", base=1.0)
        x = integer_variable("x", 5)
        requirement = polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 1.0})
        )
        request = ClientRequest(
            client="C",
            operation="op",
            attribute="cost",
            requirements=[requirement],
            # best allowed 3h: merged consistency is 1h — "too good",
            # which only the interval check sees
            acceptance=interval(weighted, lower=10.0, upper=3.0),
        )
        broker = Broker(registry)
        result = broker.negotiate(request, verify_scheduler_independence=True)
        assert not result.success
        assert result.sla is None

    def test_confirmation_outcome_reports_failure_detail(self, weighted):
        registry = ServiceRegistry()
        publish_cost(registry, "P", base=1.0)
        x = integer_variable("x", 5)
        requirement = polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 1.0})
        )
        request = ClientRequest(
            client="C",
            operation="op",
            attribute="cost",
            requirements=[requirement],
            acceptance=interval(weighted, lower=10.0, upper=3.0),
        )
        result = Broker(registry).negotiate(
            request, verify_scheduler_independence=True
        )
        # the evaluations are still reported for diagnosis
        assert result.evaluations
        assert not result.evaluations[0].accepted


class TestRepeatedNegotiation:
    def test_sla_ids_and_clock_advance(self, weighted):
        registry = ServiceRegistry()
        publish_cost(registry, "P", base=1.0)
        broker = Broker(registry)
        request = ClientRequest(client="C", operation="op", attribute="cost")
        first = broker.negotiate(request)
        second = broker.negotiate(request)
        assert first.success and second.success
        assert second.sla.sla_id > first.sla.sla_id
        assert second.sla.created_at > first.sla.created_at
        assert len(broker.slas) == 2

    def test_tie_break_keeps_first_best(self, weighted):
        registry = ServiceRegistry()
        publish_cost(registry, "A", base=2.0)
        publish_cost(registry, "B", base=2.0)  # identical offer
        broker = Broker(registry)
        result = broker.negotiate(
            ClientRequest(client="C", operation="op", attribute="cost")
        )
        assert result.success
        # deterministic: the first candidate in registry order wins ties
        assert result.sla.providers == ("A",)
