"""Capability-aware service queries (Sec. 8's security-policy vision)."""

import pytest

from repro.soa import (
    QoSDocument,
    QoSPolicy,
    QueryEngine,
    ServiceDescription,
    ServiceInterface,
    ServiceQuery,
    ServiceRegistry,
    policy,
)


def publish(registry, service_id, reliability, capabilities=None):
    registry.publish(
        ServiceDescription(
            service_id=service_id,
            name="transfer",
            provider=f"prov-{service_id}",
            interface=ServiceInterface(operation="transfer"),
            qos=QoSDocument(
                service_name="transfer",
                provider=f"prov-{service_id}",
                policies=[
                    QoSPolicy(attribute="reliability", constant=reliability)
                ],
            ),
            capabilities=capabilities,
        )
    )


@pytest.fixture
def secure_registry():
    registry = ServiceRegistry()
    # the paper's example: MUST http-auth, MAY gzip
    publish(
        registry,
        "secure",
        0.95,
        policy("secure", must={"http-auth"}, may={"gzip"}),
    )
    # a legacy service that only speaks plain http
    publish(
        registry,
        "legacy",
        0.99,
        policy("legacy", must={"plain-http"}),
    )
    # a service with no published policy at all
    publish(registry, "agnostic", 0.90)
    return registry


class TestCapabilityFiltering:
    def test_without_client_policy_everything_matches(self, secure_registry):
        engine = QueryEngine(secure_registry)
        answer = engine.query(
            ServiceQuery(attribute="reliability", operation="transfer")
        )
        assert len(answer.matches) == 3

    def test_client_requiring_auth_excludes_legacy(self, secure_registry):
        engine = QueryEngine(secure_registry)
        client = policy("client", must={"http-auth"}, may={"gzip"})
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                operation="transfer",
                client_capabilities=client,
            )
        )
        services = {m.plan.services()[0] for m in answer.matches}
        assert services == {"secure", "agnostic"}

    def test_incompatible_client_matches_only_unconstrained(
        self, secure_registry
    ):
        engine = QueryEngine(secure_registry)
        # forbids http-auth (not even MAY) → 'secure' is out; demands
        # plain-http → compatible with 'legacy' and the agnostic one
        client = policy("client", must={"plain-http"})
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                operation="transfer",
                client_capabilities=client,
            )
        )
        services = {m.plan.services()[0] for m in answer.matches}
        assert services == {"legacy", "agnostic"}

    def test_best_compatible_wins_despite_better_incompatible(
        self, secure_registry
    ):
        engine = QueryEngine(secure_registry)
        client = policy("client", must={"http-auth"}, may={"gzip"})
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                operation="transfer",
                client_capabilities=client,
            )
        )
        # legacy (0.99) is out: the 0.95 secure service ranks first
        assert answer.best.plan.services() == ["secure"]

    def test_filter_applies_to_every_pipeline_stage(self):
        registry = ServiceRegistry()
        registry.publish(
            ServiceDescription(
                service_id="stage1",
                name="s1",
                provider="p1",
                interface=ServiceInterface(
                    operation="s1", inputs=("a",), outputs=("b",)
                ),
                qos=QoSDocument(
                    service_name="s1",
                    provider="p1",
                    policies=[
                        QoSPolicy(attribute="reliability", constant=0.99)
                    ],
                ),
                capabilities=policy("s1", must={"http-auth"}),
            )
        )
        registry.publish(
            ServiceDescription(
                service_id="stage2",
                name="s2",
                provider="p2",
                interface=ServiceInterface(
                    operation="s2", inputs=("b",), outputs=("c",)
                ),
                qos=QoSDocument(
                    service_name="s2",
                    provider="p2",
                    policies=[
                        QoSPolicy(attribute="reliability", constant=0.99)
                    ],
                ),
                capabilities=policy("s2", must={"plain-http"}),
            )
        )
        engine = QueryEngine(registry)
        client = policy("client", must={"http-auth"}, may={"plain-http"})
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("c",),
                consumes=("a",),
                max_chain=2,
                client_capabilities=client,
            )
        )
        # stage1 allows only http-auth, so stage2's plain-http MUST falls
        # outside the composed ceiling: the pipeline is incompatible even
        # though each stage individually suits the client.
        assert not answer.satisfiable
