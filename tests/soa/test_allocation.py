"""Allocation policies: greedy bit-identity, fair max-min, round metadata.

The policy seam's contract has two halves.  ``greedy`` must be invisible:
agreements served through :meth:`Broker.negotiate_round` are bit-identical
to sequential :meth:`Broker.negotiate` calls — same providers, same agreed
levels, same service ids — with only the :class:`AllocationInfo`
annotation added.  ``fair`` must actually buy fairness: on a contention
market where every client's individually-best choice is the same
provider, the joint lexicographic solve spreads sessions so Jain's index
and the worst-off client's realized satisfaction both beat greedy.
"""

import pytest

from repro.runtime import (
    contention_request_factory,
    jain_index,
    synthesize_contention_market,
)
from repro.semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    LexicographicSemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    SetSemiring,
    WeightedSemiring,
)
from repro.soa import (
    AllocationError,
    AllocationInfo,
    AllocationPolicy,
    Broker,
    BrokerError,
    FairAllocation,
    GreedyAllocation,
    resolve_allocation_policy,
    satisfaction_score,
)

CLIENTS = 12


@pytest.fixture
def contention_market():
    """Three providers at 0.9 / 0.8 / 0.7 constant fuzzy reliability."""
    return synthesize_contention_market(providers=3)


@pytest.fixture
def contention_requests():
    factory = contention_request_factory()
    return [factory(f"c{i}", i) for i in range(CLIENTS)]


def realized(results):
    return [r.allocation.realized_satisfaction for r in results]


# ----------------------------------------------------------------------
# satisfaction_score: the [0,1] bridge between semiring levels and Jain
# ----------------------------------------------------------------------


class TestSatisfactionScore:
    def test_boolean_endpoints(self):
        boolean = BooleanSemiring()
        assert satisfaction_score(boolean, True) == 1.0
        assert satisfaction_score(boolean, False) == 0.0

    def test_weighted_costs(self):
        weighted = WeightedSemiring()
        assert satisfaction_score(weighted, 0.0) == 1.0
        assert satisfaction_score(weighted, 1.0) == 0.5
        assert satisfaction_score(weighted, float("inf")) == 0.0

    def test_bounded_weighted_normalizes_by_cap(self):
        bounded = BoundedWeightedSemiring(cap=10.0)
        assert satisfaction_score(bounded, 0.0) == 1.0
        assert satisfaction_score(bounded, 5.0) == 0.5
        assert satisfaction_score(bounded, 10.0) == 0.0

    def test_fuzzy_and_probabilistic_are_identity(self):
        assert satisfaction_score(FuzzySemiring(), 0.7) == 0.7
        assert satisfaction_score(ProbabilisticSemiring(), 0.3) == 0.3

    def test_composites_take_worst_component(self):
        product = ProductSemiring([FuzzySemiring(), WeightedSemiring()])
        assert satisfaction_score(product, (0.9, 1.0)) == 0.5
        lex = LexicographicSemiring(
            [FuzzySemiring(), ProbabilisticSemiring()]
        )
        assert satisfaction_score(lex, (0.8, 0.4)) == 0.4

    def test_unknown_semirings_interpret_endpoints_only(self):
        setbased = SetSemiring({"r", "w"})
        assert satisfaction_score(setbased, setbased.zero) == 0.0
        assert satisfaction_score(setbased, setbased.one) == 1.0
        assert satisfaction_score(setbased, frozenset({"r"})) == 0.5

    def test_monotone_in_the_total_order(self):
        weighted = WeightedSemiring()
        levels = [0.0, 0.5, 2.0, 10.0, float("inf")]
        scores = [satisfaction_score(weighted, level) for level in levels]
        assert scores == sorted(scores, reverse=True)


# ----------------------------------------------------------------------
# Policy resolution and configuration
# ----------------------------------------------------------------------


class TestPolicyResolution:
    def test_names_resolve(self):
        assert isinstance(
            resolve_allocation_policy("greedy"), GreedyAllocation
        )
        assert isinstance(resolve_allocation_policy("fair"), FairAllocation)

    def test_instances_pass_through(self):
        policy = FairAllocation(gamma=0.8)
        assert resolve_allocation_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(AllocationError, match="known policies"):
            resolve_allocation_policy("round-robin")

    def test_wrong_type_rejected(self):
        with pytest.raises(AllocationError, match="must be a name"):
            resolve_allocation_policy(42)

    def test_fair_validates_gamma_and_limit(self):
        with pytest.raises(AllocationError, match="gamma"):
            FairAllocation(gamma=0.0)
        with pytest.raises(AllocationError, match="gamma"):
            FairAllocation(gamma=1.5)
        with pytest.raises(AllocationError, match="joint_limit"):
            FairAllocation(joint_limit=0)

    def test_base_policy_is_abstract(self, contention_market):
        with pytest.raises(NotImplementedError):
            AllocationPolicy().allocate(Broker(contention_market), [])

    def test_rounds_without_policy_rejected(self, contention_market):
        from repro.runtime import BatchConfig

        with pytest.raises(BrokerError, match="allocation_policy"):
            Broker(contention_market, rounds=BatchConfig())


# ----------------------------------------------------------------------
# Greedy: the legacy path behind the seam, bit for bit
# ----------------------------------------------------------------------


class TestGreedyBitIdentity:
    def test_round_matches_sequential_negotiate(
        self, contention_market, contention_requests
    ):
        legacy = Broker(contention_market, name="legacy")
        seamed = Broker(contention_market, name="seamed")
        expected = [
            legacy.negotiate(request) for request in contention_requests
        ]
        actual = seamed.negotiate_round(contention_requests)
        assert len(actual) == len(expected)
        for old, new in zip(expected, actual):
            assert new.success == old.success
            assert new.sla.providers == old.sla.providers
            assert new.sla.agreed_level == old.sla.agreed_level
            assert new.sla.service_ids == old.sla.service_ids

    def test_greedy_piles_onto_best_provider(
        self, contention_market, contention_requests
    ):
        broker = Broker(contention_market, allocation_policy="greedy")
        results = broker.negotiate_round(contention_requests)
        assert {r.sla.providers[0] for r in results} == {"P0"}

    def test_annotation_attached(
        self, contention_market, contention_requests
    ):
        broker = Broker(contention_market)
        results = broker.negotiate_round(
            contention_requests[:4], round_id=7
        )
        for rank, result in enumerate(results):
            info = result.allocation
            assert isinstance(info, AllocationInfo)
            assert info.policy == "greedy"
            assert info.round_id == 7
            assert info.round_size == 4
            assert info.provider == "P0"
            assert info.rank == rank
            assert info.provider_load == 4
            assert info.satisfaction == pytest.approx(0.9)
            assert info.realized_satisfaction == pytest.approx(
                0.9 * 0.9**rank
            )

    def test_plain_negotiate_carries_no_annotation(
        self, contention_market, contention_requests
    ):
        result = Broker(contention_market).negotiate(
            contention_requests[0]
        )
        assert result.allocation is None


# ----------------------------------------------------------------------
# Fair: the joint lexicographic solve actually buys fairness
# ----------------------------------------------------------------------


class TestFairAllocation:
    def test_spreads_load_across_providers(
        self, contention_market, contention_requests
    ):
        broker = Broker(contention_market, allocation_policy="fair")
        results = broker.negotiate_round(contention_requests)
        assert all(r.success for r in results)
        by_provider = {}
        for result in results:
            provider = result.sla.providers[0]
            by_provider[provider] = by_provider.get(provider, 0) + 1
        # All three providers carry load; nobody hoards the round.
        assert set(by_provider) == {"P0", "P1", "P2"}
        assert max(by_provider.values()) <= 5

    def test_beats_greedy_on_jain_and_min(
        self, contention_market, contention_requests
    ):
        greedy = Broker(
            contention_market,
            allocation_policy="greedy",
            name="greedy-broker",
        ).negotiate_round(contention_requests)
        fair = Broker(
            contention_market,
            allocation_policy="fair",
            name="fair-broker",
        ).negotiate_round(contention_requests)
        jain_greedy = jain_index(realized(greedy))
        jain_fair = jain_index(realized(fair))
        assert jain_fair > jain_greedy + 0.05
        assert jain_fair > 0.95
        assert min(realized(fair)) > min(realized(greedy))
        assert min(realized(fair)) >= 0.5

    def test_cohort_splitting_preserves_spread(
        self, contention_market, contention_requests
    ):
        # joint_limit=2 forces six cohorts; carried loads must still
        # steer later cohorts away from saturated providers.
        broker = Broker(
            contention_market,
            allocation_policy=FairAllocation(joint_limit=2),
        )
        results = broker.negotiate_round(contention_requests)
        assert len(results) == len(contention_requests)
        providers = {r.sla.providers[0] for r in results}
        assert providers == {"P0", "P1", "P2"}
        assert jain_index(realized(results)) > 0.9

    def test_dense_and_scsp_engines_agree(
        self, contention_market, contention_requests
    ):
        # The vectorized plane evaluation and the reference
        # FunctionConstraint-through-solve() formulation optimize the
        # same ⟨worst, welfare⟩ objective — allocations must agree.
        dense = Broker(
            contention_market,
            allocation_policy=FairAllocation(joint_solver="dense"),
            name="dense-broker",
        ).negotiate_round(contention_requests)
        scsp = Broker(
            contention_market,
            allocation_policy=FairAllocation(joint_solver="scsp"),
            name="scsp-broker",
        ).negotiate_round(contention_requests)
        assert sorted(realized(dense)) == pytest.approx(
            sorted(realized(scsp))
        )
        loads = {}
        for result in dense:
            provider = result.sla.providers[0]
            loads[provider] = loads.get(provider, 0) + 1
        scsp_loads = {}
        for result in scsp:
            provider = result.sla.providers[0]
            scsp_loads[provider] = scsp_loads.get(provider, 0) + 1
        assert loads == scsp_loads

    def test_unknown_joint_solver_rejected(self):
        with pytest.raises(AllocationError, match="joint_solver"):
            FairAllocation(joint_solver="quantum")

    def test_cohort_packer_respects_row_cap(self, contention_market):
        from repro.soa.allocation import MAX_JOINT_ROWS, _Member

        policy = FairAllocation(joint_limit=64)

        def member(width):
            stub = _Member(
                index=0,
                request=None,
                semiring=None,
                evaluations=[],
                accepted=[object()] * width,
            )
            return stub

        cohorts = policy._pack_cohorts([member(64) for _ in range(6)])
        for cohort in cohorts:
            rows = 1
            for m in cohort:
                rows *= len(m.accepted)
            assert rows <= MAX_JOINT_ROWS

    def test_uncontended_sessions_keep_best_provider(
        self, contention_market
    ):
        # A singleton round has no contention: fair == greedy choice.
        factory = contention_request_factory()
        broker = Broker(contention_market, allocation_policy="fair")
        [result] = broker.negotiate_round([factory("solo", 0)])
        assert result.sla.providers == ("P0",)
        assert result.allocation.realized_satisfaction == pytest.approx(
            0.9
        )

    def test_failure_details_match_legacy_path(self, contention_market):
        from repro.soa import ClientRequest

        factory = contention_request_factory()
        missing = ClientRequest(
            client="c0", operation="teleport", attribute="fuzzy-reliability"
        )
        broker = Broker(contention_market, allocation_policy="fair")
        legacy = Broker(contention_market, name="legacy")
        mixed = broker.negotiate_round([missing, factory("c1", 1)])
        assert len(mixed) == 2
        assert not mixed[0].success
        assert mixed[0].detail == legacy.negotiate(missing).detail
        assert mixed[0].allocation.policy == "fair"
        assert mixed[1].success

    def test_slas_recorded_like_legacy(
        self, contention_market, contention_requests
    ):
        broker = Broker(contention_market, allocation_policy="fair")
        results = broker.negotiate_round(contention_requests[:6])
        recorded = {sla.sla_id for sla in broker.slas.active()}
        assert {r.sla.sla_id for r in results} <= recorded


# ----------------------------------------------------------------------
# serve_session routing
# ----------------------------------------------------------------------


class TestServeSession:
    def test_no_policy_is_plain_negotiate(
        self, contention_market, contention_requests
    ):
        broker = Broker(contention_market)
        result = broker.serve_session(contention_requests[0])
        assert result.success
        assert result.allocation is None

    def test_policy_routes_through_rounds(
        self, contention_market, contention_requests
    ):
        from repro.runtime import BatchConfig

        broker = Broker(
            contention_market,
            allocation_policy="fair",
            rounds=BatchConfig(window_ms=1.0, max_batch=1),
        )
        result = broker.serve_session(contention_requests[0])
        assert result.success
        assert result.allocation is not None
        assert result.allocation.policy == "fair"
        assert result.allocation.round_size == 1
