"""Services, pools and the UDDI-like registry."""

import pytest

from repro.soa import (
    QoSDocument,
    QoSPolicy,
    RegistryError,
    Service,
    ServiceDescription,
    ServiceError,
    ServiceInterface,
    ServicePool,
    ServiceRegistry,
)


def make_description(
    service_id="svc-1",
    operation="compress",
    provider="ACME",
    tags=(),
    attributes=("reliability",),
):
    return ServiceDescription(
        service_id=service_id,
        name=operation,
        provider=provider,
        interface=ServiceInterface(operation=operation),
        qos=QoSDocument(
            service_name=operation,
            provider=provider,
            policies=[
                QoSPolicy(attribute=a, constant=0.9) for a in attributes
            ],
        ),
        tags=tuple(tags),
    )


class TestDescriptions:
    def test_empty_id_rejected(self):
        with pytest.raises(ServiceError):
            make_description(service_id="")

    def test_qos_provider_must_match(self):
        qos = QoSDocument(service_name="x", provider="Other", policies=[])
        with pytest.raises(ServiceError, match="does not match"):
            ServiceDescription(
                service_id="s",
                name="x",
                provider="ACME",
                interface=ServiceInterface(operation="x"),
                qos=qos,
            )


class TestService:
    def test_reliable_service_always_succeeds(self):
        service = Service(make_description(), reliability=1.0, seed=1)
        outcomes = [service.invoke("data") for _ in range(20)]
        assert all(o.success for o in outcomes)
        assert service.observed_reliability == 1.0

    def test_unreliable_service_fails_sometimes(self):
        service = Service(make_description(), reliability=0.5, seed=7)
        outcomes = [service.invoke() for _ in range(200)]
        failures = sum(1 for o in outcomes if not o.success)
        assert 50 < failures < 150  # roughly half, seeded
        assert 0.25 < service.observed_reliability < 0.75

    def test_latency_within_jitter(self):
        service = Service(
            make_description(),
            base_latency_ms=10.0,
            latency_jitter_ms=2.0,
            seed=3,
        )
        for _ in range(50):
            outcome = service.invoke()
            assert 8.0 <= outcome.latency_ms <= 12.0

    def test_behaviour_computes_output(self):
        service = Service(
            make_description(), behaviour=lambda x: x * 2, seed=1
        )
        assert service.invoke(21).output == 42

    def test_invalid_reliability_rejected(self):
        with pytest.raises(ServiceError):
            Service(make_description(), reliability=1.5)

    def test_failed_invocation_reports_fault(self):
        service = Service(make_description(), reliability=0.0, seed=1)
        outcome = service.invoke()
        assert not outcome.success
        assert outcome.fault == "service-fault"
        assert outcome.output is None


class TestServicePool:
    def test_add_get(self):
        pool = ServicePool()
        service = Service(make_description(), seed=1)
        pool.add(service)
        assert pool.get("svc-1") is service
        assert "svc-1" in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self):
        pool = ServicePool()
        pool.add(Service(make_description(), seed=1))
        with pytest.raises(ServiceError, match="already"):
            pool.add(Service(make_description(), seed=2))

    def test_missing_lookup(self):
        with pytest.raises(ServiceError, match="no service"):
            ServicePool().get("ghost")


class TestRegistry:
    def test_publish_and_get(self):
        registry = ServiceRegistry()
        description = make_description()
        registry.publish(description)
        assert registry.get("svc-1") is description
        assert "svc-1" in registry
        assert len(registry) == 1

    def test_duplicate_publication_rejected(self):
        registry = ServiceRegistry()
        registry.publish(make_description())
        with pytest.raises(RegistryError, match="already published"):
            registry.publish(make_description())

    def test_find_by_operation(self):
        registry = ServiceRegistry()
        registry.publish(make_description("a", operation="compress"))
        registry.publish(make_description("b", operation="archive"))
        found = registry.find(operation="compress")
        assert [d.service_id for d in found] == ["a"]

    def test_find_by_provider_and_tag(self):
        registry = ServiceRegistry()
        registry.publish(
            make_description("a", provider="ACME", tags=("premium",))
        )
        registry.publish(make_description("b", provider="Globex"))
        assert [d.service_id for d in registry.find(provider="ACME")] == ["a"]
        assert [d.service_id for d in registry.find(tag="premium")] == ["a"]
        assert registry.find(provider="ACME", tag="nonexistent") == []

    def test_find_requires_attribute(self):
        registry = ServiceRegistry()
        registry.publish(make_description("a", attributes=("reliability",)))
        registry.publish(make_description("b", attributes=("cost",)))
        found = registry.find(requires_attribute="cost")
        assert [d.service_id for d in found] == ["b"]

    def test_find_intersects_criteria(self):
        registry = ServiceRegistry()
        registry.publish(make_description("a", operation="x", provider="P"))
        registry.publish(make_description("b", operation="x", provider="Q"))
        found = registry.find(operation="x", provider="Q")
        assert [d.service_id for d in found] == ["b"]

    def test_unpublish(self):
        registry = ServiceRegistry()
        registry.publish(make_description())
        removed = registry.unpublish("svc-1")
        assert removed.service_id == "svc-1"
        assert "svc-1" not in registry
        assert registry.find(operation="compress") == []
        with pytest.raises(RegistryError):
            registry.unpublish("svc-1")

    def test_operations_and_providers_listing(self):
        registry = ServiceRegistry()
        registry.publish(make_description("a", operation="x", provider="P"))
        registry.publish(make_description("b", operation="y", provider="Q"))
        assert registry.operations() == ["x", "y"]
        assert registry.providers() == ["P", "Q"]

    def test_results_sorted_by_service_id(self):
        registry = ServiceRegistry()
        registry.publish(make_description("z", operation="x"))
        registry.publish(make_description("a", operation="x"))
        found = registry.find(operation="x")
        assert [d.service_id for d in found] == ["a", "z"]


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLeases:
    def test_expired_lease_frees_the_id_for_re_registration(self):
        clock = ManualClock()
        registry = ServiceRegistry(clock=clock)
        registry.publish(make_description(provider="Old"), lease_s=5.0)
        clock.now = 6.0
        # Same id, new incarnation: the stale publication aged out.
        registry.publish(make_description(provider="New"))
        assert registry.get("svc-1").provider == "New"

    def test_lookup_after_expiry_raises(self):
        clock = ManualClock()
        registry = ServiceRegistry(clock=clock)
        registry.publish(make_description(), lease_s=1.0)
        assert "svc-1" in registry
        clock.now = 1.0  # expiry is inclusive: deadline <= now
        with pytest.raises(RegistryError, match="not published"):
            registry.get("svc-1")
        assert registry.find(operation="compress") == []
        assert len(registry) == 0

    def test_renewal_outlives_the_original_deadline(self):
        clock = ManualClock()
        registry = ServiceRegistry(clock=clock)
        registry.publish(make_description(), lease_s=2.0)
        clock.now = 1.5
        registry.renew_lease("svc-1", 2.0)
        clock.now = 3.0  # past the original deadline, inside the renewal
        assert registry.get("svc-1") is not None
        assert registry.lease_remaining("svc-1") == 0.5

    def test_renewing_an_unleased_publication_attaches_a_lease(self):
        clock = ManualClock()
        registry = ServiceRegistry(clock=clock)
        registry.publish(make_description())
        assert registry.lease_remaining("svc-1") is None
        registry.renew_lease("svc-1", 1.0)
        clock.now = 2.0
        assert "svc-1" not in registry

    def test_explicit_sweep_reports_the_expired_ids(self):
        clock = ManualClock()
        registry = ServiceRegistry(clock=clock)
        registry.publish(make_description("a", operation="x"), lease_s=1.0)
        registry.publish(make_description("b", operation="x"), lease_s=9.0)
        clock.now = 2.0
        assert registry.expire_leases() == ["a"]
        assert [d.service_id for d in registry.find(operation="x")] == ["b"]

    def test_bad_lease_values_rejected(self):
        registry = ServiceRegistry()
        with pytest.raises(RegistryError):
            registry.publish(make_description(), lease_s=0.0)
        registry.publish(make_description())
        with pytest.raises(RegistryError):
            registry.renew_lease("svc-1", -1.0)
        with pytest.raises(RegistryError, match="not published"):
            registry.renew_lease("ghost", 1.0)


class TestQuarantine:
    def test_quarantine_hides_every_publication_of_the_provider(self):
        registry = ServiceRegistry()
        registry.publish(make_description("a", provider="ACME"))
        registry.publish(
            make_description("b", operation="archive", provider="ACME")
        )
        registry.publish(make_description("c", provider="Globex"))
        registry.quarantine("ACME")
        assert [d.service_id for d in registry.find()] == ["c"]
        # Existing bindings still resolve; discovery alone is gated.
        assert registry.get("a").provider == "ACME"
        assert len(registry) == 3

    def test_reinstate_restores_discovery(self):
        registry = ServiceRegistry()
        registry.publish(make_description())
        registry.quarantine("ACME")
        registry.reinstate("ACME")
        assert [d.service_id for d in registry.find()] == ["svc-1"]
        assert registry.quarantined() == frozenset()

    def test_concurrent_health_flaps_are_idempotent(self):
        # Two health monitors (or a monitor racing a manual operator)
        # flapping the same provider must behave like set operations,
        # not counters: one reinstate undoes any number of quarantines.
        registry = ServiceRegistry()
        registry.publish(make_description())
        for _ in range(3):
            registry.quarantine("ACME")
        registry.reinstate("ACME")
        assert not registry.is_quarantined("ACME")
        assert [d.service_id for d in registry.find()] == ["svc-1"]
        registry.reinstate("ACME")  # reinstating a healthy provider: no-op
        assert not registry.is_quarantined("ACME")

    def test_include_unavailable_sees_quarantined_services(self):
        registry = ServiceRegistry()
        registry.publish(make_description())
        registry.quarantine("ACME")
        assert registry.find() == []
        found = registry.find(include_unavailable=True)
        assert [d.service_id for d in found] == ["svc-1"]


class TestGates:
    def test_any_refusing_gate_hides_the_description(self):
        registry = ServiceRegistry()
        registry.publish(make_description("a"))
        registry.publish(make_description("b", operation="archive"))
        registry.add_gate(lambda d: d.service_id != "a")
        assert [d.service_id for d in registry.find()] == ["b"]

    def test_gates_deduplicate_and_detach(self):
        registry = ServiceRegistry()
        registry.publish(make_description())

        def gate(description):
            return False

        registry.add_gate(gate)
        registry.add_gate(gate)
        assert registry.find() == []
        registry.remove_gate(gate)
        assert [d.service_id for d in registry.find()] == ["svc-1"]
        registry.remove_gate(gate)  # removing twice is a no-op
