"""Composition plans and per-attribute QoS aggregation."""

import pytest

from repro.soa import (
    AGGREGATION_RULES,
    AggregationRule,
    Choose,
    CompositionError,
    Invoke,
    Pipeline,
    Split,
    aggregate,
    aggregate_many,
    pipeline,
    plan_depth,
)


@pytest.fixture
def values():
    return {
        "reliability": {"a": 0.9, "b": 0.8, "c": 0.99},
        "cost": {"a": 5.0, "b": 3.0, "c": 10.0},
        "latency": {"a": 10.0, "b": 20.0, "c": 5.0},
    }


class TestPlanStructure:
    def test_pipeline_sugar(self):
        plan = pipeline("a", "b", "c")
        assert isinstance(plan, Pipeline)
        assert plan.services() == ["a", "b", "c"]

    def test_nested_plan_services_in_order(self):
        plan = Pipeline([Invoke("a"), Split([Invoke("b"), Invoke("c")])])
        assert plan.services() == ["a", "b", "c"]

    def test_describe_uses_pattern_symbols(self):
        plan = Pipeline([Invoke("a"), Choose([Invoke("b"), Invoke("c")])])
        text = plan.describe()
        assert "▶" in text and "⊕" in text

    def test_depth(self):
        assert plan_depth(Invoke("a")) == 1
        assert plan_depth(pipeline("a", "b")) == 2
        assert (
            plan_depth(Pipeline([Split([Invoke("a")]), Invoke("b")])) == 3
        )

    def test_empty_composite_rejected(self):
        with pytest.raises(CompositionError):
            Pipeline([])

    def test_plan_equality(self):
        assert pipeline("a", "b") == pipeline("a", "b")
        assert pipeline("a", "b") != pipeline("b", "a")


class TestAggregation:
    def test_reliability_multiplies_in_sequence(self, values):
        result = aggregate(pipeline("a", "b"), values["reliability"], "reliability")
        assert result == pytest.approx(0.72)

    def test_reliability_multiplies_in_split(self, values):
        plan = Split([Invoke("a"), Invoke("b")])
        result = aggregate(plan, values["reliability"], "reliability")
        assert result == pytest.approx(0.72)

    def test_reliability_choice_is_worst_case(self, values):
        plan = Choose([Invoke("a"), Invoke("b")])
        assert aggregate(plan, values["reliability"], "reliability") == 0.8

    def test_cost_adds_in_sequence(self, values):
        assert aggregate(pipeline("a", "b"), values["cost"], "cost") == 8.0

    def test_cost_split_pays_all_branches(self, values):
        plan = Split([Invoke("a"), Invoke("b")])
        assert aggregate(plan, values["cost"], "cost") == 8.0

    def test_cost_choice_budget_is_max(self, values):
        plan = Choose([Invoke("a"), Invoke("c")])
        assert aggregate(plan, values["cost"], "cost") == 10.0

    def test_latency_split_waits_for_slowest(self, values):
        plan = Split([Invoke("a"), Invoke("b")])
        assert aggregate(plan, values["latency"], "latency") == 20.0

    def test_latency_adds_in_sequence(self, values):
        assert (
            aggregate(pipeline("a", "b", "c"), values["latency"], "latency")
            == 35.0
        )

    def test_nested_aggregation(self, values):
        plan = Pipeline(
            [Invoke("a"), Split([Invoke("b"), Invoke("c")])]
        )
        # sequence(0.9, split(0.8, 0.99)) = 0.9 · (0.8 · 0.99)
        assert aggregate(
            plan, values["reliability"], "reliability"
        ) == pytest.approx(0.9 * 0.8 * 0.99)

    def test_missing_value_reported(self, values):
        with pytest.raises(CompositionError, match="no 'cost' value"):
            aggregate(pipeline("a", "zz"), values["cost"], "cost")

    def test_unknown_attribute_requires_explicit_rule(self, values):
        with pytest.raises(CompositionError, match="no aggregation rule"):
            aggregate(pipeline("a"), values["cost"], "jitter")

    def test_custom_rule(self, values):
        geometric = AggregationRule(
            sequence=lambda vs: min(vs),
            split=lambda vs: min(vs),
            choose=lambda vs: min(vs),
        )
        result = aggregate(
            pipeline("a", "b"), values["reliability"], "jitter", rule=geometric
        )
        assert result == 0.8

    def test_aggregate_many(self, values):
        results = aggregate_many(pipeline("a", "b"), values)
        assert results["cost"] == 8.0
        assert results["reliability"] == pytest.approx(0.72)

    def test_sequence_rule_matches_probabilistic_semiring(self, values):
        """The pipeline column of the rules table IS the semiring ×."""
        from repro.semirings import ProbabilisticSemiring

        semiring = ProbabilisticSemiring()
        plan = pipeline("a", "b", "c")
        via_rules = aggregate(plan, values["reliability"], "reliability")
        via_semiring = semiring.prod(values["reliability"].values())
        assert via_rules == pytest.approx(via_semiring)

    def test_cost_rule_matches_weighted_semiring(self, values):
        from repro.semirings import WeightedSemiring

        semiring = WeightedSemiring()
        plan = pipeline("a", "b", "c")
        via_rules = aggregate(plan, values["cost"], "cost")
        via_semiring = semiring.prod(values["cost"].values())
        assert via_rules == via_semiring

    def test_rules_table_covers_core_attributes(self):
        assert {"availability", "reliability", "cost", "latency"} <= set(
            AGGREGATION_RULES
        )
