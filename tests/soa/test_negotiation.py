"""Negotiation primitives: parties, fuzzy agreements, concessions."""

import pytest

from repro.constraints import FunctionConstraint, integer_variable
from repro.sccp import interval
from repro.soa import (
    Party,
    fuzzy_agreement,
    iterative_concession,
    merged_policy,
    negotiate,
)


@pytest.fixture
def curves(fuzzy):
    resource = integer_variable("r", 9, lower=1)
    provider = FunctionConstraint(
        fuzzy, (resource,), lambda r: (r - 1) / 8.0, name="Cp"
    )
    client = FunctionConstraint(
        fuzzy, (resource,), lambda r: (9 - r) / 8.0, name="Cc"
    )
    return resource, provider, client


class TestFuzzyAgreement:
    def test_fig5_intersection_level(self, curves):
        _, provider, client = curves
        combined, blevel = fuzzy_agreement(provider, client)
        assert blevel == 0.5

    def test_agreement_is_min_of_curves(self, curves):
        _, provider, client = curves
        combined, _ = fuzzy_agreement(provider, client)
        assert combined({"r": 3}) == min(2 / 8, 6 / 8)

    def test_agreement_point_is_crossing(self, curves):
        _, provider, client = curves
        combined, blevel = fuzzy_agreement(provider, client)
        winners = [
            a["r"] for a, v in combined.enumerate_values() if v == blevel
        ]
        assert winners == [5]


class TestNegotiate:
    def test_compatible_parties_agree(self, weighted, fig7):
        provider = Party("P1", [fig7["c4"]])
        client = Party(
            "C", [fig7["c3"]], interval(weighted, lower=10.0, upper=0.0)
        )
        outcome = negotiate([provider, client], weighted)
        assert outcome.success
        assert outcome.agreed_level == 5.0
        assert outcome.scheduler_independent is True
        assert outcome.parties == ("P1", "C")

    def test_incompatible_acceptance_fails(self, weighted, fig7):
        provider = Party("P1", [fig7["c4"]])
        client = Party(
            "C", [fig7["c3"]], interval(weighted, lower=4.0, upper=1.0)
        )
        outcome = negotiate([provider, client], weighted)
        assert not outcome.success
        assert outcome.scheduler_independent is True  # fails on every schedule

    def test_trace_available(self, weighted, fig7):
        outcome = negotiate([Party("P1", [fig7["c4"]])], weighted)
        assert outcome.trace is not None
        assert len(outcome.trace) >= 1

    def test_skip_exploration(self, weighted, fig7):
        outcome = negotiate(
            [Party("P1", [fig7["c4"]])],
            weighted,
            verify_scheduler_independence=False,
        )
        assert outcome.scheduler_independent is None

    def test_no_parties_rejected(self, weighted):
        with pytest.raises(ValueError):
            negotiate([], weighted)

    def test_party_without_constraints_succeeds_trivially(self, weighted):
        outcome = negotiate([Party("idle", [])], weighted)
        assert outcome.success
        assert outcome.agreed_level == weighted.one


class TestIterativeConcession:
    def test_accepts_first_good_offer(self, weighted, fig7):
        offers = [fig7["c4"], fig7["c1"], fig7["c3"]]  # x+5, x+3, 2x
        demand = fig7["c3"]
        acceptance = interval(weighted, lower=4.0, upper=0.0)
        index, trail = iterative_concession(
            weighted, offers, demand, acceptance
        )
        # offer0: (x+5 ⊗ 2x)⇓∅ = 5 ∉ [0,4]; offer1: (x+3 ⊗ 2x)⇓∅ = 3 ✓
        assert index == 1
        assert trail == [5.0, 3.0]

    def test_no_acceptable_offer(self, weighted, fig7):
        offers = [fig7["c4"]]
        acceptance = interval(weighted, lower=2.0, upper=0.0)
        index, trail = iterative_concession(
            weighted, offers, fig7["c3"], acceptance
        )
        assert index is None
        assert trail == [5.0]


class TestMergedPolicy:
    def test_merges_constraints(self, weighted, fig7):
        merged = merged_policy(weighted, [fig7["c4"], fig7["c3"]])
        assert merged({"x": 1}) == 8.0  # (1+5) + 2·1

    def test_empty_is_one(self, weighted):
        merged = merged_policy(weighted, [])
        assert merged({}) == weighted.one
