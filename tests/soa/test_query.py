"""The SOA query engine (paper's future-work deliverable)."""

import pytest

from repro.soa import (
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)
from repro.soa.query import (
    QueryEngine,
    QueryError,
    ServiceQuery,
)


def publish(
    registry,
    service_id,
    operation,
    inputs=(),
    outputs=(),
    reliability=0.95,
    provider=None,
    tags=(),
):
    provider = provider or f"prov-{service_id}"
    registry.publish(
        ServiceDescription(
            service_id=service_id,
            name=operation,
            provider=provider,
            interface=ServiceInterface(
                operation=operation,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
            ),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(attribute="reliability", constant=reliability)
                ],
            ),
            tags=tuple(tags),
        )
    )


@pytest.fixture
def photo_registry():
    """The paper's photo-editing services, typed by data formats."""
    registry = ServiceRegistry()
    publish(
        registry,
        "compf",
        "compress",
        inputs=("raw-photo",),
        outputs=("compressed",),
        reliability=0.99,
    )
    publish(
        registry,
        "redf",
        "red-filter",
        inputs=("compressed",),
        outputs=("red-photo",),
        reliability=0.97,
    )
    publish(
        registry,
        "bwf",
        "bw-filter",
        inputs=("red-photo",),
        outputs=("bw-photo",),
        reliability=0.95,
    )
    publish(
        registry,
        "allinone",
        "darkroom",
        inputs=("raw-photo",),
        outputs=("bw-photo",),
        reliability=0.85,
    )
    return registry


class TestQueryValidation:
    def test_needs_operation_xor_produces(self):
        with pytest.raises(QueryError):
            ServiceQuery(attribute="reliability")
        with pytest.raises(QueryError):
            ServiceQuery(
                attribute="reliability",
                operation="x",
                produces=("y",),
            )

    def test_max_chain_validated(self):
        with pytest.raises(QueryError):
            ServiceQuery(
                attribute="reliability", operation="x", max_chain=0
            )


class TestOperationQueries:
    def test_single_operation_match(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(attribute="reliability", operation="compress")
        )
        assert answer.satisfiable
        assert answer.best.plan.services() == ["compf"]
        assert answer.best.level == pytest.approx(0.99)

    def test_best_of_competing_providers(self, photo_registry):
        publish(
            photo_registry,
            "compf2",
            "compress",
            inputs=("raw-photo",),
            outputs=("compressed",),
            reliability=0.999,
        )
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(attribute="reliability", operation="compress")
        )
        assert [m.plan.services() for m in answer.matches] == [
            ["compf2"],
            ["compf"],
        ]

    def test_unknown_operation_unsatisfiable(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(attribute="reliability", operation="teleport")
        )
        assert not answer.satisfiable
        assert answer.best is None


class TestTypeDirectedQueries:
    def test_direct_type_match(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("compressed",),
                consumes=("raw-photo",),
            )
        )
        assert answer.best.plan.services() == ["compf"]

    def test_pipeline_composition_discovered(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=("raw-photo",),
                max_chain=3,
            )
        )
        assert answer.satisfiable
        plans = [m.plan.services() for m in answer.matches]
        assert ["compf", "redf", "bwf"] in plans  # the composed pipeline
        assert ["allinone"] in plans              # the monolith

    def test_pipeline_level_is_product(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=("raw-photo",),
                max_chain=3,
            )
        )
        pipeline_match = next(
            m for m in answer.matches if m.stages == 3
        )
        assert pipeline_match.level == pytest.approx(0.99 * 0.97 * 0.95)

    def test_reliable_pipeline_beats_flaky_monolith(self, photo_registry):
        """The who-wins shape: the composed chain (0.912) outranks the
        all-in-one service (0.85)."""
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=("raw-photo",),
                max_chain=3,
            )
        )
        assert answer.best.stages == 3
        assert answer.best.level > 0.85

    def test_chain_budget_respected(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=("raw-photo",),
                max_chain=2,  # the 3-stage chain is out of budget
            )
        )
        assert [m.plan.services() for m in answer.matches] == [["allinone"]]

    def test_minimum_level_cut(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=("raw-photo",),
                max_chain=3,
                minimum_level=0.9,
            )
        )
        assert all(m.level >= 0.9 for m in answer.matches)
        assert ["allinone"] not in [
            m.plan.services() for m in answer.matches
        ]

    def test_unreachable_type_unsatisfiable(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("hologram",),
                consumes=("raw-photo",),
                max_chain=4,
            )
        )
        assert not answer.satisfiable

    def test_missing_client_inputs_block_chains(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=(),  # client supplies nothing
                max_chain=4,
            )
        )
        assert not answer.satisfiable


class TestScoringDetails:
    def test_services_without_attribute_are_skipped(self, photo_registry):
        registry = photo_registry
        # a service publishing only cost cannot answer reliability queries
        registry.publish(
            ServiceDescription(
                service_id="costonly",
                name="compress",
                provider="cheap",
                interface=ServiceInterface(
                    operation="compress",
                    inputs=("raw-photo",),
                    outputs=("compressed",),
                ),
                qos=QoSDocument(
                    service_name="compress",
                    provider="cheap",
                    policies=[QoSPolicy(attribute="cost", constant=1.0)],
                ),
            )
        )
        engine = QueryEngine(registry)
        answer = engine.query(
            ServiceQuery(attribute="reliability", operation="compress")
        )
        assert ["costonly"] not in [
            m.plan.services() for m in answer.matches
        ]

    def test_offer_levels_cached(self, photo_registry):
        engine = QueryEngine(photo_registry)
        engine.query(
            ServiceQuery(attribute="reliability", operation="compress")
        )
        assert ("compf", "reliability") in engine._level_cache

    def test_candidates_considered_reported(self, photo_registry):
        engine = QueryEngine(photo_registry)
        answer = engine.query(
            ServiceQuery(
                attribute="reliability",
                produces=("bw-photo",),
                consumes=("raw-photo",),
                max_chain=3,
            )
        )
        assert answer.candidates_considered >= 2
