"""The broker-orchestrator: selection, acceptance, composition, SLAs."""

import pytest

from repro.constraints import Polynomial, integer_variable, polynomial_constraint
from repro.sccp import interval
from repro.semirings import WeightedSemiring
from repro.soa import (
    Broker,
    BrokerError,
    ClientRequest,
    MessageBus,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)


def publish_cost_provider(registry, provider, base, slope=1.0, operation="filter"):
    document = QoSDocument(
        service_name=operation,
        provider=provider,
        policies=[
            QoSPolicy(
                attribute="cost",
                variables={"x": range(0, 11)},
                polynomial=Polynomial.linear({"x": slope}, base),
            )
        ],
    )
    registry.publish(
        ServiceDescription(
            service_id=f"{operation}-{provider}",
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=document,
        )
    )


def publish_reliability_provider(registry, provider, level, operation):
    document = QoSDocument(
        service_name=operation,
        provider=provider,
        policies=[QoSPolicy(attribute="reliability", constant=level)],
    )
    registry.publish(
        ServiceDescription(
            service_id=f"{operation}-{provider}",
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=document,
        )
    )


@pytest.fixture
def cost_market():
    registry = ServiceRegistry()
    publish_cost_provider(registry, "P1", base=5.0)
    publish_cost_provider(registry, "P2", base=3.0)
    publish_cost_provider(registry, "P3", base=8.0)
    return registry


@pytest.fixture
def client_request(weighted):
    x = integer_variable("x", 10)
    requirement = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2})
    )
    return ClientRequest(
        client="C",
        operation="filter",
        attribute="cost",
        requirements=[requirement],
        acceptance=interval(weighted, lower=20.0, upper=0.0),
    )


class TestSingleServiceNegotiation:
    def test_best_provider_selected(self, cost_market, client_request):
        broker = Broker(cost_market)
        result = broker.negotiate(client_request)
        assert result.success
        assert result.sla.providers == ("P2",)
        assert result.sla.agreed_level == 3.0
        assert result.sla.resource_assignment == {"x": 0}

    def test_all_candidates_evaluated(self, cost_market, client_request):
        broker = Broker(cost_market)
        result = broker.negotiate(client_request)
        assert sorted(e.provider for e in result.evaluations) == [
            "P1",
            "P2",
            "P3",
        ]
        by_provider = {e.provider: e.blevel for e in result.evaluations}
        assert by_provider == {"P1": 5.0, "P2": 3.0, "P3": 8.0}

    def test_acceptance_interval_filters(self, cost_market, weighted):
        x = integer_variable("x", 10)
        requirement = polynomial_constraint(
            weighted, [x], Polynomial.linear({"x": 2})
        )
        # accept only stores with consistency in [0, 2] hours: none qualify
        request = ClientRequest(
            client="C",
            operation="filter",
            attribute="cost",
            requirements=[requirement],
            acceptance=interval(weighted, lower=2.0, upper=0.0),
        )
        result = Broker(cost_market).negotiate(request)
        assert not result.success
        assert result.sla is None
        assert "acceptance" in result.detail

    def test_no_provider_for_operation(self, cost_market, client_request):
        request = ClientRequest(
            client="C", operation="teleport", attribute="cost"
        )
        result = Broker(cost_market).negotiate(request)
        assert not result.success
        assert result.evaluations == []

    def test_no_provider_with_attribute(self, cost_market):
        request = ClientRequest(
            client="C", operation="filter", attribute="reliability"
        )
        result = Broker(cost_market).negotiate(request)
        assert not result.success

    def test_sla_recorded_in_repository(self, cost_market, client_request):
        broker = Broker(cost_market)
        result = broker.negotiate(client_request)
        assert len(broker.slas) == 1
        assert broker.slas.for_client("C") == [result.sla]
        assert broker.slas.for_provider("P2") == [result.sla]

    def test_nmsccp_confirmation(self, cost_market, client_request):
        broker = Broker(cost_market)
        result = broker.negotiate(
            client_request, verify_scheduler_independence=True
        )
        assert result.outcome is not None
        assert result.outcome.success
        assert result.outcome.scheduler_independent

    def test_bus_journal_records_protocol(self, cost_market, client_request):
        bus = MessageBus()
        broker = Broker(cost_market, bus=bus)
        broker.negotiate(client_request)
        kinds = bus.journal_kinds()
        assert "negotiate-request" in kinds
        assert "registry-query" in kinds
        assert "sla-created" in kinds

    def test_chosen_points_at_winning_evaluation(
        self, cost_market, client_request
    ):
        result = Broker(cost_market).negotiate(client_request)
        assert result.chosen is not None
        assert result.chosen.provider == "P2"

    def test_requirementless_request_uses_attribute_semiring(
        self, cost_market
    ):
        request = ClientRequest(
            client="C", operation="filter", attribute="cost"
        )
        assert isinstance(request.resolved_semiring(), WeightedSemiring)


class TestCompositionNegotiation:
    @pytest.fixture
    def pipeline_market(self):
        registry = ServiceRegistry()
        publish_reliability_provider(registry, "A", 0.99, "red")
        publish_reliability_provider(registry, "B", 0.95, "red")
        publish_reliability_provider(registry, "C", 0.90, "bw")
        publish_reliability_provider(registry, "D", 0.98, "bw")
        return registry

    def test_best_pipeline_selected(self, pipeline_market):
        broker = Broker(pipeline_market)
        sla, plan, diagnostics = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability"
        )
        assert sla.service_ids == ("red-A", "bw-D")
        assert sla.agreed_level == pytest.approx(0.99 * 0.98)
        assert plan.services() == ["red-A", "bw-D"]

    def test_minimum_level_rejects(self, pipeline_market):
        broker = Broker(pipeline_market)
        sla, plan, diagnostics = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability", minimum_level=0.999
        )
        assert sla is None and plan is None
        assert diagnostics["blevel"] < 0.999

    def test_missing_slot_provider(self, pipeline_market):
        broker = Broker(pipeline_market)
        with pytest.raises(BrokerError, match="no provider for slot"):
            broker.negotiate_composition(
                "client", ["red", "teleport"], "reliability"
            )

    def test_unknown_pattern(self, pipeline_market):
        broker = Broker(pipeline_market)
        with pytest.raises(BrokerError, match="unknown composition"):
            broker.negotiate_composition(
                "client", ["red"], "reliability", pattern="mesh"
            )

    def test_diagnostics_reports_offer_levels(self, pipeline_market):
        broker = Broker(pipeline_market)
        _, _, diagnostics = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability"
        )
        assert diagnostics["offer_levels"]["red-A"] == pytest.approx(0.99)
        assert diagnostics["evaluations"] >= 1

    def test_choose_pattern_worst_case(self, pipeline_market):
        broker = Broker(pipeline_market)
        sla, plan, _ = broker.negotiate_composition(
            "client", ["red", "bw"], "reliability", pattern="choose"
        )
        # worst-case of the two chosen branches is maximized:
        # best pairing is (A: 0.99, D: 0.98) → min = 0.98
        assert sla.agreed_level == pytest.approx(0.98)
