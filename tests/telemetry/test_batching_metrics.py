"""Telemetry of the batching hot path.

The batch scheduler must light up the coalesce-outcome counter family
(preseeded, so every outcome class is visible at zero), the batch-size
histogram, and the stacked-solve counter; bucket-memo reuse must flow
into ``solver_buckets_reused_total``; and the bounded kernel caches
("lowering", "buckets") must report through
:func:`repro.caching.cache_stats`.
"""

from repro.caching import cache_stats
from repro.constraints import TableConstraint, variable
from repro.runtime import (
    BatchConfig,
    BatchScheduler,
    COALESCE_OUTCOMES,
)
from repro.semirings import WeightedSemiring
from repro.solver import (
    SCSP,
    BucketCache,
    lower_semiring,
    shared_bucket_cache,
    solve_elimination,
)
from repro.telemetry import telemetry_session, to_prometheus

from .test_instrumentation import counter_total


def _problem(offset=0):
    weighted = WeightedSemiring()
    x = variable("x", (0, 1, 2))
    y = variable("y", (0, 1))
    return SCSP(
        [
            TableConstraint(
                weighted,
                [x, y],
                {
                    (i, j): float((i + j + offset) % 4)
                    for i in range(3)
                    for j in range(2)
                },
            )
        ],
        con=["x"],
    )


class TestSchedulerMetrics:
    def test_solo_solve_counts_lead_and_batch_size(self):
        scheduler = BatchScheduler(BatchConfig(window_ms=0.0, max_batch=8))
        with telemetry_session() as session:
            scheduler.solve(_problem())
        registry = session.registry
        assert counter_total(registry, "runtime_batches_total") == 1
        outcomes = registry.get("runtime_batch_coalesce_total")
        by_label = {
            s["labels"]["outcome"]: s["value"] for s in outcomes.samples()
        }
        # Preseeding keeps the whole family visible at zero.
        assert set(by_label) == set(COALESCE_OUTCOMES)
        assert by_label["lead"] == 1
        assert by_label["join"] == 0
        histogram = registry.get("runtime_batch_size")
        assert histogram.count == 1
        # A 1-session batch lands in the first (<= 1.0) bucket.
        assert histogram.cumulative_counts()[0] == 1

    def test_cache_hit_outcome_skips_batch_counters(self):
        from repro.solver import SolveCache

        scheduler = BatchScheduler(BatchConfig(window_ms=0.0, max_batch=8))
        cache = SolveCache()
        with telemetry_session() as session:
            scheduler.solve(_problem(), cache=cache)
            scheduler.solve(_problem(), cache=cache)
        registry = session.registry
        by_label = {
            s["labels"]["outcome"]: s["value"]
            for s in registry.get("runtime_batch_coalesce_total").samples()
        }
        assert by_label["cache-hit"] == 1
        assert counter_total(registry, "runtime_batches_total") == 1

    def test_metrics_reach_prometheus_exposition(self):
        scheduler = BatchScheduler(BatchConfig(window_ms=0.0, max_batch=4))
        with telemetry_session() as session:
            scheduler.solve(_problem())
            text = to_prometheus(session.registry)
        assert "runtime_batch_coalesce_total" in text
        assert "runtime_batch_size_bucket" in text
        assert "runtime_batches_total" in text


class TestBucketReuseMetrics:
    def test_reused_buckets_flow_into_solver_counter(self):
        problem = _problem()
        cache = BucketCache()
        with telemetry_session() as session:
            solve_elimination(problem, bucket_cache=cache)
            solve_elimination(problem, bucket_cache=cache)
        total = counter_total(
            session.registry, "solver_buckets_reused_total"
        )
        assert total > 0
        # Second solve answered every bucket from the memo.
        warm = solve_elimination(problem, bucket_cache=cache)
        assert warm.stats.buckets_reused == warm.stats.buckets_processed


class TestBoundedCachesReport:
    def test_cache_stats_list_lowering_and_buckets(self):
        # Touch both caches so they exist and have traffic.
        lower_semiring(WeightedSemiring())
        cache = shared_bucket_cache()
        solve_elimination(_problem(), bucket_cache=cache)
        stats = cache_stats()
        assert "lowering" in stats
        assert "buckets" in stats
        assert all(
            row["maxsize"] > 0 for row in stats["lowering"] + stats["buckets"]
        )
