"""End-to-end instrumentation: one broker request lights up the stack.

The acceptance scenario of the telemetry subsystem: negotiating a single
request inside a session must yield the five Fig. 6 lifecycle spans, the
solver's node/prune counters, and — when the winner is re-run as nmsccp
agents — the full per-rule R1–R10 transition family.
"""

import json

import pytest

from repro.constraints import (
    ConstantConstraint,
    Polynomial,
    integer_variable,
    polynomial_constraint,
)
from repro.sccp import interval
from repro.sccp.transitions import RULES
from repro.semirings import ProbabilisticSemiring, WeightedSemiring
from repro.serialization import qos_document_to_dict
from repro.soa import (
    Broker,
    ClientRequest,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
    SLA,
    SLAMonitor,
)
from repro.soa.execution import ExecutionReport
from repro.soa.query import QueryEngine, ServiceQuery
from repro.telemetry import get_registry, telemetry_session
from repro.telemetry.metrics import NULL_REGISTRY

LIFECYCLE_SPANS = [
    "broker.step1-request",
    "broker.step2-registry-search",
    "broker.step3-negotiation",
    "broker.step4-compare",
    "broker.step5-sla",
]


def publish_cost_provider(registry, provider, base, slope=1.0):
    registry.publish(
        ServiceDescription(
            service_id=f"filter-{provider}",
            name="filter",
            provider=provider,
            interface=ServiceInterface(operation="filter"),
            qos=QoSDocument(
                service_name="filter",
                provider=provider,
                policies=[
                    QoSPolicy(
                        attribute="cost",
                        variables={"x": range(0, 11)},
                        polynomial=Polynomial.linear({"x": slope}, base),
                    )
                ],
            ),
        )
    )


@pytest.fixture
def market():
    registry = ServiceRegistry()
    publish_cost_provider(registry, "P1", base=5.0)
    publish_cost_provider(registry, "P2", base=3.0)
    publish_cost_provider(registry, "P3", base=8.0)
    return registry


@pytest.fixture
def request_for_filter():
    weighted = WeightedSemiring()
    x = integer_variable("x", 10)
    requirement = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2})
    )
    return ClientRequest(
        client="C",
        operation="filter",
        attribute="cost",
        requirements=[requirement],
        acceptance=interval(weighted, lower=20.0, upper=0.0),
    )


def counter_total(registry, name):
    metric = registry.get(name)
    if metric is None:
        return 0
    return sum(s["value"] for s in metric.samples())


class TestBrokerRequestTelemetry:
    def test_one_request_emits_five_lifecycle_spans(
        self, market, request_for_filter
    ):
        broker = Broker(market)
        with telemetry_session() as session:
            result = broker.negotiate(request_for_filter)
        assert result.success

        (root,) = session.tracer.finished
        assert root.name == "broker.request"
        assert root.attributes["client"] == "C"
        assert [c.name for c in root.children] == LIFECYCLE_SPANS

        # step 3 nests one candidate-solve (and one solver.solve) per
        # provider in the market
        step3 = root.children[2]
        solves = [
            c for c in step3.children if c.name == "broker.candidate-solve"
        ]
        assert len(solves) == 3
        assert all(
            c.name == "solver.solve"
            for solve in solves
            for c in solve.children
        )
        step5 = root.children[4]
        assert step5.attributes["sla_id"] == result.sla.sla_id

    def test_solver_and_broker_counters_are_nonzero(
        self, market, request_for_filter
    ):
        broker = Broker(market)
        with telemetry_session() as session:
            broker.negotiate(request_for_filter)
        registry = session.registry

        assert counter_total(registry, "solver_solves_total") == 3
        assert counter_total(registry, "solver_nodes_expanded_total") > 0
        assert counter_total(registry, "solver_leaves_evaluated_total") > 0
        # prunes appear as a sample even when the search never pruned
        assert registry.get("solver_prunes_total") is not None
        assert registry.get("solver_solve_seconds").labels(
            "branch-bound"
        ).count == 3

        requests = registry.get("broker_requests_total")
        assert requests.labels("success").value == 1
        assert (
            counter_total(registry, "broker_candidates_evaluated_total") == 3
        )
        assert registry.get("broker_candidate_solve_seconds").count == 3
        assert [e["kind"] for e in session.events] == ["broker.sla-created"]

    def test_failed_negotiation_counts_its_outcome(self, market):
        broker = Broker(market)
        request = ClientRequest(
            client="C", operation="no-such-op", attribute="cost"
        )
        with telemetry_session() as session:
            result = broker.negotiate(request)
        assert not result.success
        requests = session.registry.get("broker_requests_total")
        assert requests.labels("no-provider").value == 1
        # the request root span still closes, step 2 found nothing
        (root,) = session.tracer.finished
        assert root.name == "broker.request"

    def test_independence_check_exercises_all_nmsccp_rules(
        self, market, request_for_filter
    ):
        broker = Broker(market)
        with telemetry_session() as session:
            result = broker.negotiate(
                request_for_filter, verify_scheduler_independence=True
            )
        assert result.success
        registry = session.registry

        transitions = registry.get("sccp_transitions_total")
        assert transitions is not None
        samples = {
            s["labels"]["rule"]: s["value"] for s in transitions.samples()
        }
        # the family is preseeded: all ten rules appear, fired or not
        assert set(samples) == set(RULES)
        assert samples["R1-Tell"] > 0
        assert counter_total(registry, "sccp_runs_total") > 0
        names = session.tracer.span_names()
        assert "sccp.run" in names
        assert "sccp.explore" in names


class TestTelemetryDisabled:
    def test_negotiation_outside_a_session_leaves_no_trace(
        self, market, request_for_filter
    ):
        assert get_registry() is NULL_REGISTRY
        broker = Broker(market)
        result = broker.negotiate(
            request_for_filter, verify_scheduler_independence=True
        )
        assert result.success
        assert get_registry() is NULL_REGISTRY
        assert get_registry().snapshot() == {"metrics": []}


class TestMonitorTelemetry:
    def _sla(self, level=0.95):
        semiring = ProbabilisticSemiring()
        return SLA(
            client="C",
            providers=("P",),
            attribute="availability",
            semiring=semiring,
            agreed_constraint=ConstantConstraint(semiring, level),
            agreed_level=level,
        )

    @staticmethod
    def _reports(flags):
        return [
            ExecutionReport(tick=i, success=ok, latency_ms=5.0)
            for i, ok in enumerate(flags)
        ]

    def test_warmup_reports_are_counted_not_dropped(self):
        monitor = SLAMonitor(self._sla(), window=10, min_samples=5)
        with telemetry_session() as session:
            monitor.observe_many(self._reports([True] * 3))
        assert monitor.early_reports == 3
        reports = session.registry.get("sla_reports_total")
        assert reports.labels("availability", "warmup").value == 3

    def test_violations_hit_counter_and_event_log(self):
        with telemetry_session() as session:
            monitor = SLAMonitor(
                self._sla(0.95),
                window=10,
                min_samples=5,
                registry=session.registry,
            )
            violations = monitor.observe_many(
                self._reports([True, True, False, False, False, False])
            )
        assert violations
        counter = session.registry.get("sla_violations_total")
        assert counter.labels("availability").value == len(violations)
        events = session.events.of_kind("sla.violation")
        assert len(events) == len(violations)
        assert events[0]["attribute"] == "availability"

    def test_explicit_registry_wins_over_the_global_session(self):
        from repro.telemetry import MetricsRegistry

        private = MetricsRegistry()
        monitor = SLAMonitor(
            self._sla(), window=10, min_samples=1, registry=private
        )
        monitor.observe(ExecutionReport(tick=0, success=True, latency_ms=1.0))
        assert private.get("sla_reports_total") is not None


class TestQueryCacheTelemetry:
    def test_offer_level_cache_hits_show_up(self, market):
        engine = QueryEngine(market)
        query = ServiceQuery(attribute="cost", operation="filter")
        with telemetry_session() as session:
            engine.query(query)  # three misses (one per provider)
            engine.query(query)  # three hits
        hits = session.registry.get("cache_hits_total")
        misses = session.registry.get("cache_misses_total")
        assert misses.labels("query-offer-level", "").value == 3
        assert hits.labels("query-offer-level", "").value == 3
        assert engine._level_cache.stats()["size"] == 3


class TestCliTelemetry:
    def _market_payload(self):
        registry = ServiceRegistry()
        publish_cost_provider(registry, "P1", base=5.0)
        publish_cost_provider(registry, "P2", base=3.0)
        return {
            "kind": "market",
            "services": [
                {
                    "service_id": d.service_id,
                    "operation": d.interface.operation,
                    "qos": qos_document_to_dict(d.qos),
                }
                for d in registry.find(operation="filter")
            ],
            "request": {
                "client": "cli-test",
                "operation": "filter",
                "attribute": "cost",
                "acceptance": {"lower": 20.0, "upper": 0.0},
            },
        }

    def test_negotiate_with_telemetry_embeds_snapshot(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        market_file = tmp_path / "market.json"
        market_file.write_text(json.dumps(self._market_payload()))
        trace_file = tmp_path / "trace.jsonl"
        prom_file = tmp_path / "metrics.prom"

        code = main(
            [
                "negotiate",
                str(market_file),
                "--verify-independence",
                "--telemetry",
                "--trace-out",
                str(trace_file),
                "--prometheus-out",
                str(prom_file),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["success"] is True

        telemetry = payload["telemetry"]
        names = {m["name"] for m in telemetry["metrics"]}
        assert "solver_nodes_expanded_total" in names
        assert "sccp_transitions_total" in names
        span_names = [s["name"] for s in telemetry["spans"]]
        for step in LIFECYCLE_SPANS:
            assert step in span_names

        prom = prom_file.read_text()
        assert "broker_requests_total" in prom
        records = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
        ]
        assert any(r["record"] == "span" for r in records)

    def test_cli_without_flags_stays_null(self, tmp_path, capsys):
        from repro.cli import main

        market_file = tmp_path / "market.json"
        market_file.write_text(json.dumps(self._market_payload()))
        assert main(["negotiate", str(market_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload
        assert get_registry() is NULL_REGISTRY
