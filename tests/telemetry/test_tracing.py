"""Tracing, the event log, the runtime session, and exporter round-trips."""

import json

import pytest

from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    NULL_EVENT_LOG,
    NULL_REGISTRY,
    NULL_TRACER,
    TelemetrySession,
    Tracer,
    enabled,
    get_events,
    get_registry,
    get_tracer,
    install,
    snapshot,
    telemetry_session,
    uninstall,
    write_snapshot,
    write_trace_jsonl,
)
from repro.telemetry.tracing import NULL_SPAN


class TestSpanNesting:
    def test_children_attach_to_the_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-1") as child1:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-2"):
                pass
        assert [c.name for c in root.children] == ["child-1", "child-2"]
        assert [c.name for c in child1.children] == ["grandchild"]
        assert child1.parent is root
        assert tracer.span_names() == [
            "root",
            "child-1",
            "grandchild",
            "child-2",
        ]

    def test_only_roots_accumulate_on_finished(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.finished] == ["a", "c"]

    def test_durations_and_attributes(self):
        tracer = Tracer()
        with tracer.span("op", method="bb") as span:
            assert not span.finished
            span.set_attribute("candidates", 3)
        assert span.finished
        assert span.duration_s >= 0
        assert span.attributes == {"method": "bb", "candidates": 3}

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                raise RuntimeError("boom")
        assert span.finished
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.current is None

    def test_exception_closes_dangling_descendants(self):
        # An exception that escapes an outer span must finish inner spans
        # its unwinding skipped.
        tracer = Tracer()
        inner_ctx = None
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                inner_ctx = tracer.span("inner")
                inner_ctx.__enter__()  # never __exit__-ed
                raise RuntimeError("boom")
        (root,) = tracer.finished
        (inner,) = root.children
        assert inner.finished
        assert tracer.current is None

    def test_to_dicts_flattens_with_parent_names(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        records = tracer.to_dicts()
        assert [(r["name"], r["parent"]) for r in records] == [
            ("root", None),
            ("leaf", "root"),
        ]
        json.dumps(records)  # JSON-able as-is

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.finished == []


class TestConcurrentLineage:
    """The span stack is per-context: concurrent tasks and executor
    threads each see their own lineage (what the runtime relies on)."""

    def test_asyncio_tasks_do_not_interleave_spans(self):
        import asyncio

        tracer = Tracer()

        async def session(name):
            with tracer.span(f"root-{name}"):
                await asyncio.sleep(0)
                with tracer.span(f"child-{name}"):
                    await asyncio.sleep(0)

        async def scenario():
            await asyncio.gather(*(session(str(i)) for i in range(3)))

        asyncio.run(scenario())
        assert len(tracer.finished) == 3
        for root in sorted(tracer.finished, key=lambda s: s.name):
            suffix = root.name.split("-", 1)[1]
            (child,) = root.children
            assert child.name == f"child-{suffix}"

    def test_copied_context_parents_executor_spans(self):
        """A span opened in a worker thread under ``ctx.run`` nests
        beneath the span active when the context was copied."""
        import contextvars
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()

        def offloaded():
            with tracer.span("offloaded"):
                pass

        with ThreadPoolExecutor(max_workers=1) as pool:
            with tracer.span("session"):
                ctx = contextvars.copy_context()
                pool.submit(lambda: ctx.run(offloaded)).result()
        (root,) = tracer.finished
        assert root.name == "session"
        assert [c.name for c in root.children] == ["offloaded"]

    def test_plain_threads_have_independent_stacks(self):
        import threading

        tracer = Tracer()
        errors = []

        def worker(name):
            try:
                with tracer.span(name):
                    assert tracer.current.name == name
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert sorted(s.name for s in tracer.finished) == [
            "t0", "t1", "t2", "t3",
        ]


class TestNullTracer:
    def test_span_is_shared_noop(self):
        assert NULL_TRACER.enabled is False
        ctx = NULL_TRACER.span("anything", attr=1)
        assert ctx is NULL_SPAN
        with ctx as span:
            span.set_attribute("k", "v")  # absorbed
        assert NULL_TRACER.span_names() == []
        assert NULL_TRACER.to_dicts() == []
        assert NULL_TRACER.current is None


class TestEventLog:
    def test_emit_stamps_ts_and_kind(self):
        log = EventLog()
        event = log.emit("sla.violation", attribute="cost", sla_id=7)
        assert event["kind"] == "sla.violation"
        assert event["ts"] > 0
        assert event["sla_id"] == 7
        assert len(log) == 1
        assert log.of_kind("sla.violation") == [event]
        assert log.of_kind("other") == []

    def test_bounded_log_counts_drops(self):
        log = EventLog(maxlen=2)
        for i in range(5):
            log.emit("tick", i=i)
        assert len(log) == 2
        assert log.dropped == 3
        assert [e["i"] for e in log] == [3, 4]

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y="two")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["a", "b"]

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert EventLog().write_jsonl(path) == 0
        assert path.read_text() == ""

    def test_null_log_absorbs_everything(self):
        assert NULL_EVENT_LOG.emit("anything", a=1) == {}
        assert len(NULL_EVENT_LOG) == 0
        assert NULL_EVENT_LOG.to_jsonl() == ""


class TestRuntime:
    def test_defaults_are_null(self):
        assert get_registry() is NULL_REGISTRY
        assert get_tracer() is NULL_TRACER
        assert get_events() is NULL_EVENT_LOG
        assert enabled() is False

    def test_install_uninstall(self):
        session = install()
        try:
            assert get_registry() is session.registry
            assert get_tracer() is session.tracer
            assert get_events() is session.events
            assert enabled() is True
        finally:
            uninstall()
        assert get_registry() is NULL_REGISTRY
        assert enabled() is False

    def test_sessions_nest_and_restore(self):
        with telemetry_session() as outer:
            assert get_registry() is outer.registry
            with telemetry_session() as inner:
                assert inner is not outer
                assert get_registry() is inner.registry
            assert get_registry() is outer.registry
        assert get_registry() is NULL_REGISTRY

    def test_session_restores_after_exception(self):
        with pytest.raises(ValueError):
            with telemetry_session():
                raise ValueError
        assert get_registry() is NULL_REGISTRY

    def test_explicit_session_object_is_installed(self):
        session = TelemetrySession()
        with telemetry_session(session) as active:
            assert active is session
            assert get_registry() is session.registry


class TestExporterRoundTrip:
    def _populated_session(self):
        session = TelemetrySession()
        session.registry.counter(
            "ops_total", "Ops.", labelnames=("kind",)
        ).labels("solve").inc(2)
        with session.tracer.span("root", who="test"):
            with session.tracer.span("leaf"):
                pass
        session.events.emit("probe", detail="x")
        return session

    def test_snapshot_combines_all_surfaces(self):
        session = self._populated_session()
        snap = snapshot(session.registry, session.tracer, session.events)
        assert snap["metrics"][0]["name"] == "ops_total"
        assert snap["spans"][0]["name"] == "root"
        assert snap["events_total"] == 1
        assert snap["events_dropped"] == 0
        assert snap == session.snapshot()

    def test_write_snapshot_round_trips_through_json(self, tmp_path):
        session = self._populated_session()
        path = tmp_path / "snap.json"
        written = write_snapshot(
            path, session.registry, session.tracer, session.events
        )
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(written, default=str)
        )

    def test_write_trace_jsonl_tags_records(self, tmp_path):
        session = self._populated_session()
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(path, session.tracer, session.events)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert count == len(records) == 3  # two spans + one event
        assert [r["record"] for r in records] == ["span", "span", "event"]

    def test_snapshot_without_tracer_or_events(self):
        registry = MetricsRegistry()
        snap = snapshot(registry)
        assert snap == {"metrics": []}
