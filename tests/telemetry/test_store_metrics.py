"""The constraint store's telemetry instruments.

The refactored store emits two counter families:

* ``store_factors_total{backend}`` — one sample per told factor;
* ``store_query_solver_hits_total{query}`` — a consistency / entailment
  / projection answered from the store's memo instead of the solver.

Both must reach the Prometheus exposition through an enabled session and
stay silent (null registry, zero overhead) outside one.
"""

import random

from repro.constraints import (
    TableConstraint,
    clear_store_caches,
    empty_store,
    variable,
)
from repro.semirings import WeightedSemiring
from repro.telemetry import telemetry_session, to_prometheus


def _constraints(seed=0):
    rng = random.Random(seed)
    semiring = WeightedSemiring()
    x = variable("x", ["a", "b"])
    y = variable("y", ["a", "b"])
    c1 = TableConstraint(
        semiring, [x], {("a",): float(rng.randint(0, 9)), ("b",): 2.0}
    )
    c2 = TableConstraint(
        semiring,
        [x, y],
        {
            key: float(rng.randint(0, 9))
            for key in (("a", "a"), ("a", "b"), ("b", "a"), ("b", "b"))
        },
    )
    return semiring, c1, c2


class TestStoreFactorsTotal:
    def test_counts_tells_per_backend(self):
        semiring, c1, c2 = _constraints(seed=11)
        with telemetry_session() as session:
            empty_store(semiring, backend="factored").tell(c1).tell(c2)
            empty_store(semiring, backend="monolith").tell(c1)
            snapshot = {
                (m["name"], tuple(sorted(s["labels"].items()))): s["value"]
                for m in session.registry.snapshot()["metrics"]
                for s in m["samples"]
            }
        assert (
            snapshot[("store_factors_total", (("backend", "factored"),))]
            == 2.0
        )
        assert (
            snapshot[("store_factors_total", (("backend", "monolith"),))]
            == 1.0
        )

    def test_exposed_in_prometheus_format(self):
        semiring, c1, _ = _constraints(seed=23)
        with telemetry_session() as session:
            empty_store(semiring, backend="factored").tell(c1)
            text = to_prometheus(session.registry)
        assert 'store_factors_total{backend="factored"} 1' in text


class TestStoreQueryHitsTotal:
    def test_repeated_queries_hit_the_store_memo(self):
        semiring, c1, c2 = _constraints(seed=37)
        clear_store_caches()
        with telemetry_session() as session:
            store = empty_store(semiring, backend="factored").tell(c1).tell(c2)
            first = store.consistency()
            # A structurally identical rebuild shares the digest, so the
            # second solve is answered by the store-level memo.
            rebuilt = (
                empty_store(semiring, backend="factored").tell(c1).tell(c2)
            )
            assert rebuilt.consistency() == first
            assert store.entails(c1)
            assert rebuilt.entails(c1)
            text = to_prometheus(session.registry)
        assert 'store_query_solver_hits_total{query="consistency"} 1' in text
        assert 'store_query_solver_hits_total{query="entails"}' in text

    def test_silent_outside_a_session(self):
        semiring, c1, _ = _constraints(seed=41)
        store = empty_store(semiring, backend="factored").tell(c1)
        store.consistency()  # must not raise, must not record anything
        with telemetry_session() as session:
            text = to_prometheus(session.registry)
        assert "store_factors_total" not in text
