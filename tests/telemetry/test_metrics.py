"""Metrics: instruments, registry semantics, exporters, null mode."""

import pytest

from repro.telemetry import (
    DEFAULT_CACHE_SIZE,
    LRUCache,
    MetricsError,
    MetricsRegistry,
    NULL_REGISTRY,
    telemetry_session,
    to_prometheus,
)
from repro.telemetry.metrics import NULL_INSTRUMENT


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_inc_zero_registers_a_sample(self):
        # Snapshots must show the full counter set even when nothing
        # fired — inc(0) is how instrumented code forces the sample.
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("method",)).labels(
            "branch-bound"
        ).inc(0)
        [metric] = registry.snapshot()["metrics"]
        assert metric["samples"] == [
            {"labels": {"method": "branch-bound"}, "value": 0.0}
        ]


class TestLabels:
    def test_children_are_memoized(self):
        family = MetricsRegistry().counter("c_total", labelnames=("rule",))
        assert family.labels("R1-Tell") is family.labels("R1-Tell")
        assert family.labels("R1-Tell") is not family.labels("R2-Ask")

    def test_positional_and_keyword_agree(self):
        family = MetricsRegistry().counter(
            "c_total", labelnames=("a", "b")
        )
        assert family.labels("x", "y") is family.labels(b="y", a="x")

    def test_arity_and_unknown_names_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("a",))
        with pytest.raises(MetricsError):
            family.labels("x", "y")
        with pytest.raises(MetricsError):
            family.labels(wrong="x")
        with pytest.raises(MetricsError):
            family.labels("x", a="x")

    def test_unlabelled_family_refuses_labels(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("c_total").labels("x")

    def test_preseed_registers_zeroes(self):
        rules = ("R1-Tell", "R2-Ask", "R3-Parall1")
        family = MetricsRegistry().counter(
            "sccp_transitions_total", labelnames=("rule",)
        )
        family.preseed(rules)
        samples = family.samples()
        assert {s["labels"]["rule"] for s in samples} == set(rules)
        assert all(s["value"] == 0 for s in samples)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_set_max_keeps_the_peak(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(7)
        gauge.set_max(3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        # cumulative le-semantics: ≤0.1 → 1, ≤1.0 → 3, ≤10.0 → 4, +Inf → 5
        assert histogram.cumulative_counts() == [1, 3, 4, 5]

    def test_timer_observes_elapsed_time(self):
        histogram = MetricsRegistry().histogram("h_seconds")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0

    def test_empty_buckets_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h_seconds", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricsError):
            registry.gauge("m")

    def test_labelnames_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labelnames=("a",))
        with pytest.raises(MetricsError):
            registry.counter("m", labelnames=("b",))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "last").inc()
        registry.gauge("a_gauge", "first").set(2)
        snap = registry.snapshot()
        names = [m["name"] for m in snap["metrics"]]
        assert names == ["a_gauge", "z_total"]  # sorted by name
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["z_total"]["kind"] == "counter"
        assert by_name["z_total"]["help"] == "last"
        assert by_name["a_gauge"]["samples"] == [{"labels": {}, "value": 2.0}]


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter(
            "req_total", "Requests.", labelnames=("outcome",)
        ).labels("success").inc(3)
        registry.gauge("depth", "Depth.").set(1.5)
        text = to_prometheus(registry)
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{outcome="success"} 3' in text
        assert "depth 1.5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(0.5, 1.0)).observe(0.7)
        text = to_prometheus(registry)
        assert 'h_seconds_bucket{le="0.5"} 0' in text
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.7" in text
        assert "h_seconds_count 1" in text

    def test_empty_registry_exports_empty_string(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestNullRegistry:
    def test_all_lookups_share_one_noop_instrument(self):
        assert NULL_REGISTRY.enabled is False
        counter = NULL_REGISTRY.counter("c_total", labelnames=("a",))
        assert counter is NULL_INSTRUMENT
        assert counter.labels("x") is counter
        counter.inc()
        counter.observe(1.0)
        counter.set(1.0)
        counter.set_max(1.0)
        counter.dec()
        with counter.time():
            pass
        assert counter.value == 0
        assert counter.count == 0

    def test_snapshot_is_empty(self):
        assert NULL_REGISTRY.snapshot() == {"metrics": []}
        assert NULL_REGISTRY.metrics() == []
        assert NULL_REGISTRY.get("anything") is None


class TestLRUCache:
    def test_hit_miss_and_eviction(self):
        cache = LRUCache(maxsize=2, name="t")
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the LRU entry
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats() == {
            "size": 2,
            "maxsize": 2,
            "hits": 3,
            "misses": 1,
            "evictions": 1,
            "expirations": 0,
        }

    def test_get_or_compute_computes_once(self):
        cache = LRUCache(maxsize=4, name="t")
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1

    def test_resize_trims_lru_tail(self):
        cache = LRUCache(maxsize=4, name="t")
        for key in "abcd":
            cache.put(key, key)
        cache.resize(2)
        assert len(cache) == 2
        assert "c" in cache and "d" in cache
        with pytest.raises(ValueError):
            cache.resize(0)

    def test_default_capacity_matches_spec(self):
        assert LRUCache().maxsize == DEFAULT_CACHE_SIZE == 4096

    def test_counters_flow_to_the_active_registry(self):
        cache = LRUCache(maxsize=4, name="probe")
        with telemetry_session() as session:
            cache.get("missing")
            cache.put("k", 1)
            cache.get("k")
            hits = session.registry.get("cache_hits_total")
            misses = session.registry.get("cache_misses_total")
            assert hits.labels("probe", "").value == 1
            assert misses.labels("probe", "").value == 1
        # outside the session the cache keeps working, counters go nowhere
        cache.get("k")
        assert cache.hits == 2

    def test_counters_rebind_per_session(self):
        cache = LRUCache(maxsize=4, name="probe")
        with telemetry_session() as first:
            cache.get("nope")
        with telemetry_session() as second:
            cache.get("nope")
        for session in (first, second):
            misses = session.registry.get("cache_misses_total")
            assert misses.labels("probe", "").value == 1
