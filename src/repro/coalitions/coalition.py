"""Coalitions and their trustworthiness (paper Sec. 6, Def. 3).

``T(C) = ◦ t(xi, xj)`` over every ordered pair of members with a stated
judgement (``i = j`` allowed — trust in oneself).  The partition-level
objective composes the coalition scores again; the paper's Sec. 6.1
choice — the Fuzzy semiring — "maximizes the minimum trustworthiness of
all the obtained coalitions".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .trust import CompositionOp, TrustError, TrustNetwork, resolve_op

Coalition = FrozenSet[str]
Partition = Tuple[Coalition, ...]


def coalition(*members: str) -> Coalition:
    return frozenset(members)


def coalition_trust(
    members: Iterable[str],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    include_self: bool = True,
    empty_value: float = 1.0,
) -> float:
    """Def. 3: compose every in-coalition judgement with ``◦``.

    ``empty_value`` is returned when no judgement exists inside the
    coalition (e.g. a singleton without self-trust): 1.0, the neutral
    "nothing speaks against it".
    """
    fold = resolve_op(op)
    # Sorted so the fold order is a function of the coalition, not of
    # the iteration order of whatever set object carries it — equal
    # frozensets built differently may iterate differently, and ``avg``
    # sums floats, where order shifts the last ulp.
    group = sorted(members)
    levels: List[float] = []
    for source in group:
        for target in group:
            if source == target and not include_self:
                continue
            value = network.trust(source, target)
            if value is not None:
                levels.append(value)
    if not levels:
        return empty_value
    return fold(levels)


def member_view(
    agent: str,
    others: Iterable[str],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    empty_value: float = 0.0,
) -> float:
    """``◦_{xi ∈ others} t(agent, xi)`` — how ``agent`` rates a group.

    Used by the blocking condition (Def. 4); the empty composition
    defaults to 0 — an agent with nobody to judge has nothing keeping it.
    """
    fold = resolve_op(op)
    levels = [
        value
        for other in sorted(others)
        if (value := network.trust(agent, other)) is not None
    ]
    if not levels:
        return empty_value
    return fold(levels)


def normalize_partition(partition: Iterable[Iterable[str]]) -> Partition:
    """Canonical form: frozensets, sorted by their sorted members."""
    coalitions = tuple(
        sorted(
            (frozenset(group) for group in partition),
            key=lambda c: sorted(c),
        )
    )
    return coalitions


def validate_partition(
    partition: Iterable[Iterable[str]], network: TrustNetwork
) -> Partition:
    """Check the Sec. 6.1 partition constraints: disjoint, non-empty,
    jointly covering every agent."""
    normalized = normalize_partition(partition)
    seen: set = set()
    for group in normalized:
        if not group:
            raise TrustError("empty coalition in partition")
        overlap = seen & group
        if overlap:
            raise TrustError(
                f"agents {sorted(overlap)} appear in two coalitions"
            )
        seen |= group
    missing = set(network.agents) - seen
    if missing:
        raise TrustError(f"agents {sorted(missing)} not assigned")
    extra = seen - set(network.agents)
    if extra:
        raise TrustError(f"unknown agents {sorted(extra)} in partition")
    return normalized


def partition_trust(
    partition: Iterable[Iterable[str]],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
) -> float:
    """The partition objective: aggregate the per-coalition ``T(C)``.

    The default double-``min`` is the paper's fuzzy max-min criterion
    (the solver then *maximizes* this value).
    """
    fold = resolve_op(aggregate)
    scores = [
        coalition_trust(group, network, op) for group in partition
    ]
    if not scores:
        raise TrustError("cannot score an empty partition")
    return fold(scores)


def coalition_of(agent: str, partition: Sequence[Coalition]) -> Optional[Coalition]:
    """The coalition containing ``agent`` (None when unassigned)."""
    for group in partition:
        if agent in group:
            return group
    return None
