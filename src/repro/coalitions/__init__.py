"""Trustworthy coalitions of services (paper Sec. 6).

Trust networks, coalition trustworthiness (Def. 3), blocking-coalition
stability (Def. 4), the Sec. 6.1 SCSP encoding, an exact
partition-enumeration solver, greedy individually/socially oriented
baselines, a seeded local search for larger agent counts, and the
incremental parallel engine that scales the search far past Fig. 9.
"""

from .coalition import (
    Coalition,
    Partition,
    coalition,
    coalition_of,
    coalition_trust,
    member_view,
    normalize_partition,
    partition_trust,
    validate_partition,
)
from .encoding import (
    build_coalition_scsp,
    coalition_variables,
    decode,
)
from .exact import (
    CoalitionSolution,
    bell_number,
    enumerate_partitions,
    grand_coalition,
    singletons,
    solve_exact,
)
from .engine import IncrementalScorer, solve_engine
from .greedy import individually_oriented, socially_oriented
from .local_search import solve_local_search
from .propagation import (
    coverage,
    propagate_trust,
    propagation_closure,
    trust_between,
)
from .stability import (
    BlockingWitness,
    blocking_pairs,
    blocking_witness,
    is_stable,
    repair_step,
    stabilize,
)
from .trust import (
    COMPOSITION_OPS,
    CompositionOp,
    TrustError,
    TrustNetwork,
    average,
    figure9_network,
    random_trust_network,
    resolve_op,
)

__all__ = [
    "TrustNetwork",
    "TrustError",
    "CompositionOp",
    "COMPOSITION_OPS",
    "average",
    "resolve_op",
    "random_trust_network",
    "figure9_network",
    "Coalition",
    "Partition",
    "coalition",
    "coalition_trust",
    "member_view",
    "partition_trust",
    "normalize_partition",
    "validate_partition",
    "coalition_of",
    "BlockingWitness",
    "blocking_witness",
    "blocking_pairs",
    "is_stable",
    "repair_step",
    "stabilize",
    "build_coalition_scsp",
    "coalition_variables",
    "decode",
    "CoalitionSolution",
    "enumerate_partitions",
    "bell_number",
    "solve_exact",
    "grand_coalition",
    "singletons",
    "individually_oriented",
    "socially_oriented",
    "solve_local_search",
    "solve_engine",
    "IncrementalScorer",
    "propagate_trust",
    "propagation_closure",
    "trust_between",
    "coverage",
]
