"""Stochastic local search for coalition structures.

For agent counts beyond exact enumeration (Bell numbers explode past
n ≈ 12) a seeded hill-climber explores the move/merge/split neighbourhood.
The objective is lexicographic: *first* minimize the number of blocking
witnesses (stability is mandatory in the paper), *then* maximize the
fuzzy partition trust — so the search walks unstable structures but
always prefers repairing them.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .coalition import Partition, normalize_partition, partition_trust
from .exact import CoalitionSolution, singletons
from .stability import blocking_pairs
from .trust import CompositionOp, TrustNetwork

Score = Tuple[int, float]  # (-blocking count is encoded as minimization)


def _score(
    partition: Partition,
    network: TrustNetwork,
    op: str | CompositionOp,
    aggregate: str | CompositionOp,
) -> Score:
    blocking = len(blocking_pairs(partition, network, op))
    trust = partition_trust(partition, network, op, aggregate)
    return (-blocking, trust)


def _neighbours(
    partition: Partition, rng: random.Random, sample: int
) -> List[Partition]:
    """A sample of move/merge/split neighbours of ``partition``."""
    groups = [set(g) for g in partition]
    agents = sorted(a for g in groups for a in g)
    neighbours: List[Partition] = []

    def push(candidate_groups) -> None:
        cleaned = [g for g in candidate_groups if g]
        if cleaned:
            neighbours.append(normalize_partition(cleaned))

    # Moves: one agent to another coalition or to a new singleton.
    for agent in agents:
        source_index = next(
            i for i, g in enumerate(groups) if agent in g
        )
        for target_index in range(len(groups) + 1):
            if target_index == source_index:
                continue
            new_groups = [set(g) for g in groups]
            new_groups[source_index].discard(agent)
            if target_index == len(groups):
                new_groups.append({agent})
            else:
                new_groups[target_index].add(agent)
            push(new_groups)

    # Merges of two coalitions.
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            new_groups = [
                set(g) for k, g in enumerate(groups) if k not in (i, j)
            ]
            new_groups.append(groups[i] | groups[j])
            push(new_groups)

    # Random binary splits of larger coalitions.
    for i, group in enumerate(groups):
        if len(group) >= 2:
            members = sorted(group)
            rng.shuffle(members)
            cut = rng.randint(1, len(members) - 1)
            new_groups = [set(g) for k, g in enumerate(groups) if k != i]
            new_groups.append(set(members[:cut]))
            new_groups.append(set(members[cut:]))
            push(new_groups)

    unique = list(dict.fromkeys(neighbours))
    if len(unique) > sample:
        unique = rng.sample(unique, sample)
    return unique


def solve_local_search(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
    seed: Optional[int] = None,
    restarts: int = 3,
    max_iterations: int = 200,
    neighbour_sample: int = 64,
    initial: Optional[Partition] = None,
) -> CoalitionSolution:
    """Hill-climb with restarts; deterministic under a fixed seed."""
    rng = random.Random(seed)
    agents = list(network.agents)

    best_partition: Optional[Partition] = None
    best_score: Optional[Score] = None
    examined = 0

    for restart in range(max(1, restarts)):
        if initial is not None and restart == 0:
            current = normalize_partition(initial)
        elif restart % 2 == 0:
            current = singletons(network)
        else:
            shuffled = agents[:]
            rng.shuffle(shuffled)
            k = rng.randint(1, len(agents))
            buckets: List[set] = [set() for _ in range(k)]
            for index, agent in enumerate(shuffled):
                buckets[index % k].add(agent)
            current = normalize_partition(b for b in buckets if b)
        current_score = _score(current, network, op, aggregate)
        examined += 1

        for _ in range(max_iterations):
            candidates = _neighbours(current, rng, neighbour_sample)
            examined += len(candidates)
            improved = False
            for candidate in candidates:
                score = _score(candidate, network, op, aggregate)
                if score > current_score:
                    current, current_score = candidate, score
                    improved = True
            if not improved:
                break

        if best_score is None or current_score > best_score:
            best_partition, best_score = current, current_score

    assert best_partition is not None and best_score is not None
    return CoalitionSolution(
        partition=best_partition,
        trust=best_score[1],
        stable=best_score[0] == 0,
        partitions_examined=examined,
        method="local-search",
    )
