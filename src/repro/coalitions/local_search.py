"""Stochastic local search for coalition structures.

For agent counts beyond exact enumeration (Bell numbers explode past
n ≈ 12) a seeded hill-climber explores the move/merge/split neighbourhood.
The objective is lexicographic: *first* minimize the number of blocking
witnesses (stability is mandatory in the paper), *then* maximize the
fuzzy partition trust — so the search walks unstable structures but
always prefers repairing them.

Reproducibility mirrors :mod:`repro.runtime`'s per-session RNG scheme:
one master ``random.Random(seed)`` derives an independent child stream
per restart *in restart order* (:func:`derive_restart_seeds`), so a
single seed pins down every restart's trajectory regardless of whether
the restarts run sequentially here or as a parallel portfolio in
:mod:`repro.coalitions.engine`.  The climb loop itself
(:func:`climb`) is shared with the engine and parameterized by the
scorer — this module scores naively (a full ``blocking_pairs`` +
``partition_trust`` pass per candidate), the engine incrementally.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ..telemetry import get_registry
from .coalition import Partition, normalize_partition, partition_trust
from .exact import CoalitionSolution, singletons
from .stability import blocking_pairs
from .trust import CompositionOp, TrustNetwork

Score = Tuple[int, float]  # (-blocking count is encoded as minimization)

#: A scorer maps a canonical partition to its lexicographic objective.
Scorer = Callable[[Partition], Score]


def _score(
    partition: Partition,
    network: TrustNetwork,
    op: str | CompositionOp,
    aggregate: str | CompositionOp,
) -> Score:
    blocking = len(blocking_pairs(partition, network, op))
    trust = partition_trust(partition, network, op, aggregate)
    return (-blocking, trust)


def derive_restart_seeds(
    seed: Optional[int], restarts: int
) -> List[int]:
    """One child seed per restart, drawn from the master in restart
    order — the same derivation discipline as the runtime's per-session
    RNGs, so portfolio execution order cannot change any trajectory."""
    master = random.Random(seed)
    return [master.getrandbits(64) for _ in range(max(1, restarts))]


def restart_partition(
    restart: int,
    network: TrustNetwork,
    rng: random.Random,
    initial: Optional[Partition] = None,
) -> Partition:
    """The start structure of one restart: the caller's ``initial`` on
    restart 0, singletons on even restarts, a random bucketing drawn
    from the restart's own stream on odd ones."""
    if initial is not None and restart == 0:
        return normalize_partition(initial)
    if restart % 2 == 0:
        return singletons(network)
    agents = list(network.agents)
    shuffled = agents[:]
    rng.shuffle(shuffled)
    k = rng.randint(1, len(agents))
    buckets: List[set] = [set() for _ in range(k)]
    for index, agent in enumerate(shuffled):
        buckets[index % k].add(agent)
    return normalize_partition(b for b in buckets if b)


def _neighbours(
    partition: Partition, rng: random.Random, sample: int
) -> List[Partition]:
    """A sample of move/merge/split neighbours of ``partition``.

    Identity candidates are filtered: "moving" a singleton's agent into
    a fresh singleton reproduces the current partition, and scoring it
    would waste a full evaluation per iteration while inflating
    ``partitions_examined``.
    """
    base = normalize_partition(partition)
    groups = [set(g) for g in base]
    agents = sorted(a for g in groups for a in g)
    neighbours: List[Partition] = []

    def push(candidate_groups) -> None:
        cleaned = [g for g in candidate_groups if g]
        if not cleaned:
            return
        candidate = normalize_partition(cleaned)
        if candidate != base:
            neighbours.append(candidate)

    # Moves: one agent to another coalition or to a new singleton.
    for agent in agents:
        source_index = next(
            i for i, g in enumerate(groups) if agent in g
        )
        for target_index in range(len(groups) + 1):
            if target_index == source_index:
                continue
            new_groups = [set(g) for g in groups]
            new_groups[source_index].discard(agent)
            if target_index == len(groups):
                new_groups.append({agent})
            else:
                new_groups[target_index].add(agent)
            push(new_groups)

    # Merges of two coalitions.
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            new_groups = [
                set(g) for k, g in enumerate(groups) if k not in (i, j)
            ]
            new_groups.append(groups[i] | groups[j])
            push(new_groups)

    # Random binary splits of larger coalitions.
    for i, group in enumerate(groups):
        if len(group) >= 2:
            members = sorted(group)
            rng.shuffle(members)
            cut = rng.randint(1, len(members) - 1)
            new_groups = [set(g) for k, g in enumerate(groups) if k != i]
            new_groups.append(set(members[:cut]))
            new_groups.append(set(members[cut:]))
            push(new_groups)

    unique = list(dict.fromkeys(neighbours))
    if len(unique) > sample:
        unique = rng.sample(unique, sample)
    return unique


def climb(
    start: Partition,
    rng: random.Random,
    scorer: Scorer,
    neighbour_sample: int,
    max_iterations: int,
) -> Tuple[Partition, Score, int]:
    """Hill-climb from ``start``; returns (partition, score, examined).

    Deterministic given ``rng``'s state and a pure scorer: candidates
    are generated and accepted in a fixed order, so two scorers that
    agree on every partition produce identical trajectories — the
    property the engine-vs-naive equivalence suite pins down.
    """
    current = start
    current_score = scorer(current)
    examined = 1
    for _ in range(max_iterations):
        candidates = _neighbours(current, rng, neighbour_sample)
        examined += len(candidates)
        improved = False
        for candidate in candidates:
            score = scorer(candidate)
            if score > current_score:
                current, current_score = candidate, score
                improved = True
        if not improved:
            break
    return current, current_score, examined


def solve_local_search(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
    seed: Optional[int] = None,
    restarts: int = 3,
    max_iterations: int = 200,
    neighbour_sample: int = 64,
    initial: Optional[Partition] = None,
) -> CoalitionSolution:
    """Hill-climb with restarts; deterministic under a fixed seed."""

    def scorer(partition: Partition) -> Score:
        return _score(partition, network, op, aggregate)

    best_partition: Optional[Partition] = None
    best_score: Optional[Score] = None
    examined = 0

    for restart, restart_seed in enumerate(
        derive_restart_seeds(seed, restarts)
    ):
        rng = random.Random(restart_seed)
        start = restart_partition(restart, network, rng, initial)
        partition, score, climbed = climb(
            start, rng, scorer, neighbour_sample, max_iterations
        )
        examined += climbed
        if best_score is None or score > best_score:
            best_partition, best_score = partition, score

    assert best_partition is not None and best_score is not None
    get_registry().counter(
        "coalition_candidates_total",
        "Coalition structures scored during search, by method.",
        labelnames=("method",),
    ).labels("local-search").inc(examined)
    return CoalitionSolution(
        partition=best_partition,
        trust=best_score[1],
        stable=best_score[0] == 0,
        partitions_examined=examined,
        method="local-search",
    )
