"""Trust networks among service components (paper Sec. 6, Fig. 9).

"Each component has an estimation, based on given dependability metrics,
of the trust level of the other components, and thus they all can be
logically organized in a network"; arcs are directed (trust is
subjective: ``t(x1, x2)`` is x1's judgement of x2).  Trust levels live in
``[0, 1]`` — the Fuzzy semiring carrier used by the Sec. 6.1 encoding.

The composition operator ``◦`` aggregating 1-to-1 relationships is
deliberately *not* a semiring operation (paper: "the ◦ operator has no
relation with the operators of the semirings"); ``min``, ``avg`` and
``max`` instantiations ship here.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import networkx as nx


class TrustError(Exception):
    """Raised on malformed trust data."""


#: A ``◦`` instantiation folds a non-empty list of trust levels.
CompositionOp = Callable[[Sequence[float]], float]


def average(values: Sequence[float]) -> float:
    return sum(values) / len(values)


COMPOSITION_OPS: Dict[str, CompositionOp] = {
    "min": min,
    "max": max,
    "avg": average,
}


def resolve_op(op: str | CompositionOp) -> CompositionOp:
    if callable(op):
        return op
    try:
        return COMPOSITION_OPS[op]
    except KeyError:
        known = ", ".join(sorted(COMPOSITION_OPS))
        raise TrustError(f"unknown ◦ operator {op!r}; known: {known}") from None


class TrustNetwork:
    """A directed graph of subjective trust scores in ``[0, 1]``."""

    def __init__(
        self,
        agents: Iterable[str],
        scores: Optional[Mapping[Tuple[str, str], float]] = None,
        default: Optional[float] = None,
    ) -> None:
        self.agents: Tuple[str, ...] = tuple(agents)
        if len(set(self.agents)) != len(self.agents):
            raise TrustError("duplicate agent names")
        if not self.agents:
            raise TrustError("a trust network needs at least one agent")
        self.default = default
        self._scores: Dict[Tuple[str, str], float] = {}
        for (source, target), value in (scores or {}).items():
            self.set_trust(source, target, value)

    # ------------------------------------------------------------------
    # Mutation / access
    # ------------------------------------------------------------------

    def set_trust(self, source: str, target: str, value: float) -> None:
        if source not in self.agents or target not in self.agents:
            raise TrustError(f"unknown agent in ({source!r}, {target!r})")
        if not 0.0 <= value <= 1.0:
            raise TrustError(f"trust {value!r} outside [0, 1]")
        self._scores[(source, target)] = value

    def trust(self, source: str, target: str) -> Optional[float]:
        """``t(source, target)`` — None when unstated and no default."""
        value = self._scores.get((source, target))
        if value is None:
            return self.default
        return value

    def known_scores(self) -> Dict[Tuple[str, str], float]:
        return dict(self._scores)

    def outgoing(self, source: str) -> Dict[str, float]:
        """Every target ``source`` has judged (explicit scores only)."""
        return {
            target: value
            for (s, target), value in self._scores.items()
            if s == source
        }

    def __len__(self) -> int:
        return len(self.agents)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx digraph (edge attribute ``trust``)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.agents)
        for (source, target), value in self._scores.items():
            graph.add_edge(source, target, trust=value)
        return graph

    def subjectivity_gap(self) -> float:
        """Largest ``|t(a,b) − t(b,a)|`` — how asymmetric judgements are."""
        gap = 0.0
        for (source, target), value in self._scores.items():
            reverse = self._scores.get((target, source))
            if reverse is not None:
                gap = max(gap, abs(value - reverse))
        return gap


def random_trust_network(
    n_agents: int,
    seed: Optional[int] = None,
    density: float = 1.0,
    self_trust: float = 1.0,
) -> TrustNetwork:
    """A seeded random network for scalability experiments.

    ``density`` is the probability that any ordered pair carries an
    explicit score; pairs without one fall back to a 0.5 default so every
    coalition remains evaluable.
    """
    if n_agents <= 0:
        raise TrustError("need at least one agent")
    if not 0.0 < density <= 1.0:
        raise TrustError("density must be in (0, 1]")
    rng = random.Random(seed)
    agents = [f"x{i}" for i in range(1, n_agents + 1)]
    network = TrustNetwork(agents, default=0.5)
    for source in agents:
        network.set_trust(source, source, self_trust)
        for target in agents:
            if source != target and rng.random() < density:
                network.set_trust(source, target, round(rng.random(), 3))
    return network


def figure9_network() -> TrustNetwork:
    """A concrete 7-component network in the shape of the paper's Fig. 9.

    The figure shows seven components ``x1 … x7`` with directed
    judgements but prints no numeric levels; these values are chosen so
    that, under the ``avg`` composition ``◦`` (one of the paper's two
    named instantiations), the Fig. 10 scenario materializes: ``x4``
    trusts the members of ``C1 = {x1, x2, x3}`` more than its own
    coalition ``C2 = {x4, x5, x6, x7}``, and joining ``x4`` strictly
    raises ``T(C1)`` — i.e. ``{C1, C2}`` is *blocked* exactly as the
    paper sketches.  Self-trust is 0.6, so non-singleton coalitions of
    mutually trusting components genuinely beat staying alone.

    (Under ``◦ = min`` the second blocking condition ``T(Cu ∪ xk) >
    T(Cu)`` can never hold — adding pairs cannot raise a minimum — so
    every partition is trivially stable; the ``avg`` instantiation is
    the interesting one for stability analysis.)
    """
    agents = [f"x{i}" for i in range(1, 8)]
    network = TrustNetwork(agents, default=0.5)
    scores = {
        # x4's view: high opinion of C1, low of its C2 fellows.
        ("x4", "x1"): 0.9,
        ("x4", "x2"): 0.85,
        ("x4", "x3"): 0.8,
        ("x4", "x5"): 0.3,
        ("x4", "x6"): 0.35,
        ("x4", "x7"): 0.25,
        # C1 members trust each other strongly — and would welcome x4.
        ("x1", "x2"): 0.9,
        ("x2", "x1"): 0.85,
        ("x1", "x3"): 0.8,
        ("x3", "x1"): 0.9,
        ("x2", "x3"): 0.85,
        ("x3", "x2"): 0.8,
        ("x1", "x4"): 0.95,
        ("x2", "x4"): 0.95,
        ("x3", "x4"): 0.95,
        # The remaining C2 members mostly like each other, less so x4.
        ("x5", "x6"): 0.7,
        ("x6", "x5"): 0.75,
        ("x5", "x7"): 0.65,
        ("x7", "x5"): 0.7,
        ("x6", "x7"): 0.6,
        ("x7", "x6"): 0.65,
        ("x5", "x4"): 0.4,
        ("x6", "x4"): 0.45,
        ("x7", "x4"): 0.4,
    }
    for i in range(1, 8):
        scores[(f"x{i}", f"x{i}")] = 0.6
    for (source, target), value in scores.items():
        network.set_trust(source, target, value)
    return network
