"""Semiring-based trust propagation (paper Sec. 6: "by changing the
semiring structure we can represent different trust metrics", citing
Bistarelli & Santini, *Propagating multitrust within trust networks*,
SAC 2008, and Theodorakopoulos & Baras, WiSe 2004).

Direct judgements cover only some ordered pairs; the trust an agent
places in a stranger is derived from *paths* of judgements: ``×``
composes trust along a path, ``+`` aggregates across alternative paths.
Instantiations:

* Fuzzy ``⟨[0,1], max, min⟩`` — the best *bottleneck* path ("a chain is
  as trustworthy as its weakest recommendation");
* Probabilistic ``⟨[0,1], max, ×⟩`` — the best *multiplicative* path
  (each hop independently dilutes trust).

The algebraic closure is computed Floyd–Warshall style, exact for any
absorptive semiring because ``+`` is idempotent and ``×`` monotone
(longer paths never beat their own prefixes, so cycles cannot inflate
trust).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..semirings.base import Semiring
from ..semirings.fuzzy import FuzzySemiring
from .trust import TrustError, TrustNetwork


def propagation_closure(
    network: TrustNetwork,
    semiring: Optional[Semiring] = None,
) -> Dict[Tuple[str, str], float]:
    """All-pairs indirect trust: ``t*(a,b) = ⊕_paths ⊗_hops t(hop)``.

    Only *explicit* scores seed the closure (the network's ``default`` is
    deliberately ignored — propagation exists to replace that fallback).
    Diagonal entries are seeded with the semiring ``1`` so a path may
    start at its owner, but self-trust stated explicitly is preserved.
    """
    semiring = semiring or FuzzySemiring()
    agents = list(network.agents)
    scores = network.known_scores()

    closure: Dict[Tuple[str, str], float] = {}
    for a in agents:
        for b in agents:
            if (a, b) in scores:
                closure[(a, b)] = scores[(a, b)]
            elif a == b:
                closure[(a, b)] = semiring.one
            else:
                closure[(a, b)] = semiring.zero

    for via in agents:
        for a in agents:
            through_a = closure[(a, via)]
            if through_a == semiring.zero:
                continue
            for b in agents:
                candidate = semiring.times(through_a, closure[(via, b)])
                closure[(a, b)] = semiring.plus(closure[(a, b)], candidate)
    return closure


def propagate_trust(
    network: TrustNetwork,
    semiring: Optional[Semiring] = None,
    keep_direct: bool = True,
) -> TrustNetwork:
    """A completed network whose missing judgements are path-derived.

    ``keep_direct`` preserves every explicitly stated score verbatim
    (first-hand experience beats hearsay even when a path scores higher);
    switch it off to let strong paths override weak direct judgements.
    """
    semiring = semiring or FuzzySemiring()
    if not semiring.is_total_order():
        raise TrustError(
            "trust propagation needs a totally ordered semiring "
            f"({semiring.name} is partial)"
        )
    closure = propagation_closure(network, semiring)
    direct = network.known_scores()

    completed = TrustNetwork(network.agents, default=None)
    for pair, value in closure.items():
        if keep_direct and pair in direct:
            completed.set_trust(*pair, direct[pair])
        elif value != semiring.zero:
            completed.set_trust(*pair, float(value))
    return completed


def trust_between(
    network: TrustNetwork,
    source: str,
    target: str,
    semiring: Optional[Semiring] = None,
) -> float:
    """Indirect trust for one pair (full closure; convenience wrapper)."""
    semiring = semiring or FuzzySemiring()
    closure = propagation_closure(network, semiring)
    try:
        return closure[(source, target)]
    except KeyError:
        raise TrustError(
            f"unknown agents in pair ({source!r}, {target!r})"
        ) from None


def coverage(network: TrustNetwork) -> float:
    """Fraction of ordered pairs (source ≠ target) with explicit scores —
    how sparse the first-hand knowledge is before propagation."""
    n = len(network.agents)
    if n < 2:
        return 1.0
    explicit = sum(
        1 for (a, b) in network.known_scores() if a != b
    )
    return explicit / (n * (n - 1))
