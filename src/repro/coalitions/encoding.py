"""The Sec. 6.1 SCSP encoding of coalition formation.

Variables ``co1 … con`` (one per potential coalition) range over the
powerset of agent identifiers; the Fuzzy semiring ``⟨[0,1], max, min⟩``
maximizes the minimum coalition trustworthiness.  Three constraint
classes, exactly as in the paper:

1. *Trust constraints* — unary: ``ct(coi = {…}) = T({…})`` via ``◦``;
2. *Partition constraints* — crisp: pairwise disjointness plus the
   global cardinality check ``|η(co1) ∪ … ∪ η(con)| = n``;
3. *Stability constraints* — crisp, one per ordered coalition-variable
   pair and agent ``xk``, ruling out blocking configurations (Def. 4).

The encoding is exponential by construction (domains are powersets) — it
demonstrates the *formalization*; the practical solver for larger n is
:mod:`repro.coalitions.exact` et al.  ``decode`` maps a solver assignment
back to a partition.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Mapping, Tuple

from ..constraints.constraint import FunctionConstraint
from ..constraints.variables import Variable
from ..semirings.fuzzy import FuzzySemiring
from ..solver.problem import SCSP
from .coalition import coalition_trust, member_view, normalize_partition
from .trust import CompositionOp, TrustNetwork, resolve_op

_FUZZY = FuzzySemiring()


def _powerset(agents: Tuple[str, ...]) -> Tuple[FrozenSet[str], ...]:
    subsets: List[FrozenSet[str]] = [frozenset()]
    for agent in agents:
        subsets.extend(frozenset(s | {agent}) for s in list(subsets))
    return tuple(subsets)


def coalition_variables(network: TrustNetwork) -> List[Variable]:
    """``co1 … con`` over the powerset domain (η(coi) = ∅ allowed:
    'the framework finds less than n coalitions')."""
    domain = _powerset(network.agents)
    return [
        Variable(f"co{i + 1}", domain) for i in range(len(network.agents))
    ]


def build_coalition_scsp(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
) -> Tuple[SCSP, List[Variable]]:
    """The full Sec. 6.1 problem: trust ⊗ partition ⊗ stability."""
    variables = coalition_variables(network)
    fold = resolve_op(op)
    constraints = []

    # 1. Trust constraints (unary, genuinely soft).
    def trust_level(group: FrozenSet[str]) -> float:
        if not group:
            return 1.0  # an unused coalition slot does not hurt the min
        return coalition_trust(group, network, fold)

    for variable in variables:
        constraints.append(
            FunctionConstraint(
                _FUZZY, (variable,), trust_level, name=f"ct({variable.name})"
            )
        )

    # 2. Partition constraints (crisp).
    def disjoint(a: FrozenSet[str], b: FrozenSet[str]) -> float:
        return 0.0 if a & b else 1.0

    for i in range(len(variables)):
        for j in range(i + 1, len(variables)):
            constraints.append(
                FunctionConstraint(
                    _FUZZY,
                    (variables[i], variables[j]),
                    disjoint,
                    name=f"cp({variables[i].name},{variables[j].name})",
                )
            )

    total = len(network.agents)

    def covers(*groups: FrozenSet[str]) -> float:
        union: set = set()
        for group in groups:
            union |= group
        return 1.0 if len(union) == total else 0.0

    constraints.append(
        FunctionConstraint(
            _FUZZY, tuple(variables), covers, name="cp(coverage)"
        )
    )

    # 3. Stability constraints (crisp), one per ordered pair and agent.
    def stability_for(agent: str):
        def level(target: FrozenSet[str], source: FrozenSet[str]) -> float:
            if agent not in source:
                return 1.0
            if not target or target & source:
                return 1.0
            own_fellows = [a for a in source if a != agent]
            rating_target = member_view(agent, target, network, fold)
            rating_own = member_view(agent, own_fellows, network, fold)
            if rating_target <= rating_own:
                return 1.0
            before = coalition_trust(target, network, fold)
            after = coalition_trust(target | {agent}, network, fold)
            return 0.0 if after > before else 1.0

        return level

    for agent in network.agents:
        level_fn = stability_for(agent)
        for target_var in variables:
            for source_var in variables:
                if target_var is source_var:
                    continue
                constraints.append(
                    FunctionConstraint(
                        _FUZZY,
                        (target_var, source_var),
                        level_fn,
                        name=(
                            f"cs({target_var.name},{source_var.name},{agent})"
                        ),
                    )
                )

    problem = SCSP(constraints, name="coalition-formation")
    return problem, variables


def decode(
    assignment: Mapping[str, Any], variables: List[Variable]
) -> Tuple[FrozenSet[str], ...]:
    """Solver assignment → canonical partition (empty slots dropped)."""
    groups = [
        assignment[variable.name]
        for variable in variables
        if assignment[variable.name]
    ]
    return normalize_partition(groups)
