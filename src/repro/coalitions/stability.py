"""Blocking coalitions and partition stability (paper Sec. 6, Def. 4).

``Cu`` and ``Cv`` are *blocking* when some ``xk ∈ Cv`` (i) rates ``Cu``'s
members strictly higher than its own coalition fellows and (ii) would
strictly raise ``T(Cu)`` by joining.  "A set of coalitions is stable,
i.e. is a valid solution, if no blocking coalitions exist in the
partitioning of the agents."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .coalition import (
    Coalition,
    coalition_trust,
    member_view,
    normalize_partition,
)
from .trust import CompositionOp, TrustNetwork


@dataclass(frozen=True)
class BlockingWitness:
    """Why a partition is unstable: the defector and the two coalitions."""

    defector: str
    from_coalition: Coalition
    to_coalition: Coalition
    preference_for_target: float
    preference_for_own: float
    target_trust_before: float
    target_trust_after: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.defector} prefers {sorted(self.to_coalition)} "
            f"({self.preference_for_target:.3f} > "
            f"{self.preference_for_own:.3f}) and raises its T "
            f"({self.target_trust_before:.3f} → "
            f"{self.target_trust_after:.3f})"
        )


def blocking_witness(
    target: Coalition,
    source: Coalition,
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    trust_fn: Optional[Callable[[Coalition], float]] = None,
    view_fn: Optional[Callable[[str, Coalition], float]] = None,
) -> Optional[BlockingWitness]:
    """Def. 4 for an ordered pair ``(Cu=target, Cv=source)``: the first
    ``xk ∈ source`` making them blocking, or ``None``.

    ``trust_fn`` overrides how ``T(C)`` is computed and ``view_fn`` how
    an agent rates a coalition — the incremental engine passes its
    frozenset-memoized versions here so repeated witness checks share
    one trust table instead of recomputing Def. 3 from scratch.
    """
    if trust_fn is None:
        trust_fn = lambda c: coalition_trust(c, network, op)  # noqa: E731
    if view_fn is None:
        view_fn = (  # noqa: E731
            lambda agent, group: member_view(agent, group, network, op)
        )
    target_trust = trust_fn(target)
    for candidate in sorted(source):
        own_fellows = frozenset(a for a in source if a != candidate)
        rating_target = view_fn(candidate, target)
        rating_own = view_fn(candidate, own_fellows)
        if rating_target <= rating_own:
            continue
        joined = trust_fn(frozenset(target | {candidate}))
        if joined > target_trust:
            return BlockingWitness(
                defector=candidate,
                from_coalition=source,
                to_coalition=target,
                preference_for_target=rating_target,
                preference_for_own=rating_own,
                target_trust_before=target_trust,
                target_trust_after=joined,
            )
    return None


def blocking_pairs(
    partition: Iterable[Iterable[str]],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
) -> List[BlockingWitness]:
    """Every blocking witness over all ordered coalition pairs."""
    normalized = normalize_partition(partition)
    witnesses: List[BlockingWitness] = []
    for target in normalized:
        for source in normalized:
            if target == source:
                continue
            witness = blocking_witness(target, source, network, op)
            if witness is not None:
                witnesses.append(witness)
    return witnesses


def is_stable(
    partition: Iterable[Iterable[str]],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
) -> bool:
    """Whether no blocking coalitions exist (Def. 4's feasibility)."""
    normalized = normalize_partition(partition)
    for target in normalized:
        for source in normalized:
            if target != source and blocking_witness(
                target, source, network, op
            ):
                return False
    return True


def repair_step(
    partition: Sequence[Coalition],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
) -> Optional[Tuple[Tuple[Coalition, ...], BlockingWitness]]:
    """Execute one defection: move the first blocking witness's defector
    into the coalition it prefers.

    Returns the new partition and the witness, or ``None`` when the
    partition is already stable.  Iterating this is the natural
    better-response dynamics over Def. 4.
    """
    normalized = normalize_partition(partition)
    witnesses = blocking_pairs(normalized, network, op)
    if not witnesses:
        return None
    witness = witnesses[0]
    moved: List[Coalition] = []
    for group in normalized:
        if group == witness.from_coalition:
            remainder = group - {witness.defector}
            if remainder:
                moved.append(remainder)
        elif group == witness.to_coalition:
            moved.append(group | {witness.defector})
        else:
            moved.append(group)
    return normalize_partition(moved), witness


def stabilize(
    partition: Iterable[Iterable[str]],
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    max_steps: int = 1000,
) -> Tuple[Tuple[Coalition, ...], List[BlockingWitness], bool]:
    """Run better-response dynamics until stable or ``max_steps``.

    Returns ``(partition, defection_history, converged)``.  Convergence
    is not guaranteed in general hedonic games — the flag reports it.
    """
    current = normalize_partition(partition)
    history: List[BlockingWitness] = []
    for _ in range(max_steps):
        step = repair_step(current, network, op)
        if step is None:
            return current, history, True
        current, witness = step
        history.append(witness)
    return current, history, False
