"""Incremental, parallel coalition-structure engine (paper Sec. 6 at scale).

:func:`repro.coalitions.local_search.solve_local_search` rescoring is
naive: every candidate pays a full ``blocking_pairs`` sweep — ``O(k²)``
ordered coalition pairs, each witness check recomputing ``T(C)`` from
scratch — plus a fresh ``partition_trust`` fold, roughly O(n⁴) trust
lookups per candidate.  This engine keeps the *identical* search
trajectory (same neighbourhood, same acceptance order, same per-restart
RNG streams) but scores incrementally:

* **Trust memo** — ``T(C)`` is a pure function of the frozenset ``C``
  once the network and ``◦`` are fixed, so it is memoized per coalition
  in a shared :class:`repro.caching.LRUCache`.
* **Delta stability** — a move/merge/split perturbs at most a handful of
  coalitions; an ordered pair ``(Cu, Cv)`` whose two coalitions both
  survived the step cannot change its blocking verdict (Def. 4 reads
  only ``Cu``, ``Cv`` and the fixed network).  Witness results are
  therefore cached keyed by the coalition *pair*, and scoring a
  candidate re-checks only the dirty pairs — the ones touching a
  changed coalition; every clean pair is a cache hit.
* **Seeded portfolio** — restarts are independent once each owns a
  child RNG derived in restart order (mirroring the runtime's
  per-session derivation), so they run as a portfolio on a
  ``concurrent.futures`` pool and merge deterministically in restart
  order: execution interleaving cannot change the answer, and a single
  worker reproduces the sequential baseline bit for bit.

Telemetry: ``coalition_candidates_total{method="engine"}``,
``coalition_trust_cache_hits_total``, and one ``coalitions.restart``
span per portfolio member.
"""

from __future__ import annotations

import contextvars
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from ..caching import LRUCache
from ..telemetry import get_registry, get_tracer
from .coalition import (
    Coalition,
    Partition,
    coalition_trust,
    member_view,
)
from .exact import CoalitionSolution
from .local_search import (
    Score,
    climb,
    derive_restart_seeds,
    restart_partition,
)
from .trust import CompositionOp, TrustNetwork, resolve_op

#: Default capacities: a coalition entry is a frozenset key + float, a
#: pair entry two frozensets + bool — both tiny, so the caches are sized
#: to hold every coalition a long search at n ≈ 50 actually visits.
TRUST_CACHE_SIZE = 1 << 16
PAIR_CACHE_SIZE = 1 << 17

#: Cache-miss sentinel (``None`` is a legitimate cached value).
_MISS = object()


class IncrementalScorer:
    """Exact ``(-blocking, trust)`` scoring with delta evaluation.

    Agreement with the naive scorer on *every* partition is the load-
    bearing property (the climb trajectory branches on scores); the
    randomized equivalence suite pins it down.  Thread-safe: the caches
    are shared by all portfolio workers — a pair proven clean in one
    restart is a hit in every other — while the delta anchor lives in
    thread-local state so concurrent restarts never cross-talk.
    """

    def __init__(
        self,
        network: TrustNetwork,
        op: str | CompositionOp = "min",
        aggregate: str | CompositionOp = "min",
        trust_cache_size: int = TRUST_CACHE_SIZE,
        pair_cache_size: int = PAIR_CACHE_SIZE,
    ) -> None:
        self.network = network
        self.op = op
        self._fold = resolve_op(aggregate)
        # telemetry=False: the scorer does hundreds of lookups per
        # candidate, so even null-registry counter resolution would
        # dominate; totals surface once per solve through the explicit
        # coalition_trust_cache_hits_total counter instead.
        self.trust_cache = LRUCache(
            trust_cache_size,
            name="coalition_trust",
            threadsafe=True,
            telemetry=False,
        )
        # Pair verdicts and member views live in flat dicts, not
        # LRUCaches: at ~100 lookups per candidate the LRU bookkeeping
        # (lock + recency move) was itself the scorer's bottleneck.
        # Bounded by wholesale clear at capacity — entries are cheap to
        # recompute and the cap is far above a realistic working set.
        # Unlocked on purpose: dict get/set on tuple/frozenset keys is
        # atomic under the GIL, and a lost race merely recomputes a
        # deterministic value.
        self._pair_cap = pair_cache_size
        self._pair_memo: dict = {}
        self._view_memo: dict = {}
        self._local = threading.local()

    # -- memoized Def. 3 / Def. 4 primitives ---------------------------

    def trust_of(self, group: Coalition) -> float:
        """Memoized Def. 3 ``T(C)``."""
        value = self.trust_cache.get(group, _MISS)
        if value is _MISS:
            value = coalition_trust(group, self.network, self.op)
            self.trust_cache.put(group, value)
        return value

    def view_of(self, agent: str, group: Coalition) -> float:
        """Memoized ``◦``-composed rating of ``group`` by ``agent``."""
        memo = self._view_memo
        key = (agent, group)
        value = memo.get(key)
        if value is None:
            value = member_view(agent, group, self.network, self.op)
            if len(memo) >= self._pair_cap:
                memo.clear()
            memo[key] = value
        return value

    def _own_view(self, agent: str, source: Coalition) -> float:
        """``agent``'s rating of its own coalition fellows — memoized so
        the ``source − {agent}`` frozenset is only built on a miss."""
        memo = self._view_memo
        key = (source, agent)
        value = memo.get(key)
        if value is None:
            value = member_view(
                agent, source - {agent}, self.network, self.op
            )
            if len(memo) >= self._pair_cap:
                memo.clear()
            memo[key] = value
        return value

    def pair_blocks(self, target: Coalition, source: Coalition) -> bool:
        """Memoized Def. 4 verdict for the ordered pair ``(Cu, Cv)``."""
        memo = self._pair_memo
        key = (target, source)
        value = memo.get(key)
        if value is None:
            value = self._pair_blocks_fresh(target, source)
            if len(memo) >= self._pair_cap:
                memo.clear()
            memo[key] = value
        return value

    def _pair_blocks_fresh(
        self, target: Coalition, source: Coalition
    ) -> bool:
        """Boolean-only :func:`~repro.coalitions.stability
        .blocking_witness` over the memoized primitives: same member
        order, same strict comparisons, no witness object built."""
        trust_of = self.trust_of
        view_of = self.view_of
        own_view = self._own_view
        target_trust = trust_of(target)
        for candidate in sorted(source):
            if view_of(candidate, target) <= own_view(candidate, source):
                continue
            if trust_of(target | {candidate}) > target_trust:
                return True
        return False

    # -- partition scoring ---------------------------------------------

    def __call__(self, partition: Partition) -> Score:
        blocking = self._blocking(partition)
        trust_of = self.trust_of
        trust = self._fold([trust_of(group) for group in partition])
        return (-blocking, trust)

    def _blocking(self, partition: Partition) -> int:
        """Blocking-pair count, delta-evaluated against the thread's
        anchor partition when the diff is small.

        Only pairs touching a changed coalition are re-checked; a pair
        whose two coalitions both survived the step cannot change its
        verdict (Def. 4 reads only the pair and the fixed network), so
        its contribution rides along inside the anchor's count.  The
        arithmetic is exact — the delta path and the full path agree on
        every partition — so anchoring is purely a performance choice.
        """
        state = self._local
        anchor: Optional[Partition] = getattr(state, "anchor", None)
        if anchor is not None:
            candidate_set = frozenset(partition)
            anchor_set: frozenset = state.anchor_set
            removed = [g for g in anchor if g not in candidate_set]
            added = [g for g in partition if g not in anchor_set]
            if not removed and not added:
                return state.anchor_blocking
            if len(removed) + len(added) <= max(4, len(partition) // 2):
                kept = [g for g in anchor if g in candidate_set]
                return (
                    state.anchor_blocking
                    - self._touching(removed, kept)
                    + self._touching(added, kept)
                )
        # Full evaluation; the result becomes the new anchor (the climb
        # drifts away from the old one until the diff bound re-triggers
        # this path, which is cheap on a warm pair cache).
        blocking = 0
        memo = self._pair_memo
        memo_get = memo.get
        pair_blocks = self.pair_blocks
        for target in partition:
            for source in partition:
                if target == source:
                    continue
                verdict = memo_get((target, source))
                if verdict is None:
                    verdict = pair_blocks(target, source)
                if verdict:
                    blocking += 1
        state.anchor = partition
        state.anchor_set = frozenset(partition)
        state.anchor_blocking = blocking
        return blocking

    def _touching(
        self, dirty: List[Coalition], kept: List[Coalition]
    ) -> int:
        """Ordered blocking pairs with ≥1 endpoint among ``dirty``
        inside the partition ``dirty ∪ kept``."""
        memo_get = self._pair_memo.get
        pair_blocks = self.pair_blocks
        count = 0
        for d in dirty:
            for k in kept:
                verdict = memo_get((d, k))
                if verdict is None:
                    verdict = pair_blocks(d, k)
                if verdict:
                    count += 1
                verdict = memo_get((k, d))
                if verdict is None:
                    verdict = pair_blocks(k, d)
                if verdict:
                    count += 1
            for d2 in dirty:
                if d2 is not d:
                    verdict = memo_get((d, d2))
                    if verdict is None:
                        verdict = pair_blocks(d, d2)
                    if verdict:
                        count += 1
        return count


def solve_engine(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
    seed: Optional[int] = None,
    restarts: int = 3,
    max_iterations: int = 200,
    neighbour_sample: int = 64,
    workers: int = 1,
    initial: Optional[Partition] = None,
    scorer: Optional[IncrementalScorer] = None,
) -> CoalitionSolution:
    """Portfolio hill-climb with incremental scoring.

    Under a fixed ``seed`` the result is independent of ``workers``: the
    per-restart RNG streams are derived up front and the merge walks the
    outcomes in restart order, keeping the first of any score tie — the
    same rule the sequential baseline applies.  Pass a pre-warmed
    ``scorer`` to share trust/pair memos across successive solves over
    one network.
    """
    if scorer is None:
        scorer = IncrementalScorer(network, op, aggregate)
    hits_before = scorer.trust_cache.hits
    seeds = derive_restart_seeds(seed, restarts)
    tracer = get_tracer()

    def run_restart(
        restart: int, restart_seed: int
    ) -> Tuple[Partition, Score, int]:
        with tracer.span(
            "coalitions.restart",
            restart=restart,
            agents=len(network),
        ):
            rng = random.Random(restart_seed)
            start = restart_partition(restart, network, rng, initial)
            return climb(
                start, rng, scorer, neighbour_sample, max_iterations
            )

    if workers <= 1 or len(seeds) == 1:
        outcomes = [
            run_restart(index, restart_seed)
            for index, restart_seed in enumerate(seeds)
        ]
    else:
        with ThreadPoolExecutor(
            max_workers=min(workers, len(seeds)),
            thread_name_prefix="repro-coalitions",
        ) as pool:
            futures = []
            for index, restart_seed in enumerate(seeds):
                # Copy the context so restart spans nest under the
                # caller's span even on pool threads.
                ctx = contextvars.copy_context()
                futures.append(
                    pool.submit(ctx.run, run_restart, index, restart_seed)
                )
            # Collected in restart order, not completion order: the
            # merge below is deterministic under any interleaving.
            outcomes = [future.result() for future in futures]

    best_partition: Optional[Partition] = None
    best_score: Optional[Score] = None
    examined = 0
    for partition, score, climbed in outcomes:
        examined += climbed
        if best_score is None or score > best_score:
            best_partition, best_score = partition, score

    assert best_partition is not None and best_score is not None
    registry = get_registry()
    registry.counter(
        "coalition_candidates_total",
        "Coalition structures scored during search, by method.",
        labelnames=("method",),
    ).labels("engine").inc(examined)
    registry.counter(
        "coalition_trust_cache_hits_total",
        "Coalition-trust lookups answered from the frozenset memo.",
    ).inc(scorer.trust_cache.hits - hits_before)
    return CoalitionSolution(
        partition=best_partition,
        trust=best_score[1],
        stable=best_score[0] == 0,
        partitions_examined=examined,
        method="engine",
    )

