"""Exact coalition-structure search over set partitions.

Enumerates every partition of the agent set (restricted-growth strings,
Bell(n) many), filters by the Def. 4 stability condition, and maximizes
the fuzzy partition objective.  Practical up to a dozen agents — the
regime of the paper's seven-component Fig. 9 — and the ground truth the
greedy/local-search baselines are measured against (benchmark E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from .coalition import (
    Partition,
    normalize_partition,
    partition_trust,
)
from .stability import is_stable
from .trust import CompositionOp, TrustNetwork


def enumerate_partitions(agents: Sequence[str]) -> Iterator[Partition]:
    """All set partitions of ``agents`` via restricted growth strings."""
    items = list(agents)
    n = len(items)
    if n == 0:
        return

    def grow(index: int, groups: List[List[str]]) -> Iterator[Partition]:
        if index == n:
            yield normalize_partition(groups)
            return
        item = items[index]
        for group in groups:
            group.append(item)
            yield from grow(index + 1, groups)
            group.pop()
        groups.append([item])
        yield from grow(index + 1, groups)
        groups.pop()

    yield from grow(0, [])


def bell_number(n: int) -> int:
    """Bell(n) — how many partitions exact search must consider."""
    if n < 0:
        raise ValueError("n must be non-negative")
    row = [1]
    for _ in range(n):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[0]


@dataclass
class CoalitionSolution:
    """Result of a coalition-structure search."""

    partition: Optional[Partition]
    trust: float
    stable: bool
    partitions_examined: int = 0
    stable_partitions: int = 0
    method: str = "exact"
    history: List = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.partition is not None

    def coalitions_as_sets(self) -> List[set]:
        return [set(group) for group in (self.partition or ())]


def solve_exact(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
    require_stability: bool = True,
) -> CoalitionSolution:
    """Best (stable) partition by exhaustive enumeration.

    With ``require_stability`` (the paper's mandatory condition) only
    partitions free of blocking coalitions compete; switch it off to
    measure how much guaranteeing stability costs in objective value.
    """
    best_partition: Optional[Partition] = None
    best_trust = float("-inf")
    examined = 0
    stable_count = 0

    for partition in enumerate_partitions(network.agents):
        examined += 1
        stable = is_stable(partition, network, op)
        if stable:
            stable_count += 1
        if require_stability and not stable:
            continue
        score = partition_trust(partition, network, op, aggregate)
        if score > best_trust:
            best_trust = score
            best_partition = partition

    if best_partition is None:
        return CoalitionSolution(
            partition=None,
            trust=0.0,
            stable=False,
            partitions_examined=examined,
            stable_partitions=stable_count,
        )
    return CoalitionSolution(
        partition=best_partition,
        trust=best_trust,
        stable=is_stable(best_partition, network, op),
        partitions_examined=examined,
        stable_partitions=stable_count,
    )


def grand_coalition(network: TrustNetwork) -> Partition:
    """Everyone together — a common reference structure."""
    return normalize_partition([set(network.agents)])


def singletons(network: TrustNetwork) -> Partition:
    """Everyone alone — the other reference structure."""
    return normalize_partition([{agent} for agent in network.agents])
