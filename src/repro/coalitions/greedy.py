"""Greedy coalition-formation baselines (paper Sec. 6, after Breban &
Vassileva, AAMAS 2002).

* *Individually oriented*: "an agent prefers to be in the same coalition
  with the agent with whom it has the best relationship" — each agent
  picks its most-trusted peer and the chosen links are closed
  transitively into clusters.
* *Socially oriented*: "the agent prefers the coalition in which it has
  most summative trust" — realized as agglomerative merging: repeatedly
  merge the two coalitions whose union scores best, while it improves
  the objective.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .coalition import (
    Partition,
    coalition_trust,
    normalize_partition,
    partition_trust,
)
from .exact import CoalitionSolution, singletons
from .stability import is_stable
from .trust import CompositionOp, TrustNetwork


def individually_oriented(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
) -> CoalitionSolution:
    """Union-find over each agent's single best outgoing relationship.

    Agents with no outgoing judgement (besides themselves) stay alone.
    """
    parent: Dict[str, str] = {agent: agent for agent in network.agents}

    def find(agent: str) -> str:
        while parent[agent] != agent:
            parent[agent] = parent[parent[agent]]
            agent = parent[agent]
        return agent

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for agent in network.agents:
        ratings = {
            target: value
            for target, value in network.outgoing(agent).items()
            if target != agent
        }
        if not ratings:
            continue
        best_peer = max(sorted(ratings), key=lambda t: ratings[t])
        union(agent, best_peer)

    clusters: Dict[str, set] = {}
    for agent in network.agents:
        clusters.setdefault(find(agent), set()).add(agent)
    partition = normalize_partition(clusters.values())
    return CoalitionSolution(
        partition=partition,
        trust=partition_trust(partition, network, op, aggregate),
        stable=is_stable(partition, network, op),
        partitions_examined=1,
        method="individually-oriented",
    )


def socially_oriented(
    network: TrustNetwork,
    op: str | CompositionOp = "min",
    aggregate: str | CompositionOp = "min",
) -> CoalitionSolution:
    """Agglomerative merging while the partition objective improves.

    Starts from singletons; each round evaluates every pairwise merge and
    applies the best strictly improving one (ties broken towards the
    merge whose own coalition trust is higher, then lexicographically on
    the merged coalition's sorted members — so the winner never depends
    on how the candidate merges happen to be enumerated).
    """
    current: Partition = singletons(network)
    current_score = partition_trust(current, network, op, aggregate)
    examined = 1

    improved = True
    while improved and len(current) > 1:
        improved = False
        best_merge: Optional[Partition] = None
        best_key: Optional[Tuple[float, float]] = None
        best_lex: Tuple[str, ...] = ()
        groups: List[frozenset] = list(current)
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                merged = groups[i] | groups[j]
                candidate = normalize_partition(
                    [g for k, g in enumerate(groups) if k not in (i, j)]
                    + [merged]
                )
                examined += 1
                score = partition_trust(candidate, network, op, aggregate)
                if score <= current_score:
                    continue
                key = (score, coalition_trust(merged, network, op))
                lex = tuple(sorted(merged))
                if (
                    best_key is None
                    or key > best_key
                    or (key == best_key and lex < best_lex)
                ):
                    best_merge, best_key, best_lex = candidate, key, lex
        if best_merge is not None and best_key is not None:
            current = best_merge
            current_score = best_key[0]
            improved = True

    return CoalitionSolution(
        partition=current,
        trust=current_score,
        stable=is_stable(current, network, op),
        partitions_examined=examined,
        method="socially-oriented",
    )
