"""repro.runtime — the concurrent serving layer over the broker.

An asyncio runtime that accepts many concurrent client sessions and
drives the five-step broker lifecycle per session (paper Sec. 4: the
broker mediates nmsccp agents executing in parallel on one store):
bounded admission with typed :class:`Overloaded` backpressure, a worker
pool that offloads CPU-bound SCSP solves off the event loop, per-session
deadlines, retry with seeded exponential backoff, graceful degradation
to the last-known SLA, and a load generator with open/closed-loop client
populations.  Everything reports through :mod:`repro.telemetry`.
"""

from .batching import (
    BATCH_SIZE_BUCKETS,
    BatchConfig,
    BatchScheduler,
    BatchingError,
    COALESCE_OUTCOMES,
    RoundScheduler,
)
from .loadgen import (
    LoadGenError,
    LoadGenerator,
    LoadProfile,
    LoadReport,
    RequestFactory,
    build_report,
    contention_request_factory,
    fairness_summary,
    jain_index,
    merge_reports,
    percentile,
    summarize,
    synthesize_contention_market,
    synthesize_market,
    synthetic_request_factory,
)
from .retry import NO_RETRY, RetryError, RetryPolicy
from .server import (
    COALITION_OUTCOMES,
    CoalitionQuery,
    LATENCY_BUCKETS,
    Overloaded,
    RuntimeConfig,
    RuntimeServer,
    SESSION_OUTCOMES,
    SessionResult,
    SessionStatus,
    TransientFault,
    derive_session_seed,
)

__all__ = [
    "BatchScheduler",
    "BatchConfig",
    "RoundScheduler",
    "BatchingError",
    "BATCH_SIZE_BUCKETS",
    "COALESCE_OUTCOMES",
    "RuntimeServer",
    "RuntimeConfig",
    "SessionResult",
    "SessionStatus",
    "Overloaded",
    "TransientFault",
    "CoalitionQuery",
    "COALITION_OUTCOMES",
    "SESSION_OUTCOMES",
    "LATENCY_BUCKETS",
    "derive_session_seed",
    "RetryPolicy",
    "RetryError",
    "NO_RETRY",
    "build_report",
    "merge_reports",
    "jain_index",
    "fairness_summary",
    "synthesize_contention_market",
    "contention_request_factory",
    "LoadGenerator",
    "LoadProfile",
    "LoadReport",
    "LoadGenError",
    "RequestFactory",
    "percentile",
    "summarize",
    "synthesize_market",
    "synthetic_request_factory",
]
