"""Retry policy: exponential backoff with seeded, *threaded* jitter.

A failed negotiation attempt (an injected provider fault, a transient
broker error) is re-driven up to ``max_attempts`` times, waiting
``base_backoff_s · multiplier^(attempt−1)`` between attempts, capped at
``max_backoff_s`` and spread by ± ``jitter`` (a fraction of the raw
delay) so retrying sessions don't stampede in lockstep.

The jitter draw comes from the :class:`random.Random` the *caller*
passes in — never from module-level randomness — so a runtime that
derives one RNG per session from its master seed reproduces every
backoff of a concurrent run bit-for-bit, regardless of how the event
loop interleaved the sessions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


class RetryError(Exception):
    """Raised on malformed retry policies."""


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) a failed session attempt is re-driven.

    ``max_attempts`` counts every attempt including the first, so
    ``max_attempts=1`` disables retries and ``max_attempts=4`` allows
    three retries.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RetryError("max_attempts must be at least 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise RetryError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise RetryError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise RetryError("jitter must be a fraction in [0, 1]")

    @property
    def max_retries(self) -> int:
        return self.max_attempts - 1

    def raw_backoff(self, attempt: int) -> float:
        """The un-jittered delay after failed attempt number ``attempt``
        (1-based), i.e. before attempt ``attempt + 1`` starts."""
        if attempt < 1:
            raise RetryError("attempt numbers are 1-based")
        return min(
            self.max_backoff_s,
            self.base_backoff_s * self.multiplier ** (attempt - 1),
        )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay after failed attempt ``attempt``.

        Uniform in ``raw ± jitter·raw`` — the seeded ``rng`` is required
        so the caller controls reproducibility.
        """
        raw = self.raw_backoff(attempt)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        spread = raw * self.jitter
        return max(0.0, raw + rng.uniform(-spread, spread))

    def schedule(self, rng: random.Random) -> List[float]:
        """Every backoff delay a fully retried session would sleep."""
        return [
            self.backoff(attempt, rng)
            for attempt in range(1, self.max_attempts)
        ]


#: Retries disabled: one attempt, no waiting.
NO_RETRY = RetryPolicy(max_attempts=1)
