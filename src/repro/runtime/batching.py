"""Request coalescing: one stacked solve for B topology-sharing sessions.

The serving hot path solves one SCSP per candidate per session, and in a
homogeneous market hundreds of concurrent sessions present the *same*
constraint topology with different QoS tables.  The
:class:`BatchScheduler` sits between the broker and the solver: worker
threads (the runtime offloads ``Broker.negotiate`` to a thread pool, so
concurrent sessions really are concurrent callers) enqueue their solves
into per-topology groups keyed by
:func:`~repro.solver.cache.topology_fingerprint`, and each group is
dispatched as **one** stacked sweep over a leading batch axis
(:func:`~repro.solver.elimination.solve_elimination_batch`).

Coalescing is leader/follower, with no dedicated dispatcher thread: the
first arrival for a topology becomes the group's *leader*, waits up to
``window_ms`` for followers (or until ``max_batch`` fills the group),
then closes the group and runs the batched solve on its own worker
thread — "dispatched from the worker pool" literally.  Followers block
on a per-entry event and receive their result (or the batch's
exception) when the leader finishes; results are fanned back in
submission order, and because every batched operation is the
per-instance operation broadcast across the batch axis, each session's
agreement is bit-identical to an unbatched run at any batch size.

Lowerable problems are routed through bucket elimination (the batchable
method) whether or not they end up sharing a batch, so a scheduler's
answers are self-consistent across window/batch-size settings; problems
whose semiring has no ufunc lowering bypass coalescing entirely and take
the ordinary ``method="auto"`` path.  Per-session solve caches are
checked *before* joining a group (a warm repeat never pays the window)
and written back per member after the sweep.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..solver import (
    SCSP,
    KernelError,
    SolveCache,
    SolverResult,
    problem_fingerprint,
    resolve_lowering,
    solve,
    solve_elimination_batch,
    topology_fingerprint,
)
from ..telemetry import get_registry

#: Histogram buckets for sessions-per-stacked-solve.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: The full coalesce-outcome label family, preseeded so snapshots always
#: show every class: ``lead`` started a group, ``join`` rode an existing
#: one, ``solo`` solved alone (``max_batch=1``), ``bypass`` skipped
#: coalescing (non-lowerable semiring), ``cache-hit`` never reached a
#: group.
COALESCE_OUTCOMES = ("lead", "join", "solo", "bypass", "cache-hit")


class BatchingError(Exception):
    """Raised on malformed batching configuration."""


@dataclass(frozen=True)
class BatchConfig:
    """Knobs of the coalescing window (``--batch-window-ms``/
    ``--batch-max``)."""

    #: How long a group leader waits for followers, in milliseconds.
    #: ``0`` dispatches immediately (degenerate batches of ~1).
    window_ms: float = 2.0
    #: Hard cap on sessions per stacked solve; a full group dispatches
    #: without waiting out the window.
    max_batch: int = 32

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise BatchingError("window_ms must be >= 0")
        if self.max_batch < 1:
            raise BatchingError("max_batch must be at least 1")


class _Entry:
    """One session's queued solve."""

    __slots__ = ("problem", "key", "cache", "done", "result", "error")

    def __init__(
        self,
        problem: SCSP,
        key: Optional[str],
        cache: Optional[SolveCache],
    ) -> None:
        self.problem = problem
        self.key = key
        self.cache = cache
        self.done = threading.Event()
        self.result: Optional[SolverResult] = None
        self.error: Optional[BaseException] = None


class _Group:
    """One open coalescing window for one topology fingerprint."""

    __slots__ = ("entries", "full")

    def __init__(self) -> None:
        self.entries: List[_Entry] = []
        self.full = threading.Event()


class BatchScheduler:
    """Coalesces concurrent solves by topology into stacked sweeps.

    Thread-safe and passive: it owns no threads, so there is nothing to
    start or stop — group leaders do the dispatching from whatever
    worker pool calls :meth:`solve`.  One scheduler serves one broker
    (the fleet builds one per shard); sharing one across brokers is safe
    because each queued entry carries its own solve cache.
    """

    def __init__(self, config: Optional[BatchConfig] = None) -> None:
        self.config = config or BatchConfig()
        self._lock = threading.Lock()
        self._groups: Dict[str, _Group] = {}
        #: Plain counters mirrored into telemetry (readable when the
        #: registry is disabled — benchmarks assert on these).
        self.batches_dispatched = 0
        self.sessions_batched = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    # The broker-facing entry point
    # ------------------------------------------------------------------

    def solve(
        self,
        problem: SCSP,
        backend: str = "auto",
        cache: Optional[SolveCache] = None,
    ) -> SolverResult:
        """Solve ``problem``, coalescing with concurrent same-topology
        callers when possible."""
        try:
            lowering = resolve_lowering(problem.semiring, backend)
        except KernelError:
            lowering = None
        if lowering is None:
            # No ufunc lowering — nothing to stack; take the default
            # (method="auto") path unchanged.
            self._count("bypass")
            return solve(problem, backend=backend, cache=cache)

        key: Optional[str] = None
        if cache is not None:
            # Same key solve() would compute for an unbatched
            # elimination call, so batched and singleton solves share
            # warm entries.
            key = problem_fingerprint(problem, "elimination", backend, {})
            hit = cache.fetch(key, problem)
            if hit is not None:
                self._count("cache-hit")
                return hit

        if self.config.max_batch == 1:
            self._count("solo")
            return solve(
                problem, method="elimination", backend=backend, cache=cache
            )

        fingerprint = topology_fingerprint(problem, backend=backend)
        entry = _Entry(problem, key, cache)
        with self._lock:
            group = self._groups.get(fingerprint)
            leader = group is None
            if leader:
                group = _Group()
                self._groups[fingerprint] = group
            group.entries.append(entry)
            if len(group.entries) >= self.config.max_batch:
                if self._groups.get(fingerprint) is group:
                    del self._groups[fingerprint]
                group.full.set()

        if not leader:
            self._count("join")
            entry.done.wait()
            if entry.error is not None:
                raise entry.error
            assert entry.result is not None
            return entry.result

        self._count("lead")
        try:
            group.full.wait(self.config.window_ms / 1000.0)
            with self._lock:
                if self._groups.get(fingerprint) is group:
                    del self._groups[fingerprint]
                entries = list(group.entries)
            self._execute(entries, backend)
        except BaseException as exc:
            for queued in group.entries:
                if not queued.done.is_set():
                    queued.error = exc
                    queued.done.set()
            raise
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _execute(self, entries: List[_Entry], backend: str) -> None:
        """One stacked solve for a closed group, fanned back in
        submission order."""
        problems = [queued.problem for queued in entries]
        try:
            results = solve_elimination_batch(problems, backend=backend)
        except BaseException as exc:
            for queued in entries:
                queued.error = exc
                queued.done.set()
            return
        self.batches_dispatched += 1
        self.sessions_batched += len(entries)
        self.largest_batch = max(self.largest_batch, len(entries))
        self._observe(len(entries))
        for queued, result in zip(entries, results):
            if queued.cache is not None and queued.key is not None:
                queued.cache.store(queued.key, result)
            queued.result = result
            queued.done.set()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _count(self, outcome: str) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "runtime_batch_coalesce_total",
            "Batch-scheduler routing decisions, by outcome.",
            labelnames=("outcome",),
        ).preseed(COALESCE_OUTCOMES).labels(outcome).inc()

    def _observe(self, size: int) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "runtime_batches_total", "Stacked batch solves dispatched."
        ).inc()
        registry.histogram(
            "runtime_batch_size",
            "Sessions coalesced per stacked solve.",
            buckets=BATCH_SIZE_BUCKETS,
        ).observe(float(size))

    def stats(self) -> Dict[str, Any]:
        """Dispatch counters (batches, sessions, largest batch, open
        groups) — one row for ``FleetFrontend.cache_stats``-style
        introspection."""
        with self._lock:
            open_groups = len(self._groups)
        return {
            "batches_dispatched": self.batches_dispatched,
            "sessions_batched": self.sessions_batched,
            "largest_batch": self.largest_batch,
            "open_groups": open_groups,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchScheduler(window_ms={self.config.window_ms}, "
            f"max_batch={self.config.max_batch}, "
            f"{self.batches_dispatched} batch(es))"
        )


class _RoundEntry:
    """One session queued into an allocation round."""

    __slots__ = ("request", "verify", "done", "result", "error")

    def __init__(self, request: Any, verify: bool) -> None:
        self.request = request
        self.verify = verify
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class RoundScheduler:
    """Coalesces concurrent negotiations into allocation rounds.

    Same leader/follower machinery as :class:`BatchScheduler`, one
    level up the stack: where the batcher coalesces *solves* by
    constraint topology, this coalesces *sessions* by market — the
    group key is ``(operation, attribute, verify)``, so every client
    competing for the same kind of service within one window lands in
    one round and the broker's allocation policy assigns their
    providers jointly (``Broker.negotiate_round``).  Passive and
    thread-safe: the first arrival leads, waits out ``window_ms`` (or
    until ``max_batch`` sessions fill the round), then runs the round
    on its own worker thread and fans results back in submission order.

    With a greedy policy a round of any size reproduces the unbatched
    per-session agreements exactly; the round is where the *fair*
    policy gets to see contention at all.
    """

    def __init__(self, config: Optional[BatchConfig] = None) -> None:
        self.config = config or BatchConfig()
        self._lock = threading.Lock()
        self._groups: Dict[Any, _Group] = {}
        self._round_seq = 0
        #: Plain counters mirrored into telemetry.
        self.rounds_dispatched = 0
        self.sessions_rounded = 0
        self.largest_round = 0

    def negotiate(
        self, broker: Any, request: Any, verify: bool = False
    ) -> Any:
        """Serve one session, coalescing with concurrent same-market
        callers into a single allocation round."""
        if self.config.max_batch == 1:
            return self._dispatch(broker, [_RoundEntry(request, verify)])

        fingerprint = (request.operation, request.attribute, bool(verify))
        entry = _RoundEntry(request, verify)
        with self._lock:
            group = self._groups.get(fingerprint)
            leader = group is None
            if leader:
                group = _Group()
                self._groups[fingerprint] = group
            group.entries.append(entry)  # type: ignore[arg-type]
            if len(group.entries) >= self.config.max_batch:
                if self._groups.get(fingerprint) is group:
                    del self._groups[fingerprint]
                group.full.set()

        if not leader:
            entry.done.wait()
            if entry.error is not None:
                raise entry.error
            return entry.result

        group.full.wait(self.config.window_ms / 1000.0)
        with self._lock:
            if self._groups.get(fingerprint) is group:
                del self._groups[fingerprint]
            entries = list(group.entries)
        return self._dispatch(broker, entries, lead=entry)

    def _dispatch(
        self,
        broker: Any,
        entries: List[Any],
        lead: Optional[_RoundEntry] = None,
    ) -> Any:
        """Run one closed round and fan results back in submission
        order; ``lead`` (when set) is the caller's own entry."""
        lead = lead if lead is not None else entries[0]
        with self._lock:
            self._round_seq += 1
            round_id = self._round_seq
        try:
            results = broker.negotiate_round(
                [queued.request for queued in entries],
                verify_scheduler_independence=entries[0].verify,
                round_id=round_id,
            )
        except BaseException as exc:
            for queued in entries:
                if not queued.done.is_set():
                    queued.error = exc
                    queued.done.set()
            raise
        self.rounds_dispatched += 1
        self.sessions_rounded += len(entries)
        self.largest_round = max(self.largest_round, len(entries))
        for queued, result in zip(entries, results):
            queued.result = result
            queued.done.set()
        for queued in entries:
            # A policy returning too few results must not strand
            # followers on their event.
            if not queued.done.is_set():
                queued.error = BatchingError(
                    "allocation policy returned fewer results than "
                    "sessions in the round"
                )
                queued.done.set()
        if lead.error is not None:
            raise lead.error
        return lead.result

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            open_groups = len(self._groups)
        return {
            "rounds_dispatched": self.rounds_dispatched,
            "sessions_rounded": self.sessions_rounded,
            "largest_round": self.largest_round,
            "open_groups": open_groups,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoundScheduler(window_ms={self.config.window_ms}, "
            f"max_batch={self.config.max_batch}, "
            f"{self.rounds_dispatched} round(s))"
        )
