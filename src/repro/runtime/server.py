"""The concurrent broker runtime: admission, deadlines, retries.

The paper's broker (Sec. 4, Fig. 6) is a concurrent mediator — nmsccp
agents negotiate in parallel (``‖``) on a shared store — but
:class:`~repro.soa.broker.Broker` drives one request at a time.  This
module adds the serving layer around it:

* :class:`RuntimeServer` accepts many concurrent
  :class:`~repro.soa.broker.ClientRequest` sessions through a *bounded*
  admission queue.  When the queue is full, a session is rejected
  immediately with a typed :class:`Overloaded` result — explicit
  backpressure instead of unbounded buffering.
* A pool of async workers drains the queue; the CPU-bound SCSP solves
  inside ``Broker.negotiate`` are offloaded to a thread-pool executor
  via ``run_in_executor`` so the event loop never blocks on a solve.
* Each session carries a deadline; sessions that exceed it are
  cancelled and reported as ``DEADLINE_EXCEEDED``.
* Failed attempts (injected provider faults) are re-driven under a
  :class:`~repro.runtime.retry.RetryPolicy` with exponential backoff and
  seeded jitter; when retries are exhausted, the server degrades
  gracefully to the client's last-known SLA from the broker's
  :class:`~repro.soa.sla.SLARepository` (``DEGRADED``) before giving up
  (``FAILED``).

Reproducibility: the server owns one master :class:`random.Random`
(``config.seed``) and derives an independent child RNG per session *in
admission order* — backoff jitter and fault decisions draw from the
session's own stream, so a single seed reproduces a whole concurrent
run regardless of how workers interleave.  Callers that split one
logical workload across *several* servers (the sharded fleet of
:mod:`repro.fleet`) instead pass an explicit ``session_key`` to
:meth:`RuntimeServer.submit`: the session RNG is then derived from
``(master seed, session key)`` by :func:`derive_session_seed`, so a
session's random stream — and with it every fault and backoff draw — is
identical no matter which shard (or how many shards) served it.

Fault injection: when a :class:`~repro.soa.faults.FaultInjector` is
attached, it is consulted once per attempt for the *chosen* provider,
with ``tick = session index`` — so ``BurstOutage(start, length)`` models
an incident window over admission order and Bernoulli models redraw per
attempt (which is what makes retries worth taking).
"""

from __future__ import annotations

import asyncio
import contextvars
import hashlib
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, List, Optional

from ..coalitions.engine import solve_engine
from ..coalitions.exact import CoalitionSolution
from ..coalitions.trust import CompositionOp, TrustNetwork
from ..resilience.hedge import hedge_attempt_key
from ..resilience.policy import (
    ResilienceConfig,
    ResiliencePolicy,
    build_resilience,
)
from ..soa.broker import Broker, BrokerError, ClientRequest, NegotiationResult
from ..soa.faults import FaultInjector
from ..soa.sla import SLA
from ..telemetry import get_events, get_registry, get_tracer
from .retry import RetryPolicy

#: Buckets tuned for serving latencies: sub-ms queue waits up to
#: multi-second retried sessions.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class RuntimeError_(Exception):
    """Raised on runtime misuse (submit before start, bad config)."""


def derive_session_seed(
    master_seed: Optional[int], session_key: str
) -> int:
    """A stable 64-bit seed for one keyed session.

    Hash-derived (not drawn from the master stream), so it depends only
    on the pair ``(master seed, session key)`` — never on admission
    order or on which server of a fleet the session landed on.
    """
    digest = hashlib.sha256(
        f"{master_seed}:{session_key}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class TransientFault(Exception):
    """An attempt failed for a reason worth retrying (injected fault)."""


class SessionStatus(Enum):
    """How one client session ended."""

    COMPLETED = "completed"  # negotiation succeeded, SLA signed
    DEGRADED = "degraded"  # retries exhausted, last-known SLA served
    REJECTED = "rejected"  # negotiation failed for a permanent reason
    FAILED = "failed"  # retries exhausted, nothing to degrade to
    OVERLOADED = "overloaded"  # bounced at admission, queue full
    DEADLINE_EXCEEDED = "deadline-exceeded"
    BULKHEAD_REJECTED = "bulkhead-rejected"  # class compartment full


#: Preseeded so a metrics snapshot always shows the complete family.
SESSION_OUTCOMES = tuple(status.value for status in SessionStatus)


@dataclass
class SessionResult:
    """The runtime's answer for one submitted request."""

    request: ClientRequest
    status: SessionStatus
    negotiation: Optional[NegotiationResult] = None
    sla: Optional[SLA] = None
    attempts: int = 0
    retries: int = 0
    queue_wait_s: float = 0.0
    latency_s: float = 0.0
    detail: str = ""
    #: Admission-order session number (−1 for bounced admissions).
    index: int = -1
    #: The caller-supplied session key for keyed (fleet) sessions.
    session_key: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the client walked away with a usable SLA."""
        return self.status in (
            SessionStatus.COMPLETED,
            SessionStatus.DEGRADED,
        )

    @property
    def degraded(self) -> bool:
        return self.status is SessionStatus.DEGRADED


@dataclass
class Overloaded(SessionResult):
    """Typed admission rejection: the queue was full on arrival."""

    def __post_init__(self) -> None:
        self.status = SessionStatus.OVERLOADED


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the serving layer."""

    workers: int = 4
    max_queue_depth: int = 256
    deadline_s: Optional[float] = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: Optional[int] = None
    verify_independence: bool = False
    #: Event-loop responsiveness probe period; 0 disables the probe.
    probe_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise RuntimeError_("workers must be at least 1")
        if self.max_queue_depth < 1:
            raise RuntimeError_("max_queue_depth must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise RuntimeError_("deadline_s must be positive (or None)")


@dataclass(frozen=True)
class CoalitionQuery:
    """One offloadable Sec. 6 coalition-formation request.

    The runtime treats these like negotiation sessions: the CPU-bound
    search runs on the worker executor, never on the event loop, and a
    seedless query draws its seed from the server's master RNG — so a
    single ``RuntimeConfig.seed`` reproduces a whole mixed workload of
    negotiations and coalition queries.
    """

    network: TrustNetwork
    op: "str | CompositionOp" = "min"
    aggregate: "str | CompositionOp" = "min"
    seed: Optional[int] = None
    restarts: int = 3
    max_iterations: int = 200
    neighbour_sample: int = 64


#: Preseeded so a metrics snapshot always shows the complete family.
COALITION_OUTCOMES = ("stable", "unstable")


@dataclass
class _Session:
    """One admitted request waiting in (or moving through) the queue."""

    index: int
    request: ClientRequest
    future: "asyncio.Future[SessionResult]"
    rng: random.Random
    submitted_at: float
    deadline_s: Optional[float]
    #: Fleet routing/reproducibility key (None for plain sessions).
    key: Optional[str] = None
    #: Fault-injection tick override; defaults to the admission index.
    #: The fleet passes its global ingress sequence number, so outage
    #: windows span fleet-wide admission order, not per-shard order.
    tick: Optional[int] = None


class RuntimeServer:
    """Serves concurrent negotiation sessions over one broker."""

    def __init__(
        self,
        broker: Broker,
        config: Optional[RuntimeConfig] = None,
        injector: Optional[FaultInjector] = None,
        resilience: "Optional[ResilienceConfig | ResiliencePolicy]" = None,
    ) -> None:
        self.broker = broker
        self.config = config or RuntimeConfig()
        self.injector = injector
        self.results: List[SessionResult] = []
        self._rng = random.Random(self.config.seed)
        self._queue: Optional["asyncio.Queue[_Session]"] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._workers: List["asyncio.Task[None]"] = []
        self._probe: Optional["asyncio.Task[None]"] = None
        self._health_task: Optional["asyncio.Task[None]"] = None
        self._sessions_submitted = 0
        # The resilience layer: a prebuilt policy (the fleet shares
        # breakers/health/DLQ across shards) or a config to build from.
        if isinstance(resilience, ResiliencePolicy):
            self.resilience = resilience
            self.resilience.attach(broker.registry)
        else:
            self.resilience = build_resilience(
                resilience,
                broker.registry,
                injector=injector,
                seed=self.config.seed,
                tick_source=lambda: self._sessions_submitted,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._workers)

    async def start(self) -> None:
        if self.started:
            return
        self._queue = asyncio.Queue(maxsize=self.config.max_queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-runtime",
        )
        self._workers = [
            asyncio.create_task(self._worker(), name=f"runtime-worker-{i}")
            for i in range(self.config.workers)
        ]
        if self.config.probe_interval_s > 0:
            self._probe = asyncio.create_task(
                self._probe_loop(), name="runtime-loop-probe"
            )
        if (
            self.resilience.health is not None
            and self.resilience.owns_health_loop
        ):
            self._health_task = asyncio.create_task(
                self.resilience.health.run(), name="runtime-health"
            )

    async def stop(self, drain: bool = False) -> None:
        """Cancel workers and release the executor.

        By default pending sessions in the queue are abandoned
        (``serve`` awaits every submitted future before stopping);
        ``drain=True`` first waits for the admission queue to empty and
        every picked-up session to finish — the graceful shutdown the
        fleet uses when decommissioning a shard.
        """
        if drain and self._queue is not None:
            await self._queue.join()
        for task in self._workers:
            task.cancel()
        for aux in (self._probe, self._health_task):
            if aux is not None:
                aux.cancel()
        pending = [
            *self._workers,
            *(task for task in (self._probe, self._health_task) if task),
        ]
        for task in pending:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._probe = None
        self._health_task = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._queue = None

    async def __aenter__(self) -> "RuntimeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(
        self,
        request: ClientRequest,
        deadline_s: Optional[float] = None,
        session_key: Optional[str] = None,
        tick: Optional[int] = None,
    ) -> "asyncio.Future[SessionResult]":
        """Admit one request; resolves to its :class:`SessionResult`.

        Admission control happens *here*, synchronously: a full queue
        resolves the future immediately with a typed
        :class:`Overloaded` result instead of buffering without bound.
        ``deadline_s`` overrides the configured per-session deadline.

        ``session_key`` switches the session to *keyed* reproducibility:
        its RNG derives from ``(config.seed, session_key)`` instead of
        the master stream in admission order, so a fleet run is
        shard-count-independent.  ``tick`` overrides the fault-injection
        tick (default: the per-server admission index).
        """
        if not self.started or self._queue is None:
            raise RuntimeError_("submit() before start()")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SessionResult]" = loop.create_future()
        index = self._sessions_submitted
        self._sessions_submitted += 1
        bulkhead = self.resilience.bulkhead
        if bulkhead is not None and not bulkhead.try_acquire(
            request.operation
        ):
            result = SessionResult(
                request=request,
                status=SessionStatus.BULKHEAD_REJECTED,
                detail=(
                    f"bulkhead compartment for {request.operation!r} full"
                ),
                index=index,
                session_key=session_key,
            )
            self._finish(result)
            future.set_result(result)
            return future
        if session_key is not None:
            # Keyed stream: identical whichever server gets the session.
            rng = random.Random(
                derive_session_seed(self.config.seed, session_key)
            )
        else:
            # One child stream per session, derived in admission order:
            # reproducible under any worker interleaving.
            rng = random.Random(self._rng.getrandbits(64))
        session = _Session(
            index=index,
            request=request,
            future=future,
            rng=rng,
            submitted_at=time.perf_counter(),
            deadline_s=(
                deadline_s if deadline_s is not None
                else self.config.deadline_s
            ),
            key=session_key,
            tick=tick,
        )
        try:
            self._queue.put_nowait(session)
        except asyncio.QueueFull:
            if bulkhead is not None:
                bulkhead.release(request.operation)
            result = Overloaded(
                request=request,
                status=SessionStatus.OVERLOADED,
                detail=(
                    f"admission queue full "
                    f"({self.config.max_queue_depth} waiting)"
                ),
                index=index,
                session_key=session_key,
            )
            self._finish(result)
            future.set_result(result)
            return future
        get_registry().gauge(
            "runtime_queue_depth",
            "Admitted sessions waiting for a worker.",
        ).set(self._queue.qsize())
        return future

    async def serve(
        self, requests: Iterable[ClientRequest]
    ) -> List[SessionResult]:
        """Submit every request and await all results (starting and
        stopping the server when not already running)."""
        owns_lifecycle = not self.started
        if owns_lifecycle:
            await self.start()
        try:
            futures = [self.submit(request) for request in requests]
            return list(await asyncio.gather(*futures))
        finally:
            if owns_lifecycle:
                await self.stop()

    def run(self, requests: Iterable[ClientRequest]) -> List[SessionResult]:
        """Synchronous convenience wrapper around :meth:`serve`."""
        return asyncio.run(self.serve(requests))

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        registry = get_registry()
        inflight = registry.gauge(
            "runtime_inflight_sessions",
            "Sessions currently being driven by a worker.",
        )
        queue_depth = registry.gauge(
            "runtime_queue_depth",
            "Admitted sessions waiting for a worker.",
        )
        while True:
            session = await self._queue.get()
            queue_depth.set(self._queue.qsize())
            inflight.inc()
            try:
                result = await self._run_session(session)
            except Exception as exc:  # defensive: never kill the worker
                result = SessionResult(
                    request=session.request,
                    status=SessionStatus.FAILED,
                    detail=f"internal error: {exc}",
                )
                result.latency_s = time.perf_counter() - session.submitted_at
            finally:
                inflight.dec()
                self._queue.task_done()
                if self.resilience.bulkhead is not None:
                    self.resilience.bulkhead.release(
                        session.request.operation
                    )
            result.index = session.index
            result.session_key = session.key
            self._finish(result, tick=session.tick)
            if not session.future.done():
                session.future.set_result(result)

    async def _run_session(self, session: _Session) -> SessionResult:
        registry = get_registry()
        queue_wait = time.perf_counter() - session.submitted_at
        registry.histogram(
            "runtime_queue_wait_seconds",
            "Time between admission and a worker picking the session up.",
            buckets=LATENCY_BUCKETS,
        ).observe(queue_wait)

        request = session.request
        with get_tracer().span(
            "runtime.session",
            index=session.index,
            client=request.client,
            operation=request.operation,
            attribute=request.attribute,
        ) as span:
            span.set_attribute("queue_wait_s", queue_wait)
            budget: Optional[float] = None
            if session.deadline_s is not None:
                budget = session.deadline_s - queue_wait
            if budget is not None and budget <= 0:
                result = SessionResult(
                    request=request,
                    status=SessionStatus.DEADLINE_EXCEEDED,
                    queue_wait_s=queue_wait,
                    detail="deadline expired while queued",
                )
            else:
                try:
                    result = await asyncio.wait_for(
                        self._attempts_maybe_hedged(session), timeout=budget
                    )
                except asyncio.TimeoutError:
                    result = SessionResult(
                        request=request,
                        status=SessionStatus.DEADLINE_EXCEEDED,
                        queue_wait_s=queue_wait,
                        detail=(
                            f"deadline of {session.deadline_s:.3f}s "
                            "exceeded mid-session"
                        ),
                    )
            result.queue_wait_s = queue_wait
            result.latency_s = time.perf_counter() - session.submitted_at
            if self.resilience.hedge is not None:
                self.resilience.hedge.observe_latency(result.latency_s)
            span.set_attribute("outcome", result.status.value)
            span.set_attribute("attempts", result.attempts)
        registry.histogram(
            "runtime_session_seconds",
            "End-to-end session latency (submission to result).",
            buckets=LATENCY_BUCKETS,
        ).observe(result.latency_s)
        return result

    async def _attempts_maybe_hedged(self, session: _Session) -> SessionResult:
        """Dispatch to the hedged race when the policy applies."""
        hedge = self.resilience.hedge
        if hedge is None or not hedge.applies(session.deadline_s):
            return await self._attempts(session)
        return await self._hedged(session)

    def _shadow_session(self, session: _Session, attempt: int) -> _Session:
        """A copy of ``session`` with a keyed, independent RNG stream.

        The shadow must never draw from the primary's stream (fault and
        backoff decisions would then depend on scheduling), so its seed
        derives from ``(master seed, session key, attempt)``.  Unkeyed
        sessions fall back to their admission index, which is just as
        stable for a single server.
        """
        base = session.key if session.key is not None else f"#{session.index}"
        return _Session(
            index=session.index,
            request=session.request,
            future=session.future,
            rng=random.Random(
                derive_session_seed(
                    self.config.seed, hedge_attempt_key(base, attempt)
                )
            ),
            submitted_at=session.submitted_at,
            deadline_s=session.deadline_s,
            key=session.key,
            tick=session.tick,
        )

    async def _hedged(self, session: _Session) -> SessionResult:
        """Race the primary attempt chain against late shadow attempts.

        The primary runs alone until the hedge policy's launch delay (a
        latency percentile once warmed up) elapses; finishing inside it
        is the common case and is bit-identical to hedging disabled.
        Past the delay, shadows launch and the first *usable* result
        (``result.ok``) wins; with no usable result the primary's answer
        stands, so failure reporting is unchanged too.
        """
        hedge = self.resilience.hedge
        assert hedge is not None
        primary = asyncio.ensure_future(self._attempts(session))
        tasks: List["asyncio.Task[SessionResult]"] = [primary]
        try:
            done, _ = await asyncio.wait(
                {primary}, timeout=hedge.launch_delay()
            )
            if primary in done:
                return primary.result()
            for attempt in range(1, hedge.config.max_hedges + 1):
                hedge.record_launched()
                tasks.append(
                    asyncio.ensure_future(
                        self._attempts(self._shadow_session(session, attempt))
                    )
                )
            get_events().emit(
                "runtime.hedge",
                client=session.request.client,
                operation=session.request.operation,
                session=session.index,
                shadows=hedge.config.max_hedges,
            )
            pending = set(tasks)
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                # Deterministic preference order: primary, then shadows
                # by launch order — not set-iteration order.
                for task in tasks:
                    if task not in done:
                        continue
                    if task.exception() is not None:
                        continue
                    result = task.result()
                    if result.ok:
                        if task is not primary:
                            hedge.record_won()
                        return result
            # Nothing usable anywhere: the primary's verdict stands.
            if primary.exception() is not None:
                raise primary.exception()
            return primary.result()
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            for task in tasks:
                if not task.done():
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass

    async def _attempts(self, session: _Session) -> SessionResult:
        """Drive the five-step lifecycle with retries and degradation."""
        request = session.request
        registry = get_registry()
        events = get_events()
        policy = self.config.retry
        last_error = ""
        attempt = 0
        while attempt < policy.max_attempts:
            attempt += 1
            try:
                negotiation = await self._negotiate_offloaded(request)
            except BrokerError as exc:
                return SessionResult(
                    request=request,
                    status=SessionStatus.REJECTED,
                    attempts=attempt,
                    retries=attempt - 1,
                    detail=f"broker error: {exc}",
                )
            if not negotiation.success:
                # A failed negotiation is a property of the market, not
                # of a flaky provider: retrying cannot change it.
                return SessionResult(
                    request=request,
                    status=SessionStatus.REJECTED,
                    negotiation=negotiation,
                    attempts=attempt,
                    retries=attempt - 1,
                    detail=negotiation.detail,
                )
            try:
                await self._apply_faults(session, negotiation)
            except TransientFault as exc:
                last_error = str(exc)
                if attempt >= policy.max_attempts:
                    break
                backoff = policy.backoff(attempt, session.rng)
                registry.counter(
                    "runtime_retries_total",
                    "Session attempts re-driven after transient faults.",
                ).inc()
                registry.histogram(
                    "runtime_backoff_seconds",
                    "Backoff slept between attempts.",
                    buckets=LATENCY_BUCKETS,
                ).observe(backoff)
                events.emit(
                    "runtime.retry",
                    client=request.client,
                    operation=request.operation,
                    session=session.index,
                    attempt=attempt,
                    backoff_s=backoff,
                    reason=last_error,
                )
                await asyncio.sleep(backoff)
                continue
            return SessionResult(
                request=request,
                status=SessionStatus.COMPLETED,
                negotiation=negotiation,
                sla=negotiation.sla,
                attempts=attempt,
                retries=attempt - 1,
                detail=negotiation.detail,
            )
        return self._degrade(session, attempt, last_error)

    async def _negotiate_offloaded(
        self, request: ClientRequest
    ) -> NegotiationResult:
        """One broker lifecycle on the executor, never on the loop.

        The context is copied so broker spans opened in the worker
        thread nest under this session's ``runtime.session`` span.
        Routed through ``Broker.serve_session``: without an allocation
        policy that *is* ``negotiate``; with one, concurrent executor
        threads coalesce into allocation rounds (the policy's round
        window blocks the worker thread, not the event loop).
        """
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(
            self._executor,
            lambda: ctx.run(
                self.broker.serve_session,
                request,
                self.config.verify_independence,
            ),
        )

    # ------------------------------------------------------------------
    # Coalition queries
    # ------------------------------------------------------------------

    async def solve_coalitions(
        self, query: CoalitionQuery
    ) -> CoalitionSolution:
        """Serve one coalition query on the worker executor.

        The seed is drawn (for seedless queries) synchronously before
        the offload, so issuing queries in a fixed order reproduces
        their results regardless of how the executor interleaves them.
        The engine itself runs single-threaded here — the runtime's
        parallelism budget is the worker pool, and one portfolio per
        worker keeps mixed negotiation/coalition workloads fair.
        """
        if not self.started or self._executor is None:
            raise RuntimeError_("solve_coalitions() before start()")
        seed = (
            query.seed
            if query.seed is not None
            else self._rng.getrandbits(64)
        )
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()

        def run() -> CoalitionSolution:
            with get_tracer().span(
                "runtime.coalitions",
                agents=len(query.network),
                restarts=query.restarts,
            ):
                return solve_engine(
                    query.network,
                    op=query.op,
                    aggregate=query.aggregate,
                    seed=seed,
                    restarts=query.restarts,
                    max_iterations=query.max_iterations,
                    neighbour_sample=query.neighbour_sample,
                    workers=1,
                )

        solution = await loop.run_in_executor(
            self._executor, lambda: ctx.run(run)
        )
        get_registry().counter(
            "runtime_coalition_queries_total",
            "Coalition queries served by the runtime, by outcome.",
            labelnames=("outcome",),
        ).preseed(COALITION_OUTCOMES).labels(
            "stable" if solution.stable else "unstable"
        ).inc()
        return solution

    def run_coalitions(
        self, queries: Iterable[CoalitionQuery]
    ) -> List[CoalitionSolution]:
        """Synchronous convenience wrapper: serve a batch of coalition
        queries concurrently, starting and stopping the server when not
        already running."""

        async def drive() -> List[CoalitionSolution]:
            owns_lifecycle = not self.started
            if owns_lifecycle:
                await self.start()
            try:
                tasks = [
                    asyncio.ensure_future(self.solve_coalitions(query))
                    for query in queries
                ]
                return list(await asyncio.gather(*tasks))
            finally:
                if owns_lifecycle:
                    await self.stop()

        return asyncio.run(drive())

    async def _apply_faults(
        self, session: _Session, negotiation: NegotiationResult
    ) -> None:
        """Consult the injector for the chosen provider; a ``fail``
        fault sinks this attempt, a delay fault slows it down.

        Doubles as the circuit breakers' feedback path: the provider
        whose service faulted records a failure, and a clean pass
        records a success for every provider bound by the SLA.
        """
        breakers = self.resilience.breakers
        if self.injector is None or negotiation.sla is None:
            return
        sla = negotiation.sla
        provider_of = dict(zip(sla.service_ids, sla.providers))
        tick = session.tick if session.tick is not None else session.index
        for service_id in sla.service_ids:
            fault = self.injector.decide(
                service_id, tick=tick, rng=session.rng
            )
            if fault is None:
                continue
            if fault.extra_latency_ms:
                await asyncio.sleep(fault.extra_latency_ms / 1000.0)
            if fault.fail:
                if breakers is not None:
                    breakers.record_failure(
                        provider_of.get(service_id, service_id)
                    )
                raise TransientFault(
                    f"injected {fault.kind} on {service_id!r}"
                )
        if breakers is not None:
            for provider in sla.providers:
                breakers.record_success(provider)

    def _degrade(
        self, session: _Session, attempts: int, last_error: str
    ) -> SessionResult:
        """Retries exhausted: serve the last-known SLA when one exists."""
        request = session.request
        known = [
            sla
            for sla in self.broker.slas.for_client(request.client)
            if sla.attribute == request.attribute and sla.active
        ]
        if not known:
            return SessionResult(
                request=request,
                status=SessionStatus.FAILED,
                attempts=attempts,
                retries=attempts - 1,
                detail=f"retries exhausted ({last_error}); no known SLA",
            )
        sla = known[-1]
        get_registry().counter(
            "runtime_degraded_total",
            "Sessions degraded to the last-known SLA after retries.",
        ).inc()
        get_events().emit(
            "runtime.degraded",
            client=request.client,
            operation=request.operation,
            session=session.index,
            sla_id=sla.sla_id,
            reason=last_error,
        )
        return SessionResult(
            request=request,
            status=SessionStatus.DEGRADED,
            sla=sla,
            attempts=attempts,
            retries=attempts - 1,
            detail=(
                f"retries exhausted ({last_error}); "
                f"serving last-known SLA#{sla.sla_id}"
            ),
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _finish(
        self, result: SessionResult, tick: Optional[int] = None
    ) -> None:
        self.results.append(result)
        dlq = self.resilience.dlq
        if dlq is not None:
            dlq.capture(result, master_seed=self.config.seed, tick=tick)
        registry = get_registry()
        registry.counter(
            "runtime_sessions_total",
            "Runtime sessions served, by outcome.",
            labelnames=("outcome",),
        ).preseed(SESSION_OUTCOMES).labels(result.status.value).inc()
        if result.status is SessionStatus.OVERLOADED:
            registry.counter(
                "runtime_overloaded_total",
                "Sessions bounced at admission (queue full).",
            ).inc()
            get_events().emit(
                "runtime.overloaded",
                client=result.request.client,
                operation=result.request.operation,
            )
        elif result.status is SessionStatus.BULKHEAD_REJECTED:
            get_events().emit(
                "runtime.bulkhead-rejected",
                client=result.request.client,
                operation=result.request.operation,
            )

    async def _probe_loop(self) -> None:
        """Measure event-loop scheduling lag: if a solver ever ran on
        the loop, this histogram's tail would show it."""
        interval = self.config.probe_interval_s
        histogram = get_registry().histogram(
            "runtime_loop_lag_seconds",
            "Extra delay of a timed sleep on the event loop — "
            "spikes mean something blocked the loop.",
            buckets=LATENCY_BUCKETS,
        )
        while True:
            started = time.perf_counter()
            await asyncio.sleep(interval)
            histogram.observe(
                max(0.0, time.perf_counter() - started - interval)
            )
