"""Load generation against the runtime: synthetic client populations.

Synthesizes many concurrent clients driving one
:class:`~repro.runtime.server.RuntimeServer` and reports what the
serving layer actually delivered — throughput, latency percentiles,
queue waits, retries, degradations.  Two classic modes:

* **open loop** — arrivals follow a seeded Poisson process at ``rate``
  requests/second, independent of completions (models internet traffic;
  exposes queueing collapse under overload);
* **closed loop** — ``clients`` concurrent loops, each submitting its
  next request only after the previous one resolved, with an optional
  think time (models a fixed user population).

Arrival schedules, client naming and request synthesis all derive from
one seeded RNG, so a load run is reproducible end to end (the server
then derives per-session RNGs in admission order — see
:mod:`repro.runtime.server`).
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..constraints.polynomial import Polynomial, polynomial_constraint
from ..constraints.variables import integer_variable
from ..soa.broker import ClientRequest
from ..soa.qos import QoSDocument, QoSPolicy, resolve_attribute
from ..soa.registry import ServiceRegistry
from ..soa.service import ServiceDescription, ServiceInterface
from .server import RuntimeServer, SessionResult, SessionStatus

#: Signature of the per-arrival request factory.
RequestFactory = Callable[[str, int], ClientRequest]


class LoadGenError(Exception):
    """Raised on malformed load profiles."""


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0–100); 0.0 on empty input."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise LoadGenError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: List[float]) -> Dict[str, float]:
    """The latency digest every report row uses."""
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one synthetic client population."""

    clients: int = 10
    requests: Optional[int] = None  # total sessions; default = clients
    mode: str = "open"  # "open" | "closed"
    rate: float = 50.0  # open loop: mean arrivals per second
    think_time_s: float = 0.0  # closed loop: pause between a client's calls
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise LoadGenError("clients must be at least 1")
        if self.requests is not None and self.requests < 1:
            raise LoadGenError("requests must be at least 1")
        if self.mode not in ("open", "closed"):
            raise LoadGenError(f"unknown load mode {self.mode!r}")
        if self.rate <= 0:
            raise LoadGenError("rate must be positive")
        if self.think_time_s < 0:
            raise LoadGenError("think_time_s must be non-negative")

    @property
    def total_requests(self) -> int:
        return self.requests if self.requests is not None else self.clients


@dataclass
class LoadReport:
    """What the runtime delivered under one load profile."""

    offered: int
    duration_s: float
    throughput_rps: float
    outcomes: Dict[str, int]
    retries_total: int
    latency_s: Dict[str, float]
    queue_wait_s: Dict[str, float]
    results: List[SessionResult] = field(default_factory=list)
    #: Per-client allocation fairness (:func:`fairness_summary`);
    #: ``None`` when no session carried allocation-round metadata.
    fairness: Optional[Dict[str, float]] = None

    @property
    def completed(self) -> int:
        return self.outcomes.get(SessionStatus.COMPLETED.value, 0)

    @property
    def degraded(self) -> int:
        return self.outcomes.get(SessionStatus.DEGRADED.value, 0)

    @property
    def overloaded(self) -> int:
        return self.outcomes.get(SessionStatus.OVERLOADED.value, 0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able summary (individual sessions omitted)."""
        payload = {
            "offered": self.offered,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "outcomes": dict(self.outcomes),
            "retries_total": self.retries_total,
            "latency_s": dict(self.latency_s),
            "queue_wait_s": dict(self.queue_wait_s),
        }
        if self.fairness is not None:
            payload["fairness"] = dict(self.fairness)
        return payload


class LoadGenerator:
    """Drives one server with a synthetic population and measures it."""

    def __init__(
        self,
        server: RuntimeServer,
        profile: Optional[LoadProfile] = None,
        request_factory: Optional[RequestFactory] = None,
    ) -> None:
        self.server = server
        self.profile = profile or LoadProfile()
        self.request_factory = request_factory or synthetic_request_factory()
        self._rng = random.Random(self.profile.seed)

    async def run(self) -> LoadReport:
        """One full load run (starts/stops the server if needed)."""
        owns_lifecycle = not self.server.started
        if owns_lifecycle:
            await self.server.start()
        started = time.perf_counter()
        try:
            if self.profile.mode == "open":
                results = await self._open_loop()
            else:
                results = await self._closed_loop()
        finally:
            duration = time.perf_counter() - started
            if owns_lifecycle:
                await self.server.stop()
        return self._report(results, duration)

    def run_sync(self) -> LoadReport:
        return asyncio.run(self.run())

    # ------------------------------------------------------------------
    # Arrival processes
    # ------------------------------------------------------------------

    def _client_name(self, index: int) -> str:
        return f"c{index % self.profile.clients}"

    async def _open_loop(self) -> List[SessionResult]:
        futures = []
        for index in range(self.profile.total_requests):
            request = self.request_factory(self._client_name(index), index)
            futures.append(self.server.submit(request))
            delay = self._rng.expovariate(self.profile.rate)
            if delay > 0:
                await asyncio.sleep(delay)
        return list(await asyncio.gather(*futures))

    async def _closed_loop(self) -> List[SessionResult]:
        total = self.profile.total_requests
        # Spread the total across the population, first clients take the
        # remainder, so exactly ``total`` sessions are issued.
        base, extra = divmod(total, self.profile.clients)
        counts = [
            base + (1 if c < extra else 0)
            for c in range(self.profile.clients)
        ]
        next_index = iter(range(total))

        async def client_loop(client: str, count: int):
            out = []
            for _ in range(count):
                request = self.request_factory(client, next(next_index))
                out.append(await self.server.submit(request))
                if self.profile.think_time_s > 0:
                    await asyncio.sleep(self.profile.think_time_s)
            return out

        batches = await asyncio.gather(
            *(
                client_loop(f"c{c}", count)
                for c, count in enumerate(counts)
                if count > 0
            )
        )
        return [result for batch in batches for result in batch]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(
        self, results: List[SessionResult], duration: float
    ) -> LoadReport:
        return build_report(results, duration)


def build_report(
    results: List[SessionResult], duration: float
) -> LoadReport:
    """Digest raw session results into one :class:`LoadReport`.

    Module-level so callers that group results themselves (per-shard
    fleet reports) produce digests with exactly the generator's shape.
    """
    outcomes: Dict[str, int] = {}
    for result in results:
        key = result.status.value
        outcomes[key] = outcomes.get(key, 0) + 1
    served = [result for result in results if result.attempts > 0]
    finished = outcomes.get(SessionStatus.COMPLETED.value, 0) + outcomes.get(
        SessionStatus.DEGRADED.value, 0
    )
    return LoadReport(
        offered=len(results),
        duration_s=duration,
        throughput_rps=finished / duration if duration > 0 else 0.0,
        outcomes=outcomes,
        retries_total=sum(result.retries for result in results),
        latency_s=summarize([r.latency_s for r in served]),
        queue_wait_s=summarize([r.queue_wait_s for r in served]),
        results=results,
        fairness=fairness_summary(results) or None,
    )


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly
    even, ``1/n`` is one client taking everything; 0.0 on empty/zero
    input."""
    if not values:
        return 0.0
    square_sum = sum(x * x for x in values)
    if square_sum <= 0.0:
        return 0.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def fairness_summary(
    results: Sequence[SessionResult],
) -> Dict[str, float]:
    """Per-client fairness digest over allocation-round metadata.

    Each session served through an allocation policy carries an
    :class:`~repro.soa.allocation.AllocationInfo` with its *realized*
    satisfaction (agreed level mapped to ``[0, 1]``, discounted by the
    session's queue rank on its provider within the round).  Clients
    are scored by their mean realized satisfaction across sessions, and
    the digest reports Jain's index, the worst-off client and the mean
    over those per-client scores.  Empty (``{}``) when no session has
    round metadata — plain (policy-less) runs stay unchanged.
    """
    per_client: Dict[str, List[float]] = {}
    for result in results:
        negotiation = getattr(result, "negotiation", None)
        info = getattr(negotiation, "allocation", None)
        if info is None or not negotiation.success:
            continue
        per_client.setdefault(result.request.client, []).append(
            info.realized_satisfaction
        )
    if not per_client:
        return {}
    scores = sorted(
        sum(values) / len(values) for values in per_client.values()
    )
    return {
        "clients": float(len(scores)),
        "sessions": float(
            sum(len(values) for values in per_client.values())
        ),
        "jain_index": jain_index(scores),
        "min_satisfaction": scores[0],
        "mean_satisfaction": sum(scores) / len(scores),
    }


def merge_reports(reports: Sequence[LoadReport]) -> LoadReport:
    """Merge per-shard reports into one fleet report.

    Percentiles are *recomputed from the concatenated raw samples* —
    averaging per-shard percentiles is statistically wrong (the p99 of
    a fleet is not the mean of per-shard p99s), so every report to be
    merged must still carry its raw ``results``.  Shard runs overlap in
    wall-clock time, so the merged duration is the longest shard window
    and the merged throughput is total finished work over that window.
    """
    if not reports:
        raise LoadGenError("merge_reports needs at least one report")
    for report in reports:
        if report.offered != len(report.results):
            raise LoadGenError(
                "cannot merge a report without its raw results "
                f"(offered={report.offered}, "
                f"samples={len(report.results)})"
            )
    merged = [result for report in reports for result in report.results]
    duration = max(report.duration_s for report in reports)
    return build_report(merged, duration)


# ----------------------------------------------------------------------
# Synthetic markets
# ----------------------------------------------------------------------


def synthesize_market(
    providers: int = 4,
    operation: str = "render",
    attribute: str = "cost",
    domain: int = 8,
    seed: Optional[int] = None,
) -> ServiceRegistry:
    """A small but real market: ``providers`` services for one
    operation, each advertising a polynomial cost policy over a shared
    resource variable — so every negotiation performs genuine (CPU-bound)
    SCSP solves of a few hundred leaves."""
    rng = random.Random(seed)
    registry = ServiceRegistry()
    for index in range(providers):
        base = round(rng.uniform(2.0, 18.0), 2)
        slope = 1.0 + (index % 3)
        document = QoSDocument(
            service_name=operation,
            provider=f"P{index}",
            policies=[
                QoSPolicy(
                    attribute=attribute,
                    variables={"x": range(0, domain + 1)},
                    polynomial=Polynomial.linear({"x": slope}, base),
                ),
            ],
        )
        registry.publish(
            ServiceDescription(
                service_id=f"{operation}-P{index}",
                name=operation,
                provider=f"P{index}",
                interface=ServiceInterface(operation=operation),
                qos=document,
            )
        )
    return registry


def synthetic_request_factory(
    operation: str = "render",
    attribute: str = "cost",
    domain: int = 8,
) -> RequestFactory:
    """Requests matching :func:`synthesize_market`: each client demands
    the attribute over the shared resource variable."""
    semiring = resolve_attribute(attribute).semiring()
    x = integer_variable("x", domain)
    requirement = polynomial_constraint(
        semiring, [x], Polynomial.linear({"x": 1.0}), name="client-demand"
    )

    def factory(client: str, index: int) -> ClientRequest:
        return ClientRequest(
            client=client,
            operation=operation,
            attribute=attribute,
            requirements=[requirement],
        )

    return factory


def synthesize_contention_market(
    providers: int = 3,
    operation: str = "store",
    attribute: str = "fuzzy-reliability",
    top_quality: float = 0.9,
    quality_step: float = 0.1,
) -> ServiceRegistry:
    """A market built to exhibit allocation contention.

    ``providers`` services for one operation with strictly decreasing
    constant quality levels (``0.9, 0.8, 0.7, …`` by default): every
    client's individually-best choice is the *same* provider, so a
    greedy market piles every session onto ``P0`` and the per-round
    queue discount (``γ^rank``, see :mod:`repro.soa.allocation`)
    punishes the pile-up — the scenario the fairness bench measures
    greedy vs fair policies on.
    """
    if providers < 2:
        raise LoadGenError(
            "a contention market needs at least 2 providers"
        )
    registry = ServiceRegistry()
    for index in range(providers):
        quality = round(
            max(0.05, top_quality - index * quality_step), 6
        )
        document = QoSDocument(
            service_name=operation,
            provider=f"P{index}",
            policies=[
                QoSPolicy(attribute=attribute, constant=quality)
            ],
        )
        registry.publish(
            ServiceDescription(
                service_id=f"{operation}-P{index}",
                name=operation,
                provider=f"P{index}",
                interface=ServiceInterface(operation=operation),
                qos=document,
            )
        )
    return registry


def contention_request_factory(
    operation: str = "store",
    attribute: str = "fuzzy-reliability",
) -> RequestFactory:
    """Requests matching :func:`synthesize_contention_market`: bare
    attribute demands, so candidate evaluation reduces to the offered
    constant and all contention is in *who gets whom*."""

    def factory(client: str, index: int) -> ClientRequest:
        return ClientRequest(
            client=client,
            operation=operation,
            attribute=attribute,
        )

    return factory
