"""Immutable assignments η : V → D.

Constraints evaluate plain mappings from variable names to values; this
module adds a hashable, frozen view used as a dictionary key (e.g. when
memoizing solution tables) plus small helpers shared by the solver and
the nmsccp interpreter.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Mapping, Sequence, Tuple

from .variables import Variable, scope_names


class Assignment(Mapping[str, Any]):
    """A frozen, hashable variable assignment.

    Behaves as a read-only mapping from variable name to value; equality
    and hashing are content-based, so two assignments built in different
    orders compare equal.
    """

    __slots__ = ("_items", "_key")

    def __init__(self, mapping: Mapping[str, Any]) -> None:
        self._items: dict[str, Any] = dict(mapping)
        self._key: Tuple[Tuple[str, Hashable], ...] = tuple(
            sorted(self._items.items(), key=lambda kv: kv[0])
        )

    def __getitem__(self, name: str) -> Any:
        return self._items[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Assignment):
            return self._key == other._key
        if isinstance(other, Mapping):
            return self._items == dict(other)
        return NotImplemented

    def extended(self, name: str, value: Any) -> "Assignment":
        """``η[v := d]`` — a copy with ``name`` (re)bound to ``value``."""
        items = dict(self._items)
        items[name] = value
        return Assignment(items)

    def restricted(self, names: Sequence[str]) -> "Assignment":
        """The sub-assignment over ``names`` (missing names are skipped)."""
        wanted = set(names)
        return Assignment(
            {k: v for k, v in self._items.items() if k in wanted}
        )

    def values_for(self, scope: Sequence[Variable]) -> Tuple[Any, ...]:
        """Tuple of values in scope order (KeyError when unbound)."""
        return tuple(self._items[name] for name in scope_names(scope))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self._key)
        return f"Assignment({inner})"


def assignment_key(
    assignment: Mapping[str, Any], scope: Sequence[Variable]
) -> Tuple[Any, ...]:
    """Project ``assignment`` to a tuple over ``scope`` order — the key
    format used by table constraints."""
    return tuple(assignment[var.name] for var in scope)
