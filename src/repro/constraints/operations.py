"""Module-level constraint operations: ⊗, ÷, ⇓, ⊑, ⊢ and equality.

These mirror the paper's Sec. 2 definitions as free functions over any
:class:`~repro.constraints.constraint.SoftConstraint`.  Relational checks
(``⊑``, entailment, equality) enumerate the merged scope, which is exact
for finite domains — the setting of the paper.
"""

from __future__ import annotations

from functools import reduce
from typing import Any, Iterable, Sequence

from ..semirings.base import Semiring
from .constraint import (
    ConstantConstraint,
    ConstraintError,
    SoftConstraint,
)
from .variables import iter_assignments, merge_scopes


def combine(
    constraints: Iterable[SoftConstraint], semiring: Semiring | None = None
) -> SoftConstraint:
    """``⊗ C`` — combine a collection of constraints.

    An empty collection yields ``1̄`` (requires ``semiring``); this is the
    neutral store the nmsccp interpreter starts from.
    """
    items = list(constraints)
    if not items:
        if semiring is None:
            raise ConstraintError(
                "combining an empty collection needs an explicit semiring"
            )
        return ConstantConstraint(semiring, semiring.one)
    return reduce(lambda acc, c: acc.combine(c), items)


def divide(numerator: SoftConstraint, denominator: SoftConstraint) -> SoftConstraint:
    """``c1 ÷ c2`` — pointwise residuated division."""
    return numerator.divide(denominator)


def project(
    constraint: SoftConstraint, keep: Sequence[str]
) -> SoftConstraint:
    """``c ⇓ keep`` — see :meth:`SoftConstraint.project`."""
    return constraint.project(keep)


def constraint_leq(left: SoftConstraint, right: SoftConstraint) -> bool:
    """``left ⊑ right`` — pointwise semiring order over the merged scope.

    ``c1 ⊑ c2  ⇔  ∀η. c1η ≤S c2η`` (the constraint order of Sec. 2; the
    *smaller* constraint is the more restrictive one).
    """
    if left.semiring != right.semiring:
        raise ConstraintError(
            f"cannot compare constraints over {left.semiring.name} "
            f"and {right.semiring.name}"
        )
    semiring = left.semiring
    scope = merge_scopes(left.scope, right.scope)
    return all(
        semiring.leq(left.value(assignment), right.value(assignment))
        for assignment in iter_assignments(scope)
    )


def constraints_equal(left: SoftConstraint, right: SoftConstraint) -> bool:
    """Extensional equality: same value on every merged-scope assignment."""
    if left.semiring != right.semiring:
        return False
    semiring = left.semiring
    scope = merge_scopes(left.scope, right.scope)
    return all(
        semiring.equiv(left.value(assignment), right.value(assignment))
        for assignment in iter_assignments(scope)
    )


def entails(
    store: Iterable[SoftConstraint] | SoftConstraint, constraint: SoftConstraint
) -> bool:
    """``C ⊢ c  ⇔  ⊗C ⊑ c`` — the entailment relation of Sec. 2.

    ``store`` may be a single (already combined) constraint, an iterable
    of constraints, or a :class:`~repro.constraints.store.ConstraintStore`
    (which answers through its own solver-backed, memoized query path).
    """
    if hasattr(store, "entails") and not isinstance(store, SoftConstraint):
        return store.entails(constraint)
    if isinstance(store, SoftConstraint):
        combined = store
    else:
        combined = combine(store, semiring=constraint.semiring)
    return constraint_leq(combined, constraint)


def blevel(constraint: SoftConstraint | Any) -> Any:
    """``c ⇓∅`` — the best level of consistency of a combined constraint
    (or of a :class:`~repro.constraints.store.ConstraintStore`, which
    routes the query through the solver)."""
    return constraint.consistency()


def best_assignments(constraint: SoftConstraint):
    """All complete scope assignments achieving a ≤S-maximal value.

    Returns ``(frontier_values, assignments)`` where ``assignments`` maps
    each frontier value (by index) to the list of dicts achieving it.
    For totally ordered semirings the frontier is a singleton.
    """
    semiring = constraint.semiring
    entries = list(constraint.enumerate_values())
    frontier = semiring.max_elements(value for _, value in entries)
    grouped = [
        [dict(a) for a, v in entries if v == fv] for fv in frontier
    ]
    return frontier, grouped
