"""Canonical SHA-256 digests for constraints.

These digests identify a constraint *extensionally* — scope (names and
domains), default value, and the full sparse table — so two constraint
objects with the same meaning hash identically regardless of how they
were built.  The solve cache fingerprints whole problems with them, and
the factored store maintains an incremental digest of its factor multiset
(:func:`digest_to_int` turns each digest into an integer so a store's
digest is the *sum* of its factors' digests modulo 2**256 — order
insensitive, multiset-accurate, and O(1) to update on ``tell``).

Digests are memoized on the constraint object (``_digest_memo``):
constraints are semantically immutable, so each object pays the
materialization cost at most once.
"""

from __future__ import annotations

import hashlib
from typing import Any

from .table import to_table

#: Modulus for the additive multiset digest (AdHash over SHA-256).
DIGEST_MODULUS = 1 << 256


def canon_value(value: Any) -> str:
    """A deterministic token for a semiring value or domain element.

    ``repr`` round-trips floats exactly; unordered containers are sorted
    so two equal sets always hash identically.
    """
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(repr(v) for v in value)) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(canon_value(v) for v in value) + ")"
    return repr(value)


def constraint_digest(constraint: Any) -> str:
    """One constraint's extensional digest, memoized on the object.

    Constraints are semantically immutable, so the digest is computed
    (materializing the table) at most once per object — re-fingerprinting
    a problem built from pooled constraint objects is pure hashing.
    """
    memo = getattr(constraint, "_digest_memo", None)
    if memo is not None:
        return memo
    table = to_table(constraint)
    piece = hashlib.sha256()
    for var in table.scope:
        piece.update(f"var {var.name}:{canon_value(var.domain)};".encode())
    piece.update(f"default {canon_value(table.default)};".encode())
    for key in sorted(table.table, key=repr):
        piece.update(
            f"{canon_value(key)}->{canon_value(table.table[key])};".encode()
        )
    digest = piece.hexdigest()
    constraint._digest_memo = digest
    return digest


def digest_to_int(digest: str) -> int:
    """A digest's 256-bit integer form, for additive multiset hashing."""
    return int(digest, 16)
