"""The shared constraint store σ manipulated by nmsccp agents.

The store of the paper's language is a single soft constraint (Sec. 2.1):
``tell`` combines, ``retract`` divides, ``update`` projects-then-combines,
and the checked transitions compare ``σ ⇓∅`` against threshold intervals.
Stores are *immutable*: every operation returns a new store, which lets
the interpreter explore nondeterministic branches without copying state
by hand and makes traces trivially replayable.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from ..semirings.base import Semiring
from ..telemetry.caching import DEFAULT_CACHE_SIZE, LRUCache
from .constraint import ConstantConstraint, SoftConstraint
from .operations import constraint_leq
from .table import to_table
from .variables import Variable, assignment_space_size

#: Materialize the store into a table while its assignment space stays
#: below this bound; beyond it evaluation stays lazy.
_MATERIALIZE_LIMIT = 200_000

#: Sentinel marking a not-yet-computed cached consistency.
_UNSET = object()

#: Memo for ``σ ⊢ c`` checks.  Entailment is the hot premise of the R2/
#: R6/R7 transitions and the exhaustive explorer re-derives it for the
#: same ``(σ, c)`` pair along every interleaving, so the memo pays for
#: itself quickly — but it used to be the kind of cache that grows
#: without bound.  It is LRU-capped; keys are the *constraint objects*
#: themselves (identity hashing — none of the constraint classes define
#:  ``__eq__``), and holding strong references in the cache means a key
#: can never be garbage-collected into an ambiguous identity.
_entailment_cache = LRUCache(DEFAULT_CACHE_SIZE, name="store-entails")


def set_entailment_cache_size(maxsize: int) -> None:
    """Re-cap (and implicitly trim) the shared entailment memo."""
    _entailment_cache.resize(maxsize)


def entailment_cache_stats() -> dict:
    return _entailment_cache.stats()


class StoreError(Exception):
    """Raised on invalid store operations (e.g. retracting a constraint
    the store does not entail)."""


class ConstraintStore:
    """An immutable wrapper around the store constraint σ."""

    __slots__ = ("semiring", "constraint", "_consistency")

    def __init__(
        self, semiring: Semiring, constraint: SoftConstraint | None = None
    ) -> None:
        self.semiring = semiring
        if constraint is None:
            constraint = ConstantConstraint(semiring, semiring.one)
        if constraint.semiring != semiring:
            raise StoreError(
                f"constraint over {constraint.semiring.name} cannot live in "
                f"a {semiring.name} store"
            )
        self.constraint = self._compact(constraint)
        self._consistency = _UNSET

    @staticmethod
    def _compact(constraint: SoftConstraint) -> SoftConstraint:
        if assignment_space_size(constraint.scope) <= _MATERIALIZE_LIMIT:
            return to_table(constraint)
        return constraint

    # ------------------------------------------------------------------
    # Store operations (paper rules R1, R7, R8)
    # ------------------------------------------------------------------

    def _check_semiring(self, constraint: SoftConstraint) -> None:
        if constraint.semiring != self.semiring:
            raise StoreError(
                f"constraint over {constraint.semiring.name} cannot be used "
                f"in a {self.semiring.name} store"
            )

    def tell(self, constraint: SoftConstraint) -> "ConstraintStore":
        """``σ ⊗ c`` — add ``c`` to the store."""
        self._check_semiring(constraint)
        return ConstraintStore(
            self.semiring, self.constraint.combine(constraint)
        )

    def retract(self, constraint: SoftConstraint) -> "ConstraintStore":
        """``σ ÷ c`` — remove ``c``; requires ``σ ⊑ c`` (rule R7).

        The entailment premise of R7 guarantees the division is a genuine
        relaxation; violating it raises :class:`StoreError`.
        """
        self._check_semiring(constraint)
        if not self.entails(constraint):
            raise StoreError(
                "retract requires the store to entail the constraint "
                "(σ ⊑ c); rule R7 premise violated"
            )
        return ConstraintStore(
            self.semiring, self.constraint.divide(constraint)
        )

    def update(
        self, variables: Iterable[str | Variable], constraint: SoftConstraint
    ) -> "ConstraintStore":
        """``(σ ⇓_{V∖X}) ⊗ c`` — transactional assignment (rule R8).

        Removes the influence of every variable in ``X`` from the store,
        then adds ``c``.  Projection and combination happen in one step,
        mirroring the transactional semantics of the paper.
        """
        names = {
            item.name if isinstance(item, Variable) else item
            for item in variables
        }
        keep = [var for var in self.constraint.scope if var.name not in names]
        refreshed = self.constraint.project(keep)
        return ConstraintStore(self.semiring, refreshed.combine(constraint))

    # ------------------------------------------------------------------
    # Queries (rules R2, R6 and the check function)
    # ------------------------------------------------------------------

    def entails(self, constraint: SoftConstraint) -> bool:
        """``σ ⊢ c  ⇔  σ ⊑ c`` — the ask premise (rule R2), memoized."""
        return _entailment_cache.get_or_compute(
            (self.constraint, constraint),
            lambda: constraint_leq(self.constraint, constraint),
        )

    def consistency(self) -> Any:
        """``σ ⇓∅`` — the α-consistency level checked by C1–C4.

        Cached: the store is immutable, and the checked transitions of
        the nmsccp interpreter query this repeatedly.
        """
        if self._consistency is _UNSET:
            self._consistency = self.constraint.consistency()
        return self._consistency

    def project(self, keep: Iterable[str | Variable]) -> SoftConstraint:
        """Expose the store's interface over ``keep`` (paper Sec. 5)."""
        return self.constraint.project(
            [
                item.name if isinstance(item, Variable) else item
                for item in keep
            ]
        )

    @property
    def support(self) -> Tuple[str, ...]:
        return self.constraint.support

    def value(self, assignment) -> Any:
        """Evaluate σ under an assignment (delegates to the constraint)."""
        return self.constraint.value(assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConstraintStore({self.semiring.name}, support={self.support!r})"
        )


def empty_store(semiring: Semiring) -> ConstraintStore:
    """The store ``1̄`` with empty support — the paper's initial store 0̸."""
    return ConstraintStore(semiring)
