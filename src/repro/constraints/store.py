"""The shared constraint store σ manipulated by nmsccp agents.

The store of the paper's language is a single soft constraint (Sec. 2.1):
``tell`` combines, ``retract`` divides, ``update`` projects-then-combines,
and the checked transitions compare ``σ ⇓∅`` against threshold intervals.
Stores are *immutable*: every operation returns a new store, which lets
the interpreter explore nondeterministic branches without copying state
by hand and makes traces trivially replayable.

Two backends implement the contract:

:class:`MonolithStore`
    The paper-literal representation — σ is one eagerly combined (and,
    below a size bound, tabulated) constraint.  Every ``tell`` pays the
    full union-scope materialization.

:class:`FactoredStore`
    σ is kept as the *multiset of told factors* in a persistent cons
    chain, so ``tell`` is O(1) and shares its tail with the parent
    store.  The semantics only ever observes σ through ``blevel``/``⊢``/
    ``⇓`` queries, and those route through :mod:`repro.solver` — bucket
    elimination over the factors, dense kernels when the semiring
    lowers.  An incrementally maintained SHA-256 *store digest* (the sum
    of the factors' digests mod 2²⁵⁶, so it is order-insensitive and
    O(1) per ``tell``) keys the query caches: repeated asks on the same
    store version are cache hits, and two stores that told the same
    factors in any order share entries.

``ConstraintStore(semiring, c)`` dispatches to the session default
backend (``--store-backend {auto,monolith,factored}``; ``auto`` means
factored).  The randomized equivalence suite asserts the two backends
agree bit-for-bit on ``consistency``/``entails`` across every registered
semiring, including nonmonotonic ``retract``/``update`` traces.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..caching import DEFAULT_CACHE_SIZE, LRUCache, _MISSING
from ..semirings.base import Semiring
from .constraint import ConstantConstraint, SoftConstraint
from .digest import DIGEST_MODULUS, constraint_digest, digest_to_int
from .operations import combine, constraint_leq
from .table import TableConstraint, to_table
from .variables import Variable, assignment_space_size, merge_scopes, scope_names

#: Materialize a constraint into a table while its assignment space stays
#: below this bound; beyond it evaluation stays lazy (and digests/caches
#: degrade gracefully to uncached computation).
_MATERIALIZE_LIMIT = 200_000

#: Retract-by-removal is only bitwise-equal to division while every
#: partial sum of factor values stays exactly representable; with values
#: bounded by 2⁵⁰ (see ``WeightedSemiring.exact_retract_value``) that is
#: guaranteed up to 8 factors (8 · 2⁵⁰ = 2⁵³, the float53 integer limit).
_EXACT_RETRACT_MAX_FACTORS = 8

#: Sentinel marking a not-yet-computed cached value.
_UNSET = object()

#: The recognised ``--store-backend`` values.
STORE_BACKENDS: Tuple[str, ...] = ("auto", "monolith", "factored")

_default_backend = "auto"

#: Memo for ``σ ⊢ c`` checks.  Entailment is the hot premise of the R2/
#: R6/R7 transitions and the exhaustive explorer re-derives it for the
#: same ``(σ, c)`` pair along every interleaving, so the memo pays for
#: itself quickly.  It is LRU-capped and shared by both backends: the
#: monolith keys by the *constraint objects* (identity hashing — strong
#: references in the cache keep ids unambiguous), the factored store by
#: its semantic ``(store digest, constraint digest)`` pair.
_entailment_cache = LRUCache(DEFAULT_CACHE_SIZE, name="store-entails")

#: Memo for factored-store ``consistency``/``project`` answers, keyed by
#: the incremental store digest — the per-version fast path in front of
#: the fingerprint-keyed :class:`~repro.solver.cache.SolveCache` below.
_query_cache = LRUCache(DEFAULT_CACHE_SIZE, name="store-query")

#: Fingerprint-keyed solve cache shared by every factored store's
#: ``consistency`` query (created lazily — the solver imports this
#: package).  Two stores that told the same factors in different orders
#: have different identities but one problem fingerprint, so they share
#: a single solved entry here.
_store_solve_cache: Any = None


def set_default_store_backend(backend: str) -> None:
    """Set the backend ``ConstraintStore(...)``/``empty_store`` build
    (the CLI's ``--store-backend`` lands here)."""
    global _default_backend
    if backend not in STORE_BACKENDS:
        raise StoreError(
            f"unknown store backend {backend!r}; known: {STORE_BACKENDS}"
        )
    _default_backend = backend


def get_default_store_backend() -> str:
    return _default_backend


def _backend_class(backend: Optional[str]) -> type:
    name = backend or _default_backend
    if name == "auto":
        name = "factored"
    if name == "monolith":
        return MonolithStore
    if name == "factored":
        return FactoredStore
    raise StoreError(
        f"unknown store backend {name!r}; known: {STORE_BACKENDS}"
    )


def set_entailment_cache_size(maxsize: int) -> None:
    """Re-cap (and implicitly trim) the shared entailment memo."""
    _entailment_cache.resize(maxsize)


def entailment_cache_stats() -> dict:
    return _entailment_cache.stats()


def store_query_cache_stats() -> dict:
    """Stats of the digest-keyed consistency/projection memo."""
    return _query_cache.stats()


def clear_store_caches() -> None:
    """Drop every store-level memo (entailment, query, solve results,
    materialized eliminated buckets).

    Benchmarks call this between timed sections so warm-cache runs are a
    deliberate choice, not an accident of test ordering.
    """
    from ..solver.elimination import clear_bucket_cache

    _entailment_cache.clear()
    _query_cache.clear()
    if _store_solve_cache is not None:
        _store_solve_cache.clear()
    clear_bucket_cache()


def _get_store_solve_cache():
    global _store_solve_cache
    if _store_solve_cache is None:
        from ..solver.cache import DEFAULT_SOLVE_CACHE_SIZE, SolveCache

        _store_solve_cache = SolveCache(DEFAULT_SOLVE_CACHE_SIZE)
    return _store_solve_cache


def _record_tell(backend: str) -> None:
    """``store_factors_total{backend}`` — one sample per told factor."""
    from ..telemetry.runtime import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "store_factors_total",
            "Factors told into constraint stores.",
            labelnames=("backend",),
        ).labels(backend).inc()


def _record_query_hit(query: str) -> None:
    """``store_query_solver_hits_total{query}`` — a store query answered
    from a cached solver result instead of a fresh elimination."""
    from ..telemetry.runtime import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "store_query_solver_hits_total",
            "Store queries answered from cached solver results.",
            labelnames=("query",),
        ).labels(query).inc()


class StoreError(Exception):
    """Raised on invalid store operations (e.g. retracting a constraint
    the store does not entail)."""


class ConstraintStore:
    """An immutable constraint store σ; construction dispatches to the
    session's default backend (or an explicit ``backend=``)."""

    __slots__ = ()

    #: Which representation this class implements.
    backend = "abstract"

    def __new__(
        cls,
        semiring: Semiring = None,  # type: ignore[assignment]
        constraint: SoftConstraint | None = None,
        backend: Optional[str] = None,
    ) -> "ConstraintStore":
        if cls is ConstraintStore:
            cls = _backend_class(backend)
        return object.__new__(cls)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _check_semiring(self, constraint: SoftConstraint) -> None:
        if constraint.semiring != self.semiring:
            raise StoreError(
                f"constraint over {constraint.semiring.name} cannot be used "
                f"in a {self.semiring.name} store"
            )

    def refines(self, constraint: SoftConstraint) -> bool:
        """``σ ⊒ c`` — the store is at least as *relaxed* as ``c``.

        The lower-bound side of the check intervals (C1/C3): σ must not
        demand more than ``c`` anywhere.  Enumerates the merged scope on
        either backend (the dual of ``entails`` cannot ride the ``+``
        projection because ``+`` is a lub, not a glb).
        """
        self._check_semiring(constraint)
        return constraint_leq(constraint, self.constraint)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.semiring.name}, "
            f"support={self.support!r})"
        )

    # Subclass contract -------------------------------------------------

    @property
    def factors(self) -> Tuple[SoftConstraint, ...]:
        raise NotImplementedError

    def fingerprint(self) -> Tuple:
        raise NotImplementedError


def _compact_factor(constraint: SoftConstraint) -> SoftConstraint:
    """Tabulate ``constraint`` when that is affordable.

    Already-extensional tables pass through untouched — the fix for the
    old ``__init__`` re-running the compaction (and its assignment-space
    sizing) on every derived store.
    """
    if isinstance(constraint, TableConstraint):
        return constraint
    if assignment_space_size(constraint.scope) <= _MATERIALIZE_LIMIT:
        return to_table(constraint)
    return constraint


def _is_trivial(constraint: SoftConstraint) -> bool:
    """Whether ``constraint`` is syntactically the neutral store ``1̄``."""
    return (
        isinstance(constraint, ConstantConstraint)
        and constraint.constant == constraint.semiring.one
    )


def _factor_digest_int(constraint: SoftConstraint) -> Optional[int]:
    """The factor's digest as an integer, or ``None`` when computing it
    would require materializing an over-limit assignment space."""
    if getattr(constraint, "_digest_memo", None) is None:
        if assignment_space_size(constraint.scope) > _MATERIALIZE_LIMIT:
            return None
    return digest_to_int(constraint_digest(constraint))


def _factor_exact(semiring: Semiring, constraint: SoftConstraint) -> bool:
    """Whether every value of ``constraint`` lies in the semiring's
    exact-retract subset (see ``Semiring.supports_exact_retract``)."""
    if not semiring.supports_exact_retract():
        return False
    if assignment_space_size(constraint.scope) > _MATERIALIZE_LIMIT:
        return False
    table = to_table(constraint)
    if len(table.table) < assignment_space_size(table.scope):
        if not semiring.exact_retract_value(table.default):
            return False
    return all(
        semiring.exact_retract_value(value)
        for value in table.table.values()
    )


class MonolithStore(ConstraintStore):
    """The paper-literal backend: σ is one eagerly combined constraint."""

    __slots__ = ("semiring", "constraint", "_consistency")

    backend = "monolith"

    def __init__(
        self,
        semiring: Semiring,
        constraint: SoftConstraint | None = None,
        backend: Optional[str] = None,
    ) -> None:
        self.semiring = semiring
        if constraint is None:
            constraint = ConstantConstraint(semiring, semiring.one)
        if constraint.semiring != semiring:
            raise StoreError(
                f"constraint over {constraint.semiring.name} cannot live in "
                f"a {semiring.name} store"
            )
        self.constraint = _compact_factor(constraint)
        self._consistency = _UNSET

    # ------------------------------------------------------------------
    # Store operations (paper rules R1, R7, R8)
    # ------------------------------------------------------------------

    def tell(self, constraint: SoftConstraint) -> "MonolithStore":
        """``σ ⊗ c`` — add ``c`` to the store."""
        self._check_semiring(constraint)
        _record_tell("monolith")
        return MonolithStore(
            self.semiring, self.constraint.combine(constraint)
        )

    def retract(self, constraint: SoftConstraint) -> "MonolithStore":
        """``σ ÷ c`` — remove ``c``; requires ``σ ⊑ c`` (rule R7).

        The entailment premise of R7 guarantees the division is a genuine
        relaxation; violating it raises :class:`StoreError`.
        """
        self._check_semiring(constraint)
        if not self.entails(constraint):
            raise StoreError(
                "retract requires the store to entail the constraint "
                "(σ ⊑ c); rule R7 premise violated"
            )
        return MonolithStore(
            self.semiring, self.constraint.divide(constraint)
        )

    def update(
        self, variables: Iterable[str | Variable], constraint: SoftConstraint
    ) -> "MonolithStore":
        """``(σ ⇓_{V∖X}) ⊗ c`` — transactional assignment (rule R8).

        Removes the influence of every variable in ``X`` from the store,
        then adds ``c``.  Projection and combination happen in one step,
        mirroring the transactional semantics of the paper.
        """
        names = {
            item.name if isinstance(item, Variable) else item
            for item in variables
        }
        keep = [var for var in self.constraint.scope if var.name not in names]
        refreshed = self.constraint.project(keep)
        return MonolithStore(self.semiring, refreshed.combine(constraint))

    # ------------------------------------------------------------------
    # Queries (rules R2, R6 and the check function)
    # ------------------------------------------------------------------

    def entails(self, constraint: SoftConstraint) -> bool:
        """``σ ⊢ c  ⇔  σ ⊑ c`` — the ask premise (rule R2), memoized."""
        key = (self.constraint, constraint)
        hit = _entailment_cache.get(key, _MISSING)
        if hit is not _MISSING:
            _record_query_hit("entails")
            return hit
        answer = constraint_leq(self.constraint, constraint)
        _entailment_cache.put(key, answer)
        return answer

    def consistency(self) -> Any:
        """``σ ⇓∅`` — the α-consistency level checked by C1–C4.

        Cached: the store is immutable, and the checked transitions of
        the nmsccp interpreter query this repeatedly.
        """
        if self._consistency is _UNSET:
            self._consistency = self.constraint.consistency()
        return self._consistency

    def project(self, keep: Iterable[str | Variable]) -> SoftConstraint:
        """Expose the store's interface over ``keep`` (paper Sec. 5)."""
        return self.constraint.project(
            [
                item.name if isinstance(item, Variable) else item
                for item in keep
            ]
        )

    @property
    def factors(self) -> Tuple[SoftConstraint, ...]:
        """The monolith is its own (single) factor."""
        return (self.constraint,)

    @property
    def support(self) -> Tuple[str, ...]:
        return self.constraint.support

    def value(self, assignment) -> Any:
        """Evaluate σ under an assignment (delegates to the constraint)."""
        return self.constraint.value(assignment)

    def fingerprint(self) -> Tuple:
        """A hashable extensional summary of σ (scope names + table)."""
        table = to_table(self.constraint)
        return (table.support, frozenset(table.items()))


class FactoredStore(ConstraintStore):
    """The factor-set backend: σ is the persistent chain of told factors.

    The chain cells are ``(factor, parent_cell)`` tuples, so a ``tell``
    allocates one cell and shares everything else with the parent store.
    ``_digest_int`` is the additive multiset digest of the factors (or
    ``None`` once any factor was too large to tabulate — queries then
    simply skip the caches); ``_all_exact`` tracks whether every factor
    value sits in the semiring's exact-retract subset, which gates the
    retract-by-removal fast path.
    """

    __slots__ = (
        "semiring",
        "_chain",
        "_count",
        "_digest_int",
        "_all_exact",
        "_factors_memo",
        "_combined_memo",
        "_support_memo",
        "_consistency",
    )

    backend = "factored"

    def __init__(
        self,
        semiring: Semiring,
        constraint: SoftConstraint | None = None,
        backend: Optional[str] = None,
    ) -> None:
        if constraint is not None and constraint.semiring != semiring:
            raise StoreError(
                f"constraint over {constraint.semiring.name} cannot live in "
                f"a {semiring.name} store"
            )
        self.semiring = semiring
        self._chain = None
        self._count = 0
        self._digest_int = 0
        self._all_exact = semiring.supports_exact_retract()
        self._factors_memo = None
        self._combined_memo = None
        self._support_memo = None
        self._consistency = _UNSET
        if constraint is not None and not _is_trivial(constraint):
            seeded = self.tell(constraint)
            self._chain = seeded._chain
            self._count = seeded._count
            self._digest_int = seeded._digest_int
            self._all_exact = seeded._all_exact

    @classmethod
    def _from_chain(
        cls,
        semiring: Semiring,
        chain,
        count: int,
        digest_int: Optional[int],
        all_exact: bool,
    ) -> "FactoredStore":
        store = object.__new__(cls)
        store.semiring = semiring
        store._chain = chain
        store._count = count
        store._digest_int = digest_int
        store._all_exact = all_exact
        store._factors_memo = None
        store._combined_memo = None
        store._support_memo = None
        store._consistency = _UNSET
        return store

    @classmethod
    def _from_factors(
        cls, semiring: Semiring, factors: Sequence[SoftConstraint]
    ) -> "FactoredStore":
        chain = None
        digest_int: Optional[int] = 0
        all_exact = semiring.supports_exact_retract()
        for factor in factors:
            chain = (factor, chain)
            if digest_int is not None:
                piece = _factor_digest_int(factor)
                digest_int = (
                    None
                    if piece is None
                    else (digest_int + piece) % DIGEST_MODULUS
                )
            if all_exact:
                all_exact = _factor_exact(semiring, factor)
        return cls._from_chain(
            semiring, chain, len(factors), digest_int, all_exact
        )

    # ------------------------------------------------------------------
    # Factor access
    # ------------------------------------------------------------------

    @property
    def factors(self) -> Tuple[SoftConstraint, ...]:
        """The told factors, oldest first (σ = ⊗ factors)."""
        if self._factors_memo is None:
            out: List[SoftConstraint] = []
            cell = self._chain
            while cell is not None:
                out.append(cell[0])
                cell = cell[1]
            out.reverse()
            self._factors_memo = tuple(out)
        return self._factors_memo

    @property
    def factor_count(self) -> int:
        return self._count

    @property
    def digest(self) -> Optional[str]:
        """The incremental store digest (hex), if maintainable."""
        if self._digest_int is None:
            return None
        return f"{self._digest_int:064x}"

    @property
    def constraint(self) -> SoftConstraint:
        """σ as a (lazily combined) single constraint — the monolith
        view, for consumers of the paper-literal contract.  Never
        tabulated here: evaluation folds the factors on demand."""
        if self._combined_memo is None:
            self._combined_memo = combine(
                self.factors, semiring=self.semiring
            )
        return self._combined_memo

    @property
    def support(self) -> Tuple[str, ...]:
        if self._support_memo is None:
            self._support_memo = scope_names(
                merge_scopes(*(f.scope for f in self.factors))
            ) if self._chain is not None else ()
        return self._support_memo

    def value(self, assignment) -> Any:
        """Evaluate σ under an assignment — the fold ``⊗ factors``."""
        return self.semiring.prod(
            factor.value(assignment) for factor in self.factors
        )

    def fingerprint(self) -> Tuple:
        """A hashable identity of this store *version*.

        Digest-based (intensional): two stores with the same factor
        multiset collide, extensionally-equal-but-differently-factored
        stores do not — which only costs the explorer extra states,
        never wrong answers.  Falls back to factor identities when a
        factor was too large to digest.
        """
        if self._digest_int is not None:
            return ("factored", repr(self.semiring), self._digest_int)
        return (
            "factored-id",
            repr(self.semiring),
            tuple(id(factor) for factor in self.factors),
        )

    # ------------------------------------------------------------------
    # Store operations (paper rules R1, R7, R8)
    # ------------------------------------------------------------------

    def tell(self, constraint: SoftConstraint) -> "FactoredStore":
        """``σ ⊗ c`` — append ``c`` to the factor chain, O(1).

        For ×-idempotent semirings a re-told factor is absorbed
        (``c ⊗ c = c`` pointwise), keeping the fingerprint stable so
        exhaustive exploration closes finite store lattices instead of
        growing the chain forever.
        """
        self._check_semiring(constraint)
        factor = _compact_factor(constraint)
        if self._digest_int is None:
            digest_int: Optional[int] = None
        else:
            piece = _factor_digest_int(factor)
            digest_int = (
                None
                if piece is None
                else (self._digest_int + piece) % DIGEST_MODULUS
            )
            if piece is not None and self.semiring.is_multiplicative_idempotent():
                cell = self._chain
                while cell is not None:
                    if _factor_digest_int(cell[0]) == piece:
                        return self
                    cell = cell[1]
        all_exact = self._all_exact and _factor_exact(self.semiring, factor)
        _record_tell("factored")
        return FactoredStore._from_chain(
            self.semiring,
            (factor, self._chain),
            self._count + 1,
            digest_int,
            all_exact,
        )

    def retract(self, constraint: SoftConstraint) -> "FactoredStore":
        """``σ ÷ c`` — remove ``c``; requires ``σ ⊑ c`` (rule R7).

        When the semiring's ``×`` is cancellative and every value in
        play is exactly representable, retracting a *told* factor just
        drops it from the chain (bitwise equal to the division, and the
        factor set stays factored).  Otherwise — idempotent ``×``,
        rounding floats, saturating sums, or a ``c`` that was never told
        — it falls back to the residuated division over the combined
        store, exactly like the monolith.
        """
        self._check_semiring(constraint)
        if not self.entails(constraint):
            raise StoreError(
                "retract requires the store to entail the constraint "
                "(σ ⊑ c); rule R7 premise violated"
            )
        factors = self.factors
        if (
            self._all_exact
            and self._count <= _EXACT_RETRACT_MAX_FACTORS
            and _factor_exact(self.semiring, constraint)
        ):
            wanted = constraint_digest(constraint)
            for index, factor in enumerate(factors):
                if constraint_digest(factor) == wanted:
                    remaining = factors[:index] + factors[index + 1 :]
                    return FactoredStore._from_factors(
                        self.semiring, remaining
                    )
        divided = self.constraint.divide(constraint)
        return FactoredStore._from_factors(
            self.semiring, (_compact_factor(divided),)
        )

    def update(
        self, variables: Iterable[str | Variable], constraint: SoftConstraint
    ) -> "FactoredStore":
        """``(σ ⇓_{V∖X}) ⊗ c`` — transactional assignment (rule R8).

        Only the factors that *mention* a refreshed variable are
        combined and projected (distributivity: the untouched factors
        slide out of the projection unchanged), so an update's cost
        scales with the touched neighbourhood, not the whole store.
        """
        names = {
            item.name if isinstance(item, Variable) else item
            for item in variables
        }
        touched = [f for f in self.factors if names & set(f.support)]
        untouched = [f for f in self.factors if not (names & set(f.support))]
        if touched:
            kept = [
                var
                for var in merge_scopes(*(f.scope for f in touched))
                if var.name not in names
            ]
            untouched.append(self._eliminate_onto_table(touched, kept))
        return FactoredStore._from_factors(self.semiring, untouched).tell(
            constraint
        )

    # ------------------------------------------------------------------
    # Queries (rules R2, R6 and the check function) — solver-backed
    # ------------------------------------------------------------------

    def _eliminate_onto_table(
        self,
        factors: Sequence[SoftConstraint],
        keep: Sequence[Variable],
    ) -> TableConstraint:
        """``(⊗ factors) ⇓ keep`` via bucket elimination (dense kernels
        whenever the semiring lowers).  Eliminations ride the shared
        :class:`~repro.solver.elimination.BucketCache`: after a delta
        (``tell``/``retract``/``update``) only buckets whose input-factor
        digests changed are recomputed — untouched buckets are answered
        from the materialized intermediates of earlier store versions."""
        from ..solver import SCSP, eliminate, shared_bucket_cache

        problem = SCSP(list(factors), con=[var.name for var in keep])
        table, _stats = eliminate(
            problem, backend="auto", bucket_cache=shared_bucket_cache()
        )
        return table

    def _cached_query(self, label: str, extra, compute):
        if self._digest_int is None:
            return compute()
        key = (label, repr(self.semiring), self._digest_int, extra)
        hit = _query_cache.get(key, _MISSING)
        if hit is not _MISSING:
            _record_query_hit(label)
            return hit
        answer = compute()
        _query_cache.put(key, answer)
        return answer

    def consistency(self) -> Any:
        """``σ ⇓∅ = blevel(⟨factors, ∅⟩)`` — one solver call, answered
        from the digest memo (or the fingerprint-keyed solve cache) when
        this store version was asked before."""
        if self._consistency is _UNSET:
            if self._chain is None:
                self._consistency = self.semiring.one
            else:
                self._consistency = self._cached_query(
                    "consistency", None, self._solve_consistency
                )
        return self._consistency

    def _solve_consistency(self) -> Any:
        from ..solver import SCSP, shared_bucket_cache, solve

        problem = SCSP(list(self.factors), con=())
        result = solve(
            problem,
            method="elimination",
            backend="auto",
            cache=_get_store_solve_cache(),
            bucket_cache=shared_bucket_cache(),
        )
        return result.blevel

    def project(self, keep: Iterable[str | Variable]) -> SoftConstraint:
        """``σ ⇓ keep`` via bucket elimination over the factors."""
        keep_names = {
            item.name if isinstance(item, Variable) else item
            for item in keep
        }
        if self._chain is None:
            return self.constraint.project(keep_names)
        scope = merge_scopes(*(f.scope for f in self.factors))
        kept = tuple(var for var in scope if var.name in keep_names)
        if len(kept) == len(scope):
            return self.constraint
        return self._cached_query(
            "project",
            tuple(var.name for var in kept),
            lambda: self._eliminate_onto_table(self.factors, kept),
        )

    def entails(self, constraint: SoftConstraint) -> bool:
        """``σ ⊢ c  ⇔  σ ⊑ c`` — decided on ``c``'s scope.

        Because ``+`` is the lub and idempotent, ``σ ⊑ c`` iff
        ``(σ ⇓ scope(c)) ⊑ c``: project the factored store down to the
        asked scope with the solver, then compare pointwise over that
        (small) scope instead of the full union scope.
        """
        self._check_semiring(constraint)
        key = None
        if (
            self._digest_int is not None
            and assignment_space_size(constraint.scope)
            <= _MATERIALIZE_LIMIT
        ):
            key = (
                "entails",
                repr(self.semiring),
                self._digest_int,
                constraint_digest(constraint),
            )
            hit = _entailment_cache.get(key, _MISSING)
            if hit is not _MISSING:
                _record_query_hit("entails")
                return hit
        projected = self.project(constraint.support)
        answer = constraint_leq(projected, constraint)
        if key is not None:
            _entailment_cache.put(key, answer)
        return answer


def empty_store(
    semiring: Semiring, backend: Optional[str] = None
) -> ConstraintStore:
    """The store ``1̄`` with empty support — the paper's initial store 0̸."""
    return ConstraintStore(semiring, backend=backend)
