"""Cylindric-algebra operators: hiding and diagonal constraints.

The paper (Sec. 2) closes the constraint system "à la Saraswat" with an
existential quantifier ``∃x`` (implemented as projection, see
``SoftConstraint.hide``) and *diagonal constraints* ``d_xy`` used to model
parameter passing in procedure calls: ``d_xy η = 1`` when ``η(x) = η(y)``
and ``0`` otherwise.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..semirings.base import Semiring
from .constraint import ConstraintError, SoftConstraint
from .variables import Variable


class DiagonalConstraint(SoftConstraint):
    """``d_xy``: full preference when ``x = y``, none otherwise."""

    def __init__(self, semiring: Semiring, x: Variable, y: Variable) -> None:
        if x.name == y.name:
            raise ConstraintError(
                f"diagonal constraint needs two distinct variables, got "
                f"{x.name!r} twice"
            )
        super().__init__(semiring, (x, y))
        self.x = x
        self.y = y

    def value(self, assignment: Mapping[str, Any]) -> Any:
        try:
            equal = assignment[self.x.name] == assignment[self.y.name]
        except KeyError as exc:
            raise ConstraintError(
                f"assignment missing variable {exc.args[0]!r} required by "
                f"d_{self.x.name},{self.y.name}"
            ) from None
        return self.semiring.one if equal else self.semiring.zero

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"d_{self.x.name},{self.y.name}"


def diagonal(semiring: Semiring, x: Variable, y: Variable) -> DiagonalConstraint:
    """Convenience constructor for ``d_xy``."""
    return DiagonalConstraint(semiring, x, y)


def parameter_passing(
    semiring: Semiring,
    body_constraint: SoftConstraint,
    formal: Variable,
    actual: Variable,
) -> SoftConstraint:
    """Model ``p(actual)`` for a body over ``formal`` (paper rule R10).

    Returns ``∃formal.(body ⊗ d_{formal,actual})`` — the standard cylindric
    encoding: link the formal parameter to the actual one with a diagonal
    constraint, then hide the formal.
    """
    if formal.name == actual.name:
        return body_constraint
    linked = body_constraint.combine(
        DiagonalConstraint(semiring, formal, actual)
    )
    return linked.hide(formal.name)
