"""Soft constraints: functions from assignments to semiring values.

A soft constraint (paper Sec. 2) is a function ``c : (V → D) → A`` that
depends only on a finite *support* (its scope).  Evaluating ``cη`` yields
a semiring value; combining with ``⊗`` multiplies values pointwise,
dividing with ``÷`` applies residuated division pointwise, and projecting
``⇓`` sums over the eliminated variables.

This module defines the abstract base plus the lazy composite nodes
(combination, division, projection, renaming); materialization into
explicit tables lives in :mod:`repro.constraints.table` and the
module-level operation functions in :mod:`repro.constraints.operations`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Mapping, Sequence, Tuple

from ..semirings.base import Semiring
from .variables import (
    Variable,
    VariableError,
    iter_assignments,
    merge_scopes,
    scope_names,
)


class ConstraintError(Exception):
    """Raised on malformed constraints or cross-semiring operations."""


class SoftConstraint(ABC):
    """Abstract soft constraint over a semiring and a finite scope."""

    def __init__(self, semiring: Semiring, scope: Sequence[Variable]) -> None:
        self.semiring = semiring
        self.scope: Tuple[Variable, ...] = merge_scopes(scope)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @abstractmethod
    def value(self, assignment: Mapping[str, Any]) -> Any:
        """``cη`` — the semiring value of this constraint under ``η``.

        ``assignment`` must bind every variable in the scope; bindings of
        other variables are ignored (the constraint depends only on its
        support, as required by the paper).
        """

    def __call__(self, assignment: Mapping[str, Any]) -> Any:
        return self.value(assignment)

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------

    @property
    def support(self) -> Tuple[str, ...]:
        """The names of the variables this constraint depends on."""
        return scope_names(self.scope)

    def _require_same_semiring(self, other: "SoftConstraint") -> None:
        if self.semiring != other.semiring:
            raise ConstraintError(
                f"cannot mix constraints over {self.semiring.name} "
                f"and {other.semiring.name}"
            )

    def _scope_subset(self, names: Iterable[str]) -> Tuple[Variable, ...]:
        wanted = set(names)
        unknown = wanted - set(self.support)
        if unknown:
            raise ConstraintError(
                f"variables {sorted(unknown)!r} not in scope {self.support!r}"
            )
        return tuple(var for var in self.scope if var.name in wanted)

    # ------------------------------------------------------------------
    # Algebra (lazy composite nodes)
    # ------------------------------------------------------------------

    def combine(self, other: "SoftConstraint") -> "SoftConstraint":
        """``c1 ⊗ c2`` — pointwise semiring multiplication."""
        self._require_same_semiring(other)
        return CombinedConstraint(self, other)

    def divide(self, other: "SoftConstraint") -> "SoftConstraint":
        """``c1 ÷ c2`` — pointwise residuated division (weak inverse)."""
        self._require_same_semiring(other)
        return DividedConstraint(self, other)

    def project(self, keep: Iterable[str | Variable]) -> "SoftConstraint":
        """``c ⇓ keep`` — eliminate every scope variable not in ``keep``.

        Variables in ``keep`` that are not in the scope are ignored, so a
        store can be projected onto an interface that mentions variables
        it never constrained.
        """
        keep_names = {
            item.name if isinstance(item, Variable) else item for item in keep
        }
        kept = tuple(var for var in self.scope if var.name in keep_names)
        if len(kept) == len(self.scope):
            return self
        return ProjectedConstraint(self, kept)

    def hide(self, *names: str | Variable) -> "SoftConstraint":
        """``∃x.c`` — project the named variables *out* (cylindrification)."""
        hidden = {
            item.name if isinstance(item, Variable) else item for item in names
        }
        return self.project(
            [var for var in self.scope if var.name not in hidden]
        )

    def renamed(self, mapping: Mapping[str, str]) -> "SoftConstraint":
        """``c[x/y]`` — rename scope variables (used by hiding/proc calls)."""
        if not mapping:
            return self
        return RenamedConstraint(self, mapping)

    def __mul__(self, other: "SoftConstraint") -> "SoftConstraint":
        if not isinstance(other, SoftConstraint):
            return NotImplemented
        return self.combine(other)

    def __truediv__(self, other: "SoftConstraint") -> "SoftConstraint":
        if not isinstance(other, SoftConstraint):
            return NotImplemented
        return self.divide(other)

    # ------------------------------------------------------------------
    # Materialization / summaries
    # ------------------------------------------------------------------

    def materialize(self) -> "SoftConstraint":
        """An extensionally equal table constraint (explicit tuples)."""
        from .table import to_table

        return to_table(self)

    def consistency(self) -> Any:
        """``c ⇓∅`` — the best level over all complete assignments."""
        return self.semiring.sum(
            self.value(assignment)
            for assignment in iter_assignments(self.scope)
        )

    def enumerate_values(self):
        """Yield ``(assignment_dict, semiring_value)`` over the scope."""
        for assignment in iter_assignments(self.scope):
            yield assignment, self.value(assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(scope={self.support!r}, "
            f"semiring={self.semiring.name})"
        )


class ConstantConstraint(SoftConstraint):
    """The constraint ``ā`` mapping every assignment to a fixed value.

    ``ConstantConstraint(S, S.one)`` is the ``1̄`` used as the empty store
    of the nmsccp language; ``ConstantConstraint(S, S.zero)`` is ``0̄``.
    """

    def __init__(self, semiring: Semiring, constant: Any) -> None:
        super().__init__(semiring, ())
        self.constant = semiring.check_element(constant)

    def value(self, assignment: Mapping[str, Any]) -> Any:
        return self.constant

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantConstraint({self.constant!r}, {self.semiring.name})"


class FunctionConstraint(SoftConstraint):
    """A constraint given intensionally by a Python function.

    The function receives the scope values positionally, mirroring the
    paper's notation ``c1(x) = x + 3``::

        c1 = FunctionConstraint(weighted, [x], lambda x: x + 3)
    """

    def __init__(
        self,
        semiring: Semiring,
        scope: Sequence[Variable],
        fn: Callable[..., Any],
        name: str = "",
    ) -> None:
        super().__init__(semiring, scope)
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "<fn>")

    def value(self, assignment: Mapping[str, Any]) -> Any:
        try:
            args = tuple(assignment[var.name] for var in self.scope)
        except KeyError as exc:
            raise ConstraintError(
                f"assignment missing variable {exc.args[0]!r} "
                f"required by constraint {self.name!r}"
            ) from None
        return self.semiring.check_element(self.fn(*args))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FunctionConstraint({self.name!r}, scope={self.support!r})"


class CombinedConstraint(SoftConstraint):
    """Lazy ``c1 ⊗ c2``: scope union, values multiplied pointwise."""

    def __init__(self, left: SoftConstraint, right: SoftConstraint) -> None:
        super().__init__(left.semiring, merge_scopes(left.scope, right.scope))
        self.left = left
        self.right = right

    def value(self, assignment: Mapping[str, Any]) -> Any:
        return self.semiring.times(
            self.left.value(assignment), self.right.value(assignment)
        )


class DividedConstraint(SoftConstraint):
    """Lazy ``c1 ÷ c2``: scope union, residuated division pointwise."""

    def __init__(
        self, numerator: SoftConstraint, denominator: SoftConstraint
    ) -> None:
        super().__init__(
            numerator.semiring,
            merge_scopes(numerator.scope, denominator.scope),
        )
        self.numerator = numerator
        self.denominator = denominator

    def value(self, assignment: Mapping[str, Any]) -> Any:
        return self.semiring.divide(
            self.numerator.value(assignment),
            self.denominator.value(assignment),
        )


class ProjectedConstraint(SoftConstraint):
    """Lazy ``c ⇓ kept``: sums the inner constraint over eliminated vars.

    Each evaluation enumerates the eliminated variables' domains; call
    :meth:`SoftConstraint.materialize` once when the projection will be
    evaluated repeatedly.
    """

    def __init__(
        self, inner: SoftConstraint, kept: Tuple[Variable, ...]
    ) -> None:
        super().__init__(inner.semiring, kept)
        self.inner = inner
        self.eliminated: Tuple[Variable, ...] = tuple(
            var for var in inner.scope if var not in kept
        )

    def value(self, assignment: Mapping[str, Any]) -> Any:
        base = {var.name: assignment[var.name] for var in self.scope}
        return self.semiring.sum(
            self.inner.value(extension)
            for extension in iter_assignments(self.inner.scope, base)
        )


class RenamedConstraint(SoftConstraint):
    """``c[x/y]`` — evaluate the inner constraint through a renaming.

    ``mapping`` sends *inner* names to *outer* names; the renamed scope
    keeps each variable's domain.  Used by the hiding rule (fresh
    variables) and by diagonal-constraint parameter passing.
    """

    def __init__(
        self, inner: SoftConstraint, mapping: Mapping[str, str]
    ) -> None:
        targets = [mapping.get(var.name, var.name) for var in inner.scope]
        if len(set(targets)) != len(targets):
            raise VariableError(
                f"renaming {dict(mapping)!r} collapses scope {inner.support!r}"
            )
        new_scope = tuple(
            Variable(target, var.domain)
            for var, target in zip(inner.scope, targets)
        )
        super().__init__(inner.semiring, new_scope)
        self.inner = inner
        self.mapping = dict(mapping)

    def value(self, assignment: Mapping[str, Any]) -> Any:
        inner_view = {
            var.name: assignment[self.mapping.get(var.name, var.name)]
            for var in self.inner.scope
        }
        return self.inner.value(inner_view)
