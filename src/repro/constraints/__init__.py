"""Soft constraint system (paper Sec. 2).

Variables with finite domains, soft constraints as assignment→semiring
functions, the operators ``⊗`` (combine), ``÷`` (divide), ``⇓`` (project),
``∃x`` (hide), diagonal constraints, entailment, and the immutable
constraint store used by the nmsccp language.
"""

from .assignments import Assignment, assignment_key
from .constraint import (
    CombinedConstraint,
    ConstantConstraint,
    ConstraintError,
    DividedConstraint,
    FunctionConstraint,
    ProjectedConstraint,
    RenamedConstraint,
    SoftConstraint,
)
from .cylindric import DiagonalConstraint, diagonal, parameter_passing
from .operations import (
    best_assignments,
    blevel,
    combine,
    constraint_leq,
    constraints_equal,
    divide,
    entails,
    project,
)
from .digest import constraint_digest
from .polynomial import Polynomial, polynomial_constraint
from .store import (
    STORE_BACKENDS,
    ConstraintStore,
    FactoredStore,
    MonolithStore,
    StoreError,
    clear_store_caches,
    empty_store,
    get_default_store_backend,
    set_default_store_backend,
)
from .table import TableConstraint, to_table
from .variables import (
    Variable,
    VariableError,
    assignment_space_size,
    integer_variable,
    iter_assignments,
    merge_scopes,
    scope_names,
    variable,
)

__all__ = [
    "Assignment",
    "assignment_key",
    "SoftConstraint",
    "ConstantConstraint",
    "FunctionConstraint",
    "CombinedConstraint",
    "DividedConstraint",
    "ProjectedConstraint",
    "RenamedConstraint",
    "ConstraintError",
    "TableConstraint",
    "to_table",
    "DiagonalConstraint",
    "diagonal",
    "parameter_passing",
    "combine",
    "divide",
    "project",
    "entails",
    "blevel",
    "best_assignments",
    "constraint_leq",
    "constraints_equal",
    "Polynomial",
    "polynomial_constraint",
    "ConstraintStore",
    "MonolithStore",
    "FactoredStore",
    "StoreError",
    "empty_store",
    "STORE_BACKENDS",
    "set_default_store_backend",
    "get_default_store_backend",
    "clear_store_caches",
    "constraint_digest",
    "Variable",
    "VariableError",
    "variable",
    "integer_variable",
    "merge_scopes",
    "scope_names",
    "iter_assignments",
    "assignment_space_size",
]
