"""Polynomial preference functions, e.g. "reliability = 5x + 80".

The paper states service policies as polynomials over resource variables
("the reliability is equal to 80% plus 5% for each other processor", and
the Weighted constraints ``c1(x)=x+3 … c4(x)=x+5`` of Fig. 7).  This
module provides a small multivariate polynomial type with exact integer /
float coefficients, plus a constructor turning a polynomial into a
:class:`~repro.constraints.constraint.FunctionConstraint`.

Having polynomials as first-class values lets the negotiation tests assert
*symbolic* facts from the paper — e.g. that after a retract the store is
``2x + 2`` — instead of only spot-checking numbers.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Dict, Mapping, Sequence, Tuple

from ..semirings.base import Semiring
from .constraint import FunctionConstraint
from .variables import Variable

#: A monomial is a sorted tuple of (variable-name, power) pairs; the empty
#: tuple is the constant monomial.
Monomial = Tuple[Tuple[str, int], ...]


class Polynomial:
    """Immutable multivariate polynomial with real coefficients."""

    __slots__ = ("coefficients",)

    def __init__(self, coefficients: Mapping[Monomial, float] | None = None):
        cleaned: Dict[Monomial, float] = {}
        for monomial, coefficient in (coefficients or {}).items():
            if coefficient == 0:
                continue
            normalized = tuple(
                sorted((name, power) for name, power in monomial if power != 0)
            )
            cleaned[normalized] = cleaned.get(normalized, 0) + coefficient
        self.coefficients: Dict[Monomial, float] = {
            m: c for m, c in cleaned.items() if c != 0
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: float) -> "Polynomial":
        return cls({(): value})

    @classmethod
    def var(cls, name: str, power: int = 1) -> "Polynomial":
        if power < 0:
            raise ValueError("polynomial powers must be non-negative")
        if power == 0:
            return cls.constant(1)
        return cls({((name, power),): 1})

    @classmethod
    def linear(cls, terms: Mapping[str, float], constant: float = 0) -> "Polynomial":
        """``Σ coeff·var + constant`` — the common SLA-policy shape."""
        coefficients: Dict[Monomial, float] = {
            ((name, 1),): coeff for name, coeff in terms.items()
        }
        coefficients[()] = constant
        return cls(coefficients)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _coerce(self, other: Any) -> "Polynomial":
        if isinstance(other, Polynomial):
            return other
        if isinstance(other, Real):
            return Polynomial.constant(float(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Any) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        merged = dict(self.coefficients)
        for monomial, coefficient in rhs.coefficients.items():
            merged[monomial] = merged.get(monomial, 0) + coefficient
        return Polynomial(merged)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self.coefficients.items()})

    def __sub__(self, other: Any) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: Any) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return rhs + (-self)

    def __mul__(self, other: Any) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        product: Dict[Monomial, float] = {}
        for mono_a, coeff_a in self.coefficients.items():
            for mono_b, coeff_b in rhs.coefficients.items():
                powers: Dict[str, int] = {}
                for name, power in mono_a + mono_b:
                    powers[name] = powers.get(name, 0) + power
                merged: Monomial = tuple(sorted(powers.items()))
                product[merged] = (
                    product.get(merged, 0) + coeff_a * coeff_b
                )
        return Polynomial(product)

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        total = 0.0
        for monomial, coefficient in self.coefficients.items():
            term = coefficient
            for name, power in monomial:
                term *= assignment[name] ** power
            total += term
        return total

    def variables(self) -> Tuple[str, ...]:
        names = {
            name
            for monomial in self.coefficients
            for name, _ in monomial
        }
        return tuple(sorted(names))

    @property
    def is_constant(self) -> bool:
        return all(m == () for m in self.coefficients)

    def __eq__(self, other: object) -> bool:
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self.coefficients == rhs.coefficients

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.coefficients.items())))

    def __str__(self) -> str:
        if not self.coefficients:
            return "0"

        def monomial_str(monomial: Monomial) -> str:
            return "·".join(
                name if power == 1 else f"{name}^{power}"
                for name, power in monomial
            )

        parts = []
        for monomial, coefficient in sorted(
            self.coefficients.items(), key=lambda mc: (-len(mc[0]), mc[0])
        ):
            coeff_str = (
                f"{coefficient:g}" if monomial == () or coefficient != 1 else ""
            )
            body = monomial_str(monomial)
            glue = "" if not coeff_str or not body else ""
            parts.append(f"{coeff_str}{glue}{body}" or "1")
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polynomial({self})"


def polynomial_constraint(
    semiring: Semiring,
    scope: Sequence[Variable],
    polynomial: Polynomial,
    name: str = "",
) -> FunctionConstraint:
    """Lift a polynomial to a soft constraint over ``scope``.

    Scope variables not occurring in the polynomial are allowed (the
    constraint is then constant along them); polynomial variables missing
    from the scope are an error.
    """
    scope_set = {var.name for var in scope}
    missing = set(polynomial.variables()) - scope_set
    if missing:
        raise ValueError(
            f"polynomial mentions {sorted(missing)!r} outside scope "
            f"{sorted(scope_set)!r}"
        )
    order = [var.name for var in scope]

    def evaluate(*values: float) -> float:
        return polynomial.evaluate(dict(zip(order, values)))

    label = name or str(polynomial)
    return FunctionConstraint(semiring, scope, evaluate, name=label)
