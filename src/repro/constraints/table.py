"""Extensional (table) constraints and materialization.

A table constraint stores an explicit semiring value per tuple of scope
values, exactly like the arcs of the paper's Fig. 1 (e.g. ``⟨a,a⟩ → 5``).
``to_table`` flattens any lazy constraint tree into a table, which makes
repeated evaluation O(1) and is the representation the bucket-elimination
solver manipulates.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, Tuple

from ..semirings.base import Semiring
from .assignments import assignment_key
from .constraint import ConstraintError, SoftConstraint
from .variables import Variable, iter_assignments


class TableConstraint(SoftConstraint):
    """A constraint defined by an explicit tuple → value table.

    Tuples follow scope order.  Missing tuples take ``default`` (the
    semiring ``zero`` unless stated otherwise), so sparse tables model
    "forbidden unless listed" naturally.
    """

    def __init__(
        self,
        semiring: Semiring,
        scope: Sequence[Variable],
        table: Mapping[Tuple[Any, ...], Any],
        default: Any = None,
        name: str = "",
    ) -> None:
        super().__init__(semiring, scope)
        self.default = (
            semiring.zero if default is None else semiring.check_element(default)
        )
        self.name = name
        normalized: dict[Tuple[Any, ...], Any] = {}
        arity = len(self.scope)
        for raw_key, raw_value in table.items():
            key = raw_key if isinstance(raw_key, tuple) else (raw_key,)
            if len(key) != arity:
                raise ConstraintError(
                    f"table key {key!r} has arity {len(key)}, "
                    f"scope expects {arity}"
                )
            for value, var in zip(key, self.scope):
                if value not in var.domain:
                    raise ConstraintError(
                        f"value {value!r} not in domain of {var.name!r}"
                    )
            normalized[key] = semiring.check_element(raw_value)
        self.table = normalized

    @classmethod
    def _from_solver(
        cls,
        semiring: Semiring,
        scope: Sequence[Variable],
        table: "dict[Tuple[Any, ...], Any]",
        default: Any = None,
        name: str = "",
    ) -> "TableConstraint":
        """Internal fast constructor for solver-produced tables.

        Skips the per-tuple key/value validation of ``__init__``: the
        caller guarantees keys are enumerated from ``scope``'s own
        domains and values are semiring elements by construction (e.g.
        unlifted from a dense array whose dtype the semiring chose).
        The serving hot path materializes one such table per session
        per batch member, where re-validation is pure overhead.
        """
        self = cls.__new__(cls)
        SoftConstraint.__init__(self, semiring, scope)
        self.default = semiring.zero if default is None else default
        self.name = name
        self.table = table
        return self

    def value(self, assignment: Mapping[str, Any]) -> Any:
        try:
            key = assignment_key(assignment, self.scope)
        except KeyError as exc:
            raise ConstraintError(
                f"assignment missing variable {exc.args[0]!r} "
                f"required by table constraint {self.name!r}"
            ) from None
        return self.table.get(key, self.default)

    def materialize(self) -> "TableConstraint":
        return self

    def items(self):
        """Yield every ``(tuple, value)`` over the full assignment space
        (including defaulted tuples).

        This enumerates ``∏ |domain|`` tuples — *exponential* in scope
        size, regardless of how few tuples are stored explicitly.  When
        defaulted tuples are irrelevant (e.g. the table was produced by
        :func:`to_table`, which makes every tuple explicit), iterate
        :meth:`sparse_items` instead and pay only for what is stored.
        """
        for assignment in iter_assignments(self.scope):
            key = assignment_key(assignment, self.scope)
            yield key, self.table.get(key, self.default)

    def sparse_items(self):
        """Yield only the explicitly stored ``(tuple, value)`` pairs.

        Defaulted tuples are skipped, so this is O(stored tuples) rather
        than O(assignment space); callers that need default coverage must
        use :meth:`items`.
        """
        yield from self.table.items()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TableConstraint{label}(scope={self.support!r}, "
            f"{len(self.table)} explicit tuples)"
        )


def to_table(constraint: SoftConstraint, name: str = "") -> TableConstraint:
    """Materialize any constraint into an extensionally equal table.

    Enumerates the full assignment space of the constraint's scope —
    exponential in scope size, which is exactly the price the paper's
    projection operator pays; callers control scope growth.

    The result is memoized on the constraint object, so repeated solves
    over the same constraint objects (the broker/runtime hot path)
    materialize each constraint once.  Constraints are semantically
    immutable functions, which is what makes the memo sound; the ``name``
    of a memoized table is the one given on first materialization.
    """
    if isinstance(constraint, TableConstraint):
        return constraint
    cached = getattr(constraint, "_table_memo", None)
    if cached is not None:
        return cached
    table: dict[Tuple[Any, ...], Any] = {}
    for assignment in iter_assignments(constraint.scope):
        key = assignment_key(assignment, constraint.scope)
        table[key] = constraint.value(assignment)
    materialized = TableConstraint(
        constraint.semiring,
        constraint.scope,
        table,
        default=constraint.semiring.zero,
        name=name,
    )
    constraint._table_memo = materialized
    return materialized
