"""Decision variables with finite domains.

In the paper (Sec. 2) a soft constraint is a function from assignments of
an ordered set of variables ``V`` over a finite domain ``D`` to semiring
values.  We attach a finite domain to each variable: projection and
``blevel`` computations must enumerate the extensions of a tuple over the
eliminated variables, which requires knowing their domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence, Tuple


class VariableError(Exception):
    """Raised on malformed variables or inconsistent scopes."""


@dataclass(frozen=True)
class Variable:
    """A named decision variable over a finite, ordered domain.

    Two variables are the same iff they share name *and* domain; mixing
    two same-named variables with different domains in one scope is a
    modelling error detected by :func:`merge_scopes`.
    """

    name: str
    domain: Tuple[Hashable, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise VariableError("variable name must be non-empty")
        if not isinstance(self.domain, tuple):
            object.__setattr__(self, "domain", tuple(self.domain))
        if not self.domain:
            raise VariableError(f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise VariableError(
                f"variable {self.name!r} has duplicate domain values"
            )

    @property
    def size(self) -> int:
        return len(self.domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self.domain) <= 4:
            return f"Variable({self.name!r}, {self.domain!r})"
        return (
            f"Variable({self.name!r}, "
            f"⟨{self.domain[0]!r}…{self.domain[-1]!r}⟩×{len(self.domain)})"
        )


def variable(name: str, domain: Iterable[Hashable]) -> Variable:
    """Convenience constructor: ``variable("x", range(10))``."""
    return Variable(name, tuple(domain))


def integer_variable(name: str, upper: int, lower: int = 0) -> Variable:
    """A variable ranging over the integers ``lower … upper`` inclusive.

    The paper's negotiation examples use natural-number variables (e.g.
    the number of failures ``x``); a finite upper bound makes projection
    computable and is documented per-experiment in EXPERIMENTS.md.
    """
    if upper < lower:
        raise VariableError(f"empty integer range [{lower}, {upper}]")
    return Variable(name, tuple(range(lower, upper + 1)))


def merge_scopes(*scopes: Sequence[Variable]) -> Tuple[Variable, ...]:
    """Union of scopes, preserving first-occurrence order.

    Raises :class:`VariableError` when two scopes disagree on the domain
    of a same-named variable.
    """
    seen: dict[str, Variable] = {}
    ordered: list[Variable] = []
    for scope in scopes:
        for var in scope:
            existing = seen.get(var.name)
            if existing is None:
                seen[var.name] = var
                ordered.append(var)
            elif existing.domain != var.domain:
                raise VariableError(
                    f"variable {var.name!r} appears with two different "
                    f"domains ({existing.domain!r} vs {var.domain!r})"
                )
    return tuple(ordered)


def scope_names(scope: Sequence[Variable]) -> Tuple[str, ...]:
    """The names of a scope, in order."""
    return tuple(var.name for var in scope)


def iter_assignments(
    scope: Sequence[Variable],
    base: Mapping[str, Any] | None = None,
) -> Iterator[dict[str, Any]]:
    """Enumerate all assignments of ``scope``, extending ``base``.

    Yields plain dicts (name → value); ``base`` entries are copied into
    every yielded assignment, and scope variables already fixed by
    ``base`` are *not* re-enumerated.
    """
    fixed = dict(base) if base else {}
    free = [var for var in scope if var.name not in fixed]

    def recurse(index: int, current: dict[str, Any]) -> Iterator[dict[str, Any]]:
        if index == len(free):
            yield dict(current)
            return
        var = free[index]
        for value in var.domain:
            current[var.name] = value
            yield from recurse(index + 1, current)
        del current[var.name]

    yield from recurse(0, dict(fixed))


def assignment_space_size(scope: Sequence[Variable]) -> int:
    """Number of complete assignments of ``scope``."""
    size = 1
    for var in scope:
        size *= var.size
    return size
