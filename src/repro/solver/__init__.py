"""SCSP solving (paper Sec. 2's ``Sol``/``blevel``, mechanized).

Backends: exhaustive enumeration (reference, any semiring), bucket
elimination (exact, any semiring, avoids the full joint table), branch &
bound (totally ordered semirings), plus soft arc consistency and α-cuts.
``solve`` picks a backend automatically.
"""

from __future__ import annotations

from .alphacut import (
    alpha_cut,
    alpha_cut_problem,
    consistency_level_among,
    satisfiable_at,
)
from .branch_bound import solve_branch_bound
from .cache import (
    DEFAULT_SOLVE_CACHE_SIZE,
    SolveCache,
    problem_fingerprint,
    topology_fingerprint,
)
from .consistency import (
    PropagationStats,
    enforce_arc_consistency,
    prune_domains,
)
from .elimination import (
    DEFAULT_BUCKET_CACHE_SIZE,
    BucketCache,
    clear_bucket_cache,
    eliminate,
    eliminate_batch,
    shared_bucket_cache,
    solve_elimination,
    solve_elimination_batch,
)
from .exhaustive import solve_exhaustive
from .kernels import (
    BatchDenseFactor,
    DenseFactor,
    KernelError,
    Lowering,
    best_over_variable,
    combine_factors,
    lower_semiring,
    lowering_fallback_stats,
    resolve_lowering,
    split_results,
    stack_factors,
)
from .minibucket import minibucket_bound, screening_test
from .heuristics import (
    ORDERINGS,
    given_order,
    max_degree_order,
    min_degree_order,
    min_domain_order,
    resolve_ordering,
)
from .problem import SCSP, ProblemError, SolverResult, SolverStats

_METHODS = {
    "exhaustive": solve_exhaustive,
    "branch-bound": solve_branch_bound,
    "elimination": solve_elimination,
}


#: Methods whose hot loop can run over dense ndarray kernels.
_BACKEND_AWARE = ("branch-bound", "elimination")


def solve(
    problem: SCSP,
    method: str = "auto",
    backend: str = "auto",
    cache: "SolveCache | None" = None,
    bucket_cache: "BucketCache | None" = None,
    **options,
) -> SolverResult:
    """Solve an SCSP with the requested backend.

    ``method="auto"`` picks branch & bound for totally ordered semirings
    and bucket elimination otherwise.  ``backend`` selects the factor
    representation for the methods that support it (``auto``/``dict``/
    ``dense``, see :mod:`repro.solver.kernels`).  When ``cache`` is given
    the solve is keyed by :func:`~repro.solver.cache.problem_fingerprint`
    and answered from a warm entry when one exists.  ``bucket_cache``
    (elimination only) additionally memoizes per-bucket intermediates so
    a near-miss — same topology, one factor changed — re-eliminates only
    the affected buckets; it never changes results, so it is deliberately
    excluded from the problem fingerprint.
    """
    if method == "auto":
        method = (
            "branch-bound"
            if problem.semiring.is_total_order()
            else "elimination"
        )
    try:
        backend_fn = _METHODS[method]
    except KeyError:
        known = ", ".join(sorted(_METHODS) + ["auto"])
        raise ProblemError(
            f"unknown solve method {method!r}; known: {known}"
        ) from None
    call_options = dict(options)
    if method in _BACKEND_AWARE:
        call_options["backend"] = backend
    if bucket_cache is not None and method == "elimination":
        call_options["bucket_cache"] = bucket_cache
    if cache is not None:
        key = problem_fingerprint(problem, method, backend, options)
        hit = cache.fetch(key, problem)
        if hit is not None:
            return hit
    result = backend_fn(problem, **call_options)
    if cache is not None:
        cache.store(key, result)
    return result


__all__ = [
    "SCSP",
    "ProblemError",
    "SolverResult",
    "SolverStats",
    "SolveCache",
    "DEFAULT_SOLVE_CACHE_SIZE",
    "problem_fingerprint",
    "topology_fingerprint",
    "BucketCache",
    "DEFAULT_BUCKET_CACHE_SIZE",
    "shared_bucket_cache",
    "clear_bucket_cache",
    "DenseFactor",
    "BatchDenseFactor",
    "KernelError",
    "Lowering",
    "lower_semiring",
    "lowering_fallback_stats",
    "resolve_lowering",
    "combine_factors",
    "stack_factors",
    "split_results",
    "best_over_variable",
    "solve",
    "solve_exhaustive",
    "solve_branch_bound",
    "solve_elimination",
    "solve_elimination_batch",
    "eliminate",
    "eliminate_batch",
    "enforce_arc_consistency",
    "prune_domains",
    "PropagationStats",
    "minibucket_bound",
    "screening_test",
    "alpha_cut",
    "alpha_cut_problem",
    "satisfiable_at",
    "consistency_level_among",
    "ORDERINGS",
    "given_order",
    "min_degree_order",
    "min_domain_order",
    "max_degree_order",
    "resolve_ordering",
]
