"""SCSP solving (paper Sec. 2's ``Sol``/``blevel``, mechanized).

Backends: exhaustive enumeration (reference, any semiring), bucket
elimination (exact, any semiring, avoids the full joint table), branch &
bound (totally ordered semirings), plus soft arc consistency and α-cuts.
``solve`` picks a backend automatically.
"""

from __future__ import annotations

from .alphacut import (
    alpha_cut,
    alpha_cut_problem,
    consistency_level_among,
    satisfiable_at,
)
from .branch_bound import solve_branch_bound
from .consistency import (
    PropagationStats,
    enforce_arc_consistency,
    prune_domains,
)
from .elimination import eliminate, solve_elimination
from .exhaustive import solve_exhaustive
from .minibucket import minibucket_bound, screening_test
from .heuristics import (
    ORDERINGS,
    given_order,
    max_degree_order,
    min_degree_order,
    min_domain_order,
    resolve_ordering,
)
from .problem import SCSP, ProblemError, SolverResult, SolverStats

_METHODS = {
    "exhaustive": solve_exhaustive,
    "branch-bound": solve_branch_bound,
    "elimination": solve_elimination,
}


def solve(problem: SCSP, method: str = "auto", **options) -> SolverResult:
    """Solve an SCSP with the requested backend.

    ``method="auto"`` picks branch & bound for totally ordered semirings
    and bucket elimination otherwise.
    """
    if method == "auto":
        method = (
            "branch-bound"
            if problem.semiring.is_total_order()
            else "elimination"
        )
    try:
        backend = _METHODS[method]
    except KeyError:
        known = ", ".join(sorted(_METHODS) + ["auto"])
        raise ProblemError(
            f"unknown solve method {method!r}; known: {known}"
        ) from None
    return backend(problem, **options)


__all__ = [
    "SCSP",
    "ProblemError",
    "SolverResult",
    "SolverStats",
    "solve",
    "solve_exhaustive",
    "solve_branch_bound",
    "solve_elimination",
    "eliminate",
    "enforce_arc_consistency",
    "prune_domains",
    "PropagationStats",
    "minibucket_bound",
    "screening_test",
    "alpha_cut",
    "alpha_cut_problem",
    "satisfiable_at",
    "consistency_level_among",
    "ORDERINGS",
    "given_order",
    "min_degree_order",
    "min_domain_order",
    "max_degree_order",
    "resolve_ordering",
]
