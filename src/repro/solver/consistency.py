"""Soft local consistency (node/arc) for idempotent-× semirings.

When ``×`` is idempotent (Classical, Fuzzy, Set-based), adding to a unary
constraint the projection of any neighbouring combination does not change
the problem's solution: ``c_x := c_x ⊗ ((c_xy ⊗ c_y) ⇓ x)`` is a sound,
solution-preserving tightening (semiring soft arc consistency, Bistarelli
et al.).  Iterated to fixpoint it prunes hopeless values before search —
the classic propagation the paper inherits from the SCSP literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..constraints.operations import constraints_equal
from ..constraints.table import TableConstraint, to_table
from ..constraints.variables import Variable
from .problem import SCSP, ProblemError


@dataclass
class PropagationStats:
    """Work counters for an arc-consistency run."""

    revisions: int = 0
    changes: int = 0
    values_pruned: int = 0
    iterations: int = 0


def _unary_tables(problem: SCSP) -> Dict[str, TableConstraint]:
    """Current unary constraint per variable (missing ones start at 1̄)."""
    semiring = problem.semiring
    unary: Dict[str, TableConstraint] = {}
    for var in problem.variables:
        ones = {(value,): semiring.one for value in var.domain}
        unary[var.name] = TableConstraint(
            semiring, (var,), ones, default=semiring.zero
        )
    for constraint in problem.constraints:
        if len(constraint.scope) == 1:
            name = constraint.scope[0].name
            unary[name] = to_table(unary[name].combine(constraint))
    return unary


def enforce_arc_consistency(
    problem: SCSP, max_iterations: int = 100
) -> Tuple[SCSP, PropagationStats]:
    """Return an equivalent, locally consistent problem plus statistics.

    Only valid for idempotent ``×`` (raises otherwise).  Binary
    constraints drive revisions; higher-arity constraints are kept as-is
    (sound: we only ever *add* entailed information).  The returned
    problem has one tightened unary constraint per variable alongside the
    original non-unary constraints, and the same ``Sol``/``blevel``.
    """
    semiring = problem.semiring
    if not semiring.is_multiplicative_idempotent():
        raise ProblemError(
            f"arc consistency requires idempotent ×; {semiring.name} "
            "is not (use branch & bound or elimination instead)"
        )

    stats = PropagationStats()
    unary = _unary_tables(problem)
    binaries = [
        to_table(c) for c in problem.constraints if len(c.scope) == 2
    ]
    others = [c for c in problem.constraints if len(c.scope) > 2]

    # Revision queue of (binary constraint, variable-to-revise) arcs.
    queue: List[Tuple[TableConstraint, Variable]] = [
        (binary, var) for binary in binaries for var in binary.scope
    ]
    iteration_guard = 0
    while queue:
        iteration_guard += 1
        if iteration_guard > max_iterations * max(1, len(binaries) * 2):
            break
        stats.iterations = iteration_guard
        binary, target = queue.pop(0)
        other = next(v for v in binary.scope if v.name != target.name)
        stats.revisions += 1

        support = binary.combine(unary[other.name]).project([target.name])
        tightened = to_table(unary[target.name].combine(support))
        if not constraints_equal(tightened, unary[target.name]):
            stats.changes += 1
            stats.values_pruned += sum(
                1
                for (value,), level in tightened.items()
                if level == semiring.zero
                and unary[target.name].value({target.name: value})
                != semiring.zero
            )
            unary[target.name] = tightened
            # Re-enqueue arcs pointing at the neighbours of ``target``.
            for other_binary in binaries:
                if target.name in other_binary.support:
                    for var in other_binary.scope:
                        if var.name != target.name:
                            queue.append((other_binary, var))

    new_constraints = list(unary.values()) + binaries + others
    tightened_problem = SCSP(
        new_constraints, con=problem.con, name=f"{problem.name}+AC"
    )
    return tightened_problem, stats


def prune_domains(problem: SCSP) -> Tuple[SCSP, int]:
    """Drop domain values whose unary level is the semiring ``zero``.

    Returns a new problem over the reduced domains plus the number of
    values removed.  Sound for any semiring (a zero unary level forces
    the combined value to zero), but only *useful* after a tightening
    pass such as :func:`enforce_arc_consistency`.
    """
    semiring = problem.semiring
    unary_zero: Dict[str, set] = {}
    for constraint in problem.constraints:
        if len(constraint.scope) != 1:
            continue
        var = constraint.scope[0]
        for value in var.domain:
            if constraint.value({var.name: value}) == semiring.zero:
                unary_zero.setdefault(var.name, set()).add(value)

    if not unary_zero:
        return problem, 0

    removed = 0
    replacement: Dict[str, Variable] = {}
    for var in problem.variables:
        dead = unary_zero.get(var.name, set())
        if not dead:
            replacement[var.name] = var
            continue
        kept = tuple(v for v in var.domain if v not in dead)
        if not kept:
            # Every value is hopeless: keep one so the problem stays
            # well-formed; its blevel is zero either way.
            kept = (var.domain[0],)
        removed += var.size - len(kept)
        replacement[var.name] = Variable(var.name, kept)

    def rebuild(constraint):
        table = to_table(constraint)
        scope = tuple(replacement[v.name] for v in table.scope)
        entries = {
            key: value
            for key, value in table.items()
            if all(
                k in var.domain for k, var in zip(key, scope)
            )
        }
        return TableConstraint(
            semiring, scope, entries, default=semiring.zero
        )

    reduced = SCSP(
        [rebuild(c) for c in problem.constraints],
        con=problem.con,
        name=f"{problem.name}+pruned",
    )
    return reduced, removed
