"""A bounded, fingerprint-keyed cache of SCSP solve results.

The broker's hot path (one SCSP per candidate per negotiation) re-solves
the *same* problem over and over: a market's clients keep asking for the
same operation/attribute pairs, so ``required ⊗ offered`` is identical
across sessions.  :class:`SolveCache` memoizes
:class:`~repro.solver.problem.SolverResult` payloads under a canonical
*problem fingerprint* — a SHA-256 over the semiring, every constraint's
scope/domains and materialized table bytes, the ``con`` set and the solve
method/options — so a warm entry is provably the same problem, not just a
same-named one.

Invalidation is structural: any change to a constraint table, domain,
``con`` set or solve option changes the fingerprint, so stale entries are
never *returned* — they simply age out of the LRU.  The cache rides the
shared :class:`~repro.caching.LRUCache` in threadsafe mode (the runtime's
worker pool solves concurrently) and feeds the standard
``cache_hits_total``/``cache_misses_total{cache="solve"}`` telemetry
counters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..caching import LRUCache
from ..constraints.digest import canon_value, constraint_digest
from .problem import SCSP, SolverResult, SolverStats

#: Default number of distinct problems kept warm (satellite spec: bounded).
DEFAULT_SOLVE_CACHE_SIZE = 2048

# Canonical digest helpers live in repro.constraints.digest (shared with
# the factored store's incremental digest); these aliases keep the old
# import paths working.
_canon = canon_value
_constraint_digest = constraint_digest


def problem_fingerprint(
    problem: SCSP,
    method: str,
    backend: Optional[str] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> str:
    """A canonical digest identifying a solve call's full input.

    Constraint digests are *sorted*, so two problems listing the same
    constraints in a different order share one entry.  Materialization
    reuses each constraint's memoized table, so fingerprinting a problem
    the broker has seen before costs hashing, not enumeration.
    """
    digests: List[str] = [
        constraint_digest(constraint) for constraint in problem.constraints
    ]

    head = hashlib.sha256()
    head.update(f"semiring {problem.semiring!r};".encode())
    for digest in sorted(digests):
        head.update(digest.encode())
    head.update(f"con {sorted(problem.con)};".encode())
    head.update(f"method {method};backend {backend};".encode())
    head.update(
        f"options {sorted((options or {}).items())!r};".encode()
    )
    return head.hexdigest()


def _scope_signature(constraint: Any) -> bytes:
    """The canonical bytes of one constraint's scope (names + domains),
    memoized on the object — scopes are immutable, and the serving hot
    path fingerprints the same pooled offer constraints for every
    session, so repeat calls must cost a ``getattr``, not a
    re-serialization of every domain."""
    memo = getattr(constraint, "_scope_sig_memo", None)
    if memo is None:
        memo = b"".join(
            f"var {var.name}:{canon_value(var.domain)};".encode()
            for var in constraint.scope
        )
        constraint._scope_sig_memo = memo
    return memo


def topology_fingerprint(
    problem: SCSP,
    backend: str = "auto",
    ordering: str = "min-degree",
) -> str:
    """A digest of a problem's constraint *topology*, table values
    excluded — the batch-compatibility key.

    Two problems with equal topology fingerprints present the same
    ordered sequence of constraint scopes (names and domains, in scope
    order), the same ``con`` and the same semiring/backend/ordering, so
    they run the identical bucket schedule and their factors stack
    position-wise into one batched sweep
    (:func:`~repro.solver.elimination.eliminate_batch`).  Unlike
    :func:`problem_fingerprint` the constraint order is *not* sorted
    away: positional stacking must preserve each problem's own combine
    order for bit-identity.
    """
    head = hashlib.sha256()
    head.update(f"semiring {problem.semiring!r};".encode())
    head.update(f"backend {backend};ordering {ordering};".encode())
    head.update(f"con {list(problem.con)};".encode())
    for constraint in problem.constraints:
        head.update(_scope_signature(constraint))
        head.update(b"|")
    return head.hexdigest()


@dataclass(frozen=True)
class _CacheEntry:
    """The problem-independent payload of a solved SCSP."""

    blevel: Any
    frontier: Tuple[Any, ...]
    optima: Tuple[Tuple[Dict[str, Any], ...], ...]
    method: str
    stats: SolverStats

    def result_for(self, problem: SCSP) -> SolverResult:
        """A fresh :class:`SolverResult` bound to ``problem`` — deep
        copies of the mutable parts, so callers can edit what they get
        back without corrupting the cache."""
        return SolverResult(
            problem=problem,
            blevel=self.blevel,
            frontier=list(self.frontier),
            optima=[
                [dict(assignment) for assignment in group]
                for group in self.optima
            ],
            method=self.method,
            stats=replace(self.stats),
        )

    @classmethod
    def from_result(cls, result: SolverResult) -> "_CacheEntry":
        return cls(
            blevel=result.blevel,
            frontier=tuple(result.frontier),
            optima=tuple(
                tuple(dict(assignment) for assignment in group)
                for group in result.optima
            ),
            method=result.method,
            stats=replace(result.stats),
        )


class SolveCache:
    """Bounded LRU of solve results, keyed by problem fingerprint.

    Thread-safe (the runtime's worker pool solves concurrently) via the
    shared LRU's ``threadsafe`` mode; hit and miss traffic flows into the
    telemetry registry under ``cache="solve"``.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_SOLVE_CACHE_SIZE,
        tier: str = "",
    ) -> None:
        self._lru = LRUCache(
            maxsize, name="solve", threadsafe=True, tier=tier
        )

    @property
    def tier(self) -> str:
        return self._lru.tier

    def fetch(self, key: str, problem: SCSP) -> Optional[SolverResult]:
        """The cached result rebound to ``problem``, or ``None``."""
        entry = self.fetch_entry(key)
        if entry is None:
            return None
        return entry.result_for(problem)

    def store(self, key: str, result: SolverResult) -> None:
        self.store_entry(key, _CacheEntry.from_result(result))

    def fetch_entry(self, key: str) -> Optional[_CacheEntry]:
        """The raw problem-independent entry — the currency tier stacks
        (:mod:`repro.fleet.cache`) move between levels without
        rebinding or re-deep-copying results."""
        return self._lru.get(key)

    def store_entry(self, key: str, entry: _CacheEntry) -> None:
        self._lru.put(key, entry)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        """Hits/misses/evictions/size of the underlying LRU, one row in
        the same shape :func:`repro.caching.cache_stats` reports."""
        return self._lru.stats()

    def __len__(self) -> int:
        return len(self._lru)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolveCache({self._lru!r})"
