"""A bounded, fingerprint-keyed cache of SCSP solve results.

The broker's hot path (one SCSP per candidate per negotiation) re-solves
the *same* problem over and over: a market's clients keep asking for the
same operation/attribute pairs, so ``required ⊗ offered`` is identical
across sessions.  :class:`SolveCache` memoizes
:class:`~repro.solver.problem.SolverResult` payloads under a canonical
*problem fingerprint* — a SHA-256 over the semiring, every constraint's
scope/domains and materialized table bytes, the ``con`` set and the solve
method/options — so a warm entry is provably the same problem, not just a
same-named one.

Invalidation is structural: any change to a constraint table, domain,
``con`` set or solve option changes the fingerprint, so stale entries are
never *returned* — they simply age out of the LRU.  The cache is safe
under the runtime's worker threads (one lock around the LRU) and feeds
the standard ``cache_hits_total``/``cache_misses_total{cache="solve"}``
telemetry counters.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..constraints.table import to_table
from ..telemetry.caching import LRUCache
from .problem import SCSP, SolverResult, SolverStats

#: Default number of distinct problems kept warm (satellite spec: bounded).
DEFAULT_SOLVE_CACHE_SIZE = 2048


def _canon(value: Any) -> str:
    """A deterministic token for a semiring value or domain element.

    ``repr`` round-trips floats exactly; unordered containers are sorted
    so two equal sets always hash identically.
    """
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(repr(v) for v in value)) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(_canon(v) for v in value) + ")"
    return repr(value)


def problem_fingerprint(
    problem: SCSP,
    method: str,
    backend: Optional[str] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> str:
    """A canonical digest identifying a solve call's full input.

    Constraint digests are *sorted*, so two problems listing the same
    constraints in a different order share one entry.  Materialization
    reuses each constraint's memoized table, so fingerprinting a problem
    the broker has seen before costs hashing, not enumeration.
    """
    digests: List[str] = [
        _constraint_digest(constraint) for constraint in problem.constraints
    ]

    head = hashlib.sha256()
    head.update(f"semiring {problem.semiring!r};".encode())
    for digest in sorted(digests):
        head.update(digest.encode())
    head.update(f"con {sorted(problem.con)};".encode())
    head.update(f"method {method};backend {backend};".encode())
    head.update(
        f"options {sorted((options or {}).items())!r};".encode()
    )
    return head.hexdigest()


def _constraint_digest(constraint: Any) -> str:
    """One constraint's extensional digest, memoized on the object.

    Constraints are semantically immutable, so the digest is computed
    (materializing the table) at most once per object — re-fingerprinting
    a problem built from pooled constraint objects is pure hashing.
    """
    memo = getattr(constraint, "_digest_memo", None)
    if memo is not None:
        return memo
    table = to_table(constraint)
    piece = hashlib.sha256()
    for var in table.scope:
        piece.update(f"var {var.name}:{_canon(var.domain)};".encode())
    piece.update(f"default {_canon(table.default)};".encode())
    for key in sorted(table.table, key=repr):
        piece.update(
            f"{_canon(key)}->{_canon(table.table[key])};".encode()
        )
    digest = piece.hexdigest()
    constraint._digest_memo = digest
    return digest


@dataclass(frozen=True)
class _CacheEntry:
    """The problem-independent payload of a solved SCSP."""

    blevel: Any
    frontier: Tuple[Any, ...]
    optima: Tuple[Tuple[Dict[str, Any], ...], ...]
    method: str
    stats: SolverStats

    def result_for(self, problem: SCSP) -> SolverResult:
        """A fresh :class:`SolverResult` bound to ``problem`` — deep
        copies of the mutable parts, so callers can edit what they get
        back without corrupting the cache."""
        return SolverResult(
            problem=problem,
            blevel=self.blevel,
            frontier=list(self.frontier),
            optima=[
                [dict(assignment) for assignment in group]
                for group in self.optima
            ],
            method=self.method,
            stats=replace(self.stats),
        )

    @classmethod
    def from_result(cls, result: SolverResult) -> "_CacheEntry":
        return cls(
            blevel=result.blevel,
            frontier=tuple(result.frontier),
            optima=tuple(
                tuple(dict(assignment) for assignment in group)
                for group in result.optima
            ),
            method=result.method,
            stats=replace(result.stats),
        )


class SolveCache:
    """Bounded LRU of solve results, keyed by problem fingerprint.

    Thread-safe (the runtime's worker pool solves concurrently); hit and
    miss traffic flows into the telemetry registry through the underlying
    :class:`~repro.telemetry.caching.LRUCache` under ``cache="solve"``.
    """

    def __init__(self, maxsize: int = DEFAULT_SOLVE_CACHE_SIZE) -> None:
        self._lru = LRUCache(maxsize, name="solve")
        self._lock = threading.Lock()

    def fetch(self, key: str, problem: SCSP) -> Optional[SolverResult]:
        """The cached result rebound to ``problem``, or ``None``."""
        with self._lock:
            entry: Optional[_CacheEntry] = self._lru.get(key)
        if entry is None:
            return None
        return entry.result_for(problem)

    def store(self, key: str, result: SolverResult) -> None:
        entry = _CacheEntry.from_result(result)
        with self._lock:
            self._lru.put(key, entry)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return self._lru.stats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolveCache({self._lru!r})"
