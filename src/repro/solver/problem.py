"""Soft Constraint Satisfaction Problems: ``P = ⟨C, con⟩``.

A SCSP (paper Sec. 2) is a set of constraints ``C`` plus the variables of
interest ``con``.  Its *solution* is ``Sol(P) = (⊗C) ⇓ con`` and its *best
level of consistency* is ``blevel(P) = Sol(P) ⇓∅``; ``P`` is α-consistent
when ``blevel(P) = α`` and consistent when ``blevel(P) >S 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..constraints.constraint import SoftConstraint
from ..constraints.operations import combine
from ..constraints.variables import (
    Variable,
    merge_scopes,
    scope_names,
)
from ..semirings.base import Semiring


class ProblemError(Exception):
    """Raised on malformed SCSP definitions."""


class SCSP:
    """A Soft Constraint Satisfaction Problem ``⟨C, con⟩``.

    ``con`` defaults to *all* variables appearing in the constraints; pass
    an explicit subset to model interfaces (only those variables are kept
    by ``solution()``, like variable ``X``'s double circle in Fig. 1).
    """

    def __init__(
        self,
        constraints: Sequence[SoftConstraint],
        con: Optional[Iterable[str | Variable]] = None,
        name: str = "",
    ) -> None:
        constraints = list(constraints)
        if not constraints:
            raise ProblemError("an SCSP needs at least one constraint")
        semirings = {c.semiring for c in constraints}
        if len(semirings) != 1:
            names = sorted(s.name for s in semirings)
            raise ProblemError(
                f"all constraints must share one semiring, got {names}"
            )
        self.constraints: Tuple[SoftConstraint, ...] = tuple(constraints)
        self.semiring: Semiring = constraints[0].semiring
        self.variables: Tuple[Variable, ...] = merge_scopes(
            *(c.scope for c in constraints)
        )
        self.name = name

        if con is None:
            self.con: Tuple[str, ...] = scope_names(self.variables)
        else:
            requested = tuple(
                item.name if isinstance(item, Variable) else item
                for item in con
            )
            known = set(scope_names(self.variables))
            unknown = [n for n in requested if n not in known]
            if unknown:
                raise ProblemError(
                    f"con mentions unknown variables {unknown!r}"
                )
            self.con = requested

    # ------------------------------------------------------------------
    # Paper definitions
    # ------------------------------------------------------------------

    def combined(self) -> SoftConstraint:
        """``⊗C`` — the combination of every constraint."""
        return combine(self.constraints, semiring=self.semiring)

    def solution(self) -> SoftConstraint:
        """``Sol(P) = (⊗C) ⇓ con``."""
        return self.combined().project(self.con)

    def blevel(self) -> Any:
        """``blevel(P) = Sol(P) ⇓∅`` (equal to ``(⊗C) ⇓∅``)."""
        return self.combined().consistency()

    def is_alpha_consistent(self, alpha: Any) -> bool:
        """``P`` is α-consistent iff ``blevel(P) = α``."""
        return self.semiring.equiv(self.blevel(), alpha)

    def is_consistent(self) -> bool:
        """``P`` is consistent iff ``blevel(P) >S 0``."""
        return self.semiring.gt(self.blevel(), self.semiring.zero)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def variable_map(self) -> Dict[str, Variable]:
        return {var.name: var for var in self.variables}

    def constraints_on(self, name: str) -> List[SoftConstraint]:
        """Constraints whose support includes variable ``name``."""
        return [c for c in self.constraints if name in c.support]

    def evaluate(self, assignment: Mapping[str, Any]) -> Any:
        """Value of the complete ``assignment`` under ``⊗C``."""
        return self.semiring.prod(
            c.value(assignment) for c in self.constraints
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SCSP{label}({len(self.constraints)} constraints, "
            f"{len(self.variables)} variables, con={self.con!r}, "
            f"semiring={self.semiring.name})"
        )


@dataclass
class SolverStats:
    """Work counters reported by every solver backend."""

    nodes_expanded: int = 0
    leaves_evaluated: int = 0
    prunes: int = 0
    buckets_processed: int = 0
    largest_intermediate: int = 0
    incumbent_improvements: int = 0
    #: Buckets answered from a materialized eliminated-bucket memo
    #: (counted inside ``buckets_processed`` too — the schedule is the
    #: same, the combine/project work was skipped).
    buckets_reused: int = 0

    def merge(self, other: "SolverStats") -> "SolverStats":
        return SolverStats(
            nodes_expanded=self.nodes_expanded + other.nodes_expanded,
            leaves_evaluated=self.leaves_evaluated + other.leaves_evaluated,
            prunes=self.prunes + other.prunes,
            buckets_processed=self.buckets_processed
            + other.buckets_processed,
            largest_intermediate=max(
                self.largest_intermediate, other.largest_intermediate
            ),
            incumbent_improvements=self.incumbent_improvements
            + other.incumbent_improvements,
            buckets_reused=self.buckets_reused + other.buckets_reused,
        )


def record_solve_metrics(
    method: str, stats: SolverStats, seconds: float, backend: str = "dict"
) -> None:
    """Report one finished solve to the active telemetry registry.

    Called once per solve (never inside the search loop), so the search
    itself carries zero telemetry overhead; with telemetry disabled this
    is one attribute check.  ``backend`` records which representation the
    hot loop ran over (``dict`` tuple tables vs ``dense`` ndarray
    kernels).
    """
    from ..telemetry import get_registry

    registry = get_registry()
    if not registry.enabled:
        return
    labels = ("method",)
    registry.counter(
        "solver_solves_total", "Finished SCSP solves.", labels
    ).labels(method).inc()
    registry.counter(
        "solver_backend_solves_total",
        "Finished SCSP solves by backend representation.",
        labelnames=("method", "backend"),
    ).labels(method, backend).inc()
    registry.histogram(
        "solver_solve_seconds", "Wall time per SCSP solve.", labels
    ).labels(method).observe(seconds)
    for counter_name, help_text, amount in (
        (
            "solver_nodes_expanded_total",
            "Search-tree nodes expanded.",
            stats.nodes_expanded,
        ),
        (
            "solver_prunes_total",
            "Subtrees pruned by the bound.",
            stats.prunes,
        ),
        (
            "solver_leaves_evaluated_total",
            "Complete assignments evaluated.",
            stats.leaves_evaluated,
        ),
        (
            "solver_blevel_improvements_total",
            "Times the incumbent blevel improved.",
            stats.incumbent_improvements,
        ),
        (
            "solver_buckets_processed_total",
            "Bucket-elimination buckets processed.",
            stats.buckets_processed,
        ),
        (
            "solver_buckets_reused_total",
            "Buckets answered from the materialized-bucket memo.",
            stats.buckets_reused,
        ),
    ):
        # inc(0) still registers the sample, so snapshots always show the
        # full counter set even for searches that never pruned.
        registry.counter(counter_name, help_text, labels).labels(
            method
        ).inc(amount)
    if stats.largest_intermediate:
        registry.gauge(
            "solver_largest_intermediate",
            "Largest intermediate table (assignment-space size) seen.",
        ).set_max(stats.largest_intermediate)


@dataclass
class SolverResult:
    """Outcome of solving an SCSP.

    ``frontier`` holds the ≤S-maximal solution values (a singleton for
    totally ordered semirings — the blevel); ``optima`` holds, for each
    frontier value, the assignments of ``con`` achieving it.
    """

    problem: SCSP
    blevel: Any
    frontier: List[Any]
    optima: List[List[Dict[str, Any]]]
    method: str
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def best_assignment(self) -> Optional[Dict[str, Any]]:
        """One optimal assignment (first frontier class), if any exists."""
        for group in self.optima:
            if group:
                return group[0]
        return None

    @property
    def is_consistent(self) -> bool:
        semiring = self.problem.semiring
        return semiring.gt(self.blevel, semiring.zero)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverResult(method={self.method!r}, blevel={self.blevel!r}, "
            f"{sum(len(g) for g in self.optima)} optimal assignment(s))"
        )
