"""Vectorized dense-factor kernels for totally ordered c-semirings.

The dict-of-tuples :class:`~repro.constraints.table.TableConstraint` pays
one virtual ``semiring.times`` call per assignment tuple.  For the four
classical totally ordered instances both semiring operations are NumPy
ufuncs, so a constraint can be *lowered* to an ndarray with one axis per
scope variable and the paper's two operators become broadcast array ops:

* ``⊗`` (:meth:`DenseFactor.combine`) — align scopes by broadcasting and
  apply the times-ufunc elementwise;
* ``⇓`` (:meth:`DenseFactor.project` / :meth:`DenseFactor.hide`) —
  ``plus_ufunc.reduce`` over the eliminated axes.

This is the standard lowering used by factor-graph and bucket-elimination
engines (cf. Dechter's bucket elimination); distributivity of ``×`` over
``+`` is what makes the axis-reduction exact.  The lowering table:

==============  =======  ==============  ==============
semiring        dtype    ``+`` (plus)    ``×`` (times)
==============  =======  ==============  ==============
Weighted        float64  ``minimum``     ``add``
Fuzzy           float64  ``maximum``     ``minimum``
Probabilistic   float64  ``maximum``     ``multiply``
Classical       bool     ``logical_or``  ``logical_and``
==============  =======  ==============  ==============

Composite semirings (:class:`~repro.semirings.product.ProductSemiring`,
:class:`~repro.semirings.product.LexicographicSemiring`) lower
*compositionally* whenever every component does: a tuple-valued factor
becomes one NumPy structured array whose dtype mirrors the component
tree (nested composites nest their dtypes), i.e. stacked per-component
value planes sharing a single index grid.  ``×`` applies each
component's times-ufunc to its plane; the Pareto ``+`` of a product
applies each component's plus-ufunc (the componentwise lub); the
lexicographic ``+`` selects whole tuples with a vectorized
first-strictly-better mask.  Because every plane holds exactly the
float64/bool values the dict path holds and ``ndarray.tolist`` on a
structured array yields the same nested Python tuples, composite dense
results are bit-identical to the dict path — so batched elimination and
the bucket cache work unchanged on composite values.

Set-based and bounded-weighted semirings still do not lower (``×`` is
not a plain ufunc): :func:`lower_semiring` returns ``None`` and callers
fall back to the dict path (counted by
``solver_lowering_fallback_total{semiring}``).  All lowered operations
are bit-identical to their pure-Python counterparts — ``min``/``max``
select an operand, and float64 ``add``/``multiply`` are the same
IEEE-754 operations CPython floats use — which is what lets the solvers
switch backends without changing any result.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..caching import LRUCache, register_stats_provider
from ..constraints.table import TableConstraint, to_table
from ..constraints.constraint import SoftConstraint
from ..constraints.variables import Variable, merge_scopes, scope_names
from ..semirings.base import Semiring
from ..semirings.boolean import BooleanSemiring
from ..semirings.fuzzy import FuzzySemiring
from ..semirings.probabilistic import ProbabilisticSemiring
from ..semirings.product import LexicographicSemiring, ProductSemiring
from ..semirings.weighted import WeightedSemiring


class KernelError(Exception):
    """Raised when a semiring cannot be lowered but dense was requested."""


@dataclass(frozen=True)
class Lowering:
    """How one semiring maps onto NumPy: dtype plus the two operations.

    ``plus``/``times`` are either true ufuncs (the four base semirings)
    or the componentwise/lexicographic wrapper ops of a composite
    lowering; both expose the ufunc calling convention the factors use —
    ``op(a, b, out=None)`` and ``op.reduce(array, axis=...)`` — so every
    factor operation is agnostic to which it holds.  ``unlift`` converts
    an array scalar back into the carrier's native Python type
    (``float``/``bool``, or a nested tuple for composites) so tables
    round-tripped through a :class:`DenseFactor` compare equal to
    dict-path tables.
    """

    semiring: Semiring
    dtype: Any
    plus: Any
    times: Any
    unlift: Callable[[Any], Any]


#: semiring type → (dtype, plus ufunc, times ufunc, unlift)
_LOWERING_TABLE = {
    WeightedSemiring: (np.float64, np.minimum, np.add, float),
    FuzzySemiring: (np.float64, np.maximum, np.minimum, float),
    ProbabilisticSemiring: (np.float64, np.maximum, np.multiply, float),
    BooleanSemiring: (np.bool_, np.logical_or, np.logical_and, bool),
}

#: semiring type → elementwise "strictly better" predicate on raw planes.
#: Weighted is min-cost (numerically smaller is semiring-greater); the
#: other three are max-oriented.  Exact comparisons, matching the exact
#: tie rule of :meth:`LexicographicSemiring.plus`.
_STRICT_GT_TABLE = {
    WeightedSemiring: np.less,
    FuzzySemiring: np.greater,
    ProbabilisticSemiring: np.greater,
    BooleanSemiring: np.greater,
}


def _unlift_composite(value: Any) -> tuple:
    """A structured array scalar (``np.void``) → the nested Python tuple
    of native floats/bools the dict path carries."""
    return value.item()


def _select_into(
    out: np.ndarray, mask: np.ndarray, a: np.ndarray, b: np.ndarray
) -> None:
    """``out = where(mask, b, a)`` for structured arrays, leaf plane by
    leaf plane (``np.where`` does not accept structured operands)."""
    names = out.dtype.names
    if names is None:
        out[...] = np.where(mask, b, a)
        return
    for name in names:
        _select_into(out[name], mask, a[name], b[name])


class _ComponentwiseOp:
    """A composite ufunc-alike: apply one sub-op per dtype field.

    Implements the slice of the ufunc protocol the factors use —
    ``op(a, b, out=None)`` with broadcasting, and ``op.reduce(array,
    axis=...)``.  Sub-ops are themselves ufuncs or composite ops, so
    nested products compose transparently.  Every field op is a
    selection or the exact IEEE-754 base op, so both directions are
    bit-identical to the dict path's componentwise fold.
    """

    __slots__ = ("dtype", "fields", "ops")

    def __init__(
        self, dtype: np.dtype, fields: Tuple[str, ...], ops: Tuple[Any, ...]
    ) -> None:
        self.dtype = dtype
        self.fields = fields
        self.ops = ops

    def __call__(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None:
            shape = np.broadcast_shapes(a.shape, b.shape)
            out = np.empty(shape, dtype=self.dtype)
        for field, op in zip(self.fields, self.ops):
            op(a[field], b[field], out=out[field])
        return out

    def reduce(self, array: np.ndarray, axis: Any) -> np.ndarray:
        axes = axis if isinstance(axis, tuple) else (axis,)
        shape = tuple(
            size
            for index, size in enumerate(array.shape)
            if index not in axes
        )
        out = np.empty(shape, dtype=self.dtype)
        for field, op in zip(self.fields, self.ops):
            out[field] = op.reduce(array[field], axis=axis)
        return out


class _FieldGreater:
    """Strictly-better predicate of a 1-component composite: defer to the
    single field's predicate."""

    __slots__ = ("field", "gt")

    def __init__(self, field: str, gt: Any) -> None:
        self.field = field
        self.gt = gt

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.gt(a[self.field], b[self.field])


class _LexGreater:
    """Vectorized ``a >lex b`` over structured tuples: the first field
    with a strict order decides; exact equality passes the decision on."""

    __slots__ = ("fields", "gts")

    def __init__(self, fields: Tuple[str, ...], gts: Tuple[Any, ...]) -> None:
        self.fields = fields
        self.gts = gts

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        better: Optional[np.ndarray] = None
        tied: Optional[np.ndarray] = None
        for field, gt in zip(self.fields, self.gts):
            forward = gt(a[field], b[field])
            backward = gt(b[field], a[field])
            if better is None:
                better = forward
                tied = ~(forward | backward)
            else:
                better = better | (tied & forward)
                tied = tied & ~(forward | backward)
        return better


class _LexPlus:
    """Lexicographic ``+``: select the lex-better whole tuple elementwise.

    ``reduce`` folds the collapsed axes pairwise; lex selection is
    associative, commutative and idempotent with *exact* ties, so the
    fold order cannot change which tuple survives — bit-identity with
    the dict path's sequential ``semiring.sum`` follows.
    """

    __slots__ = ("dtype", "greater")

    def __init__(self, dtype: np.dtype, greater: _LexGreater) -> None:
        self.dtype = dtype
        self.greater = greater

    def __call__(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        take_b = self.greater(b, a)
        if out is None:
            shape = np.broadcast_shapes(a.shape, b.shape)
            out = np.empty(shape, dtype=self.dtype)
        # The mask is materialized before any write, and each leaf's
        # np.where materializes before assignment, so ``out`` may alias
        # ``a`` (the reduce accumulator does exactly that).
        _select_into(out, take_b, a, b)
        return out

    def reduce(self, array: np.ndarray, axis: Any) -> np.ndarray:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(index % array.ndim for index in axes)
        keep = [
            index for index in range(array.ndim) if index not in axes
        ]
        moved = np.transpose(array, keep + sorted(axes))
        kept_shape = tuple(array.shape[index] for index in keep)
        moved = moved.reshape(kept_shape + (-1,))
        acc = np.copy(moved[..., 0])
        for position in range(1, moved.shape[-1]):
            self(acc, moved[..., position], out=acc)
        return acc


def _strict_greater(semiring: Semiring) -> Optional[Any]:
    """The elementwise strictly-better predicate of a totally ordered
    lowerable semiring (``None`` when there is none)."""
    entry = _STRICT_GT_TABLE.get(type(semiring))
    if entry is not None:
        return entry
    if isinstance(semiring, LexicographicSemiring):
        gts = tuple(
            _strict_greater(component) for component in semiring.components
        )
        if any(gt is None for gt in gts):
            return None
        fields = tuple(f"f{index}" for index in range(len(gts)))
        return _LexGreater(fields, gts)
    if isinstance(semiring, ProductSemiring) and semiring.arity == 1:
        inner = _strict_greater(semiring.components[0])
        if inner is None:
            return None
        return _FieldGreater("f0", inner)
    return None


def _lower_composite(
    semiring: "ProductSemiring | LexicographicSemiring",
) -> Optional[Lowering]:
    """Build the structured-dtype lowering of a composite semiring, or
    ``None`` when any component fails to lower."""
    subs: List[Lowering] = []
    for component in semiring.components:
        sub = lower_semiring(component)
        if sub is None:
            return None
        subs.append(sub)
    fields = tuple(f"f{index}" for index in range(len(subs)))
    dtype = np.dtype(
        [(field, np.dtype(sub.dtype)) for field, sub in zip(fields, subs)]
    )
    times = _ComponentwiseOp(
        dtype, fields, tuple(sub.times for sub in subs)
    )
    if isinstance(semiring, LexicographicSemiring):
        greater = _strict_greater(semiring)
        if greater is None:  # pragma: no cover - components all lowered
            return None
        plus: Any = _LexPlus(dtype, greater)
    else:
        # Pareto join: the product's + is the componentwise lub.
        plus = _ComponentwiseOp(
            dtype, fields, tuple(sub.plus for sub in subs)
        )
    return Lowering(
        semiring=semiring,
        dtype=dtype,
        plus=plus,
        times=times,
        unlift=_unlift_composite,
    )


#: Bounded memo of per-semiring lowerings.  This used to be an unbounded
#: ``functools.lru_cache``; a workload cycling through many distinct
#: semiring *instances* (e.g. parametrized BoundedWeighted thresholds)
#: would grow it without limit, and its traffic was invisible to
#: :func:`repro.caching.cache_stats`.  A shared :class:`LRUCache` caps it
#: and reports hits/misses alongside every other memo in the tree.
_LOWERING_CACHE_SIZE = 256
_lowering_cache = LRUCache(
    _LOWERING_CACHE_SIZE, name="lowering", threadsafe=True
)
_LOWERING_MISSING = object()


def lower_semiring(semiring: Semiring) -> Optional[Lowering]:
    """The :class:`Lowering` of ``semiring``, or ``None`` when it has no
    ufunc pair (Set-based, bounded-weighted saturation, composites with
    an unlowerable component)."""
    lowering = _lowering_cache.get(semiring, _LOWERING_MISSING)
    if lowering is not _LOWERING_MISSING:
        return lowering
    entry = _LOWERING_TABLE.get(type(semiring))
    if entry is not None:
        dtype, plus, times, unlift = entry
        lowering = Lowering(
            semiring=semiring,
            dtype=dtype,
            plus=plus,
            times=times,
            unlift=unlift,
        )
    elif isinstance(semiring, (ProductSemiring, LexicographicSemiring)):
        lowering = _lower_composite(semiring)
    else:
        lowering = None
    _lowering_cache.put(semiring, lowering)
    return lowering


#: Dict-path fallbacks under backend="auto", tallied per semiring name —
#: the silent degradation satellite: operators can see *why* the dense
#: kernels did not engage via telemetry
#: (``solver_lowering_fallback_total{semiring}``) and
#: :func:`repro.caching.cache_stats` (name ``"lowering-fallbacks"``).
_fallback_lock = threading.Lock()
_lowering_fallbacks: Dict[str, int] = {}


def _count_fallback(semiring: Semiring) -> None:
    from ..telemetry.runtime import get_registry

    name = semiring.name
    with _fallback_lock:
        _lowering_fallbacks[name] = _lowering_fallbacks.get(name, 0) + 1
    get_registry().counter(
        "solver_lowering_fallback_total",
        "Auto-backend solves that silently fell back to the dict path "
        "because the semiring does not lower.",
        labelnames=("semiring",),
    ).labels(name).inc()


def lowering_fallback_stats() -> List[Dict[str, Any]]:
    """One ``{"semiring", "fallbacks"}`` row per semiring that has taken
    the silent dict fallback in this process."""
    with _fallback_lock:
        return [
            {"semiring": name, "fallbacks": count}
            for name, count in sorted(_lowering_fallbacks.items())
        ]


register_stats_provider("lowering-fallbacks", lowering_fallback_stats)


def resolve_lowering(
    semiring: Semiring, backend: str = "auto"
) -> Optional[Lowering]:
    """Map a ``--solver-backend`` choice onto a lowering (or ``None``).

    ``"dict"`` always returns ``None``; ``"dense"`` raises
    :class:`KernelError` when the semiring does not lower; ``"auto"``
    lowers opportunistically — and counts the silent dict fallback under
    ``solver_lowering_fallback_total{semiring}`` when it cannot.
    """
    if backend not in ("auto", "dict", "dense"):
        raise KernelError(
            f"unknown solver backend {backend!r}; known: auto, dict, dense"
        )
    if backend == "dict":
        return None
    lowering = lower_semiring(semiring)
    if lowering is None:
        if backend == "dense":
            raise KernelError(
                f"semiring {semiring.name} does not lower to dense kernels "
                "(no ufunc pair); use the dict backend"
            )
        _count_fallback(semiring)
    return lowering


class DenseFactor:
    """A soft constraint as an ndarray indexed by per-variable domain axes.

    ``array.shape == tuple(var.size for var in scope)``; axis ``i`` of the
    array enumerates ``scope[i].domain`` in domain order.  Factors are
    immutable: every operation returns a new factor and never writes into
    an existing array (which is what makes the per-table conversion memo
    safe to share).
    """

    __slots__ = ("semiring", "lowering", "scope", "array")

    def __init__(
        self,
        lowering: Lowering,
        scope: Sequence[Variable],
        array: np.ndarray,
    ) -> None:
        self.lowering = lowering
        self.semiring = lowering.semiring
        self.scope: Tuple[Variable, ...] = tuple(scope)
        self.array = array

    # ------------------------------------------------------------------
    # Converters
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls, table: TableConstraint, lowering: Lowering
    ) -> "DenseFactor":
        """Lower an extensional table: default-filled array plus the
        explicit tuples scattered in."""
        scope = table.scope
        shape = tuple(var.size for var in scope)
        default = table.default
        if np.dtype(lowering.dtype).names is not None:
            # A composite default is a (nested) tuple; np.full needs it
            # pre-packed as a 0-d structured scalar to broadcast it.
            default = np.array(default, dtype=lowering.dtype)
        array = np.full(shape, default, dtype=lowering.dtype)
        if table.table:
            indices = [
                {value: i for i, value in enumerate(var.domain)}
                for var in scope
            ]
            for key, value in table.table.items():
                idx = tuple(
                    index[part] for index, part in zip(indices, key)
                )
                array[idx] = value
        return cls(lowering, scope, array)

    @classmethod
    def from_constraint(
        cls, constraint: SoftConstraint, lowering: Lowering
    ) -> "DenseFactor":
        """Lower any constraint, memoizing the conversion on the
        materialized table so repeated solves over the same constraint
        objects (the broker/runtime hot path) lower exactly once."""
        if isinstance(constraint, DenseFactor):  # pragma: no cover - guard
            return constraint
        table = to_table(constraint)
        memo = getattr(table, "_dense_memo", None)
        if memo is not None and memo.lowering is lowering:
            return memo
        factor = cls.from_table(table, lowering)
        table._dense_memo = factor
        return factor

    def to_table(self, name: str = "") -> TableConstraint:
        """Raise back to an extensionally equal :class:`TableConstraint`.

        Every tuple is emitted explicitly (like
        :func:`~repro.constraints.table.to_table`), in row-major order —
        the same order ``iter_assignments`` enumerates — so downstream
        consumers observe identical iteration order on both backends.
        """
        # ``tolist`` bulk-converts to the carrier's native Python type in
        # C — exactly what ``unlift`` (float/bool) does per element, and
        # bit-exact for IEEE-754 doubles.
        values = self.array.reshape(-1).tolist()
        table: dict[Tuple[Any, ...], Any] = dict(
            zip(_iter_keys(self.scope), values)
        )
        return TableConstraint._from_solver(
            self.semiring,
            self.scope,
            table,
            default=self.semiring.zero,
            name=name,
        )

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------

    @property
    def support(self) -> Tuple[str, ...]:
        return scope_names(self.scope)

    def _aligned(self, scope: Tuple[Variable, ...]) -> np.ndarray:
        """A view of the array broadcastable over ``scope`` (a superset
        of this factor's scope, in any order)."""
        position = {var.name: i for i, var in enumerate(scope)}
        mine = set(self.support)
        order = sorted(
            range(len(self.scope)),
            key=lambda axis: position[self.scope[axis].name],
        )
        array = self.array
        if order != list(range(len(self.scope))):
            array = array.transpose(order)
        shape = tuple(
            var.size if var.name in mine else 1 for var in scope
        )
        return array.reshape(shape)

    # ------------------------------------------------------------------
    # The paper's two operators, vectorized
    # ------------------------------------------------------------------

    def combine(self, other: "DenseFactor") -> "DenseFactor":
        """``c1 ⊗ c2`` — broadcast both arrays over the merged scope and
        apply the times-ufunc elementwise."""
        scope = merge_scopes(self.scope, other.scope)
        array = self.lowering.times(
            self._aligned(scope), other._aligned(scope)
        )
        return DenseFactor(self.lowering, scope, array)

    def project(self, keep: Iterable[str | Variable]) -> "DenseFactor":
        """``c ⇓ keep`` — plus-ufunc reduction over the eliminated axes.

        Names in ``keep`` that are not in scope are ignored, mirroring
        :meth:`SoftConstraint.project`.
        """
        keep_names = {
            item.name if isinstance(item, Variable) else item
            for item in keep
        }
        axes = tuple(
            i
            for i, var in enumerate(self.scope)
            if var.name not in keep_names
        )
        if not axes:
            return self
        kept = tuple(
            var for var in self.scope if var.name in keep_names
        )
        array = self.lowering.plus.reduce(self.array, axis=axes)
        return DenseFactor(self.lowering, kept, array)

    def hide(self, *names: str | Variable) -> "DenseFactor":
        """``∃x.c`` — project the named variables *out*."""
        hidden = {
            item.name if isinstance(item, Variable) else item
            for item in names
        }
        return self.project(
            [var for var in self.scope if var.name not in hidden]
        )

    def consistency(self) -> Any:
        """``c ⇓∅`` — plus-reduce every axis down to one scalar."""
        array = self.array
        if array.ndim:
            array = self.lowering.plus.reduce(
                array, axis=tuple(range(array.ndim))
            )
        return self.lowering.unlift(array[()])

    def value(self, assignment: dict) -> Any:
        """Point lookup (used by tests; solvers index the array directly)."""
        idx = tuple(
            var.domain.index(assignment[var.name]) for var in self.scope
        )
        return self.lowering.unlift(self.array[idx])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DenseFactor(scope={self.support!r}, shape={self.array.shape}, "
            f"semiring={self.semiring.name})"
        )


class BatchDenseFactor:
    """B problem instances' factors over one shared scope, stacked on a
    leading batch axis.

    ``array.shape == (b, *dims)`` where ``dims`` follows the
    :class:`DenseFactor` axis convention and ``b`` is either the logical
    batch size ``batch`` or ``1`` — a length-1 leading axis marks a
    factor *shared* by every instance (e.g. one provider's offer solved
    against B different requirements) and broadcasts lazily, so stacking
    B references to one table costs no copies.  ``combine``/``project``/
    ``hide`` are the per-instance operations broadcast across the batch
    axis: every slice ``array[b]`` evolves exactly as the corresponding
    standalone :class:`DenseFactor` would, which is what makes batched
    solves bit-identical to B independent ones.
    """

    __slots__ = ("semiring", "lowering", "scope", "array", "batch")

    def __init__(
        self,
        lowering: Lowering,
        scope: Sequence[Variable],
        array: np.ndarray,
        batch: Optional[int] = None,
    ) -> None:
        self.lowering = lowering
        self.semiring = lowering.semiring
        self.scope: Tuple[Variable, ...] = tuple(scope)
        self.array = array
        self.batch = array.shape[0] if batch is None else batch
        if array.shape[0] not in (1, self.batch):
            raise KernelError(
                f"batch axis is {array.shape[0]}, expected 1 or "
                f"{self.batch}"
            )

    @property
    def support(self) -> Tuple[str, ...]:
        return scope_names(self.scope)

    def _aligned(self, scope: Tuple[Variable, ...]) -> np.ndarray:
        """A view broadcastable over ``(batch, *scope dims)`` — the
        :meth:`DenseFactor._aligned` permutation with the batch axis
        pinned in front."""
        position = {var.name: i for i, var in enumerate(scope)}
        mine = set(self.support)
        order = sorted(
            range(len(self.scope)),
            key=lambda axis: position[self.scope[axis].name],
        )
        array = self.array
        if order != list(range(len(self.scope))):
            array = array.transpose([0] + [axis + 1 for axis in order])
        shape = (array.shape[0],) + tuple(
            var.size if var.name in mine else 1 for var in scope
        )
        return array.reshape(shape)

    def combine(self, other: "BatchDenseFactor") -> "BatchDenseFactor":
        """``c1 ⊗ c2`` on every instance at once."""
        if self.batch != other.batch and 1 not in (self.batch, other.batch):
            raise KernelError(
                f"cannot combine batches of size {self.batch} and "
                f"{other.batch}"
            )
        scope = merge_scopes(self.scope, other.scope)
        array = self.lowering.times(
            self._aligned(scope), other._aligned(scope)
        )
        return BatchDenseFactor(
            self.lowering, scope, array, batch=max(self.batch, other.batch)
        )

    def project(self, keep: Iterable[str | Variable]) -> "BatchDenseFactor":
        """``c ⇓ keep`` on every instance — one axis-reduction per
        eliminated variable, batch axis untouched.  The plus-ufuncs of
        all four lowered semirings are selections (min/max/or), so the
        reduction is exact regardless of traversal order."""
        keep_names = {
            item.name if isinstance(item, Variable) else item
            for item in keep
        }
        axes = tuple(
            i + 1
            for i, var in enumerate(self.scope)
            if var.name not in keep_names
        )
        if not axes:
            return self
        kept = tuple(
            var for var in self.scope if var.name in keep_names
        )
        array = self.lowering.plus.reduce(self.array, axis=axes)
        return BatchDenseFactor(self.lowering, kept, array, batch=self.batch)

    def hide(self, *names: str | Variable) -> "BatchDenseFactor":
        """``∃x.c`` — project the named variables *out* of every slice."""
        hidden = {
            item.name if isinstance(item, Variable) else item
            for item in names
        }
        return self.project(
            [var for var in self.scope if var.name not in hidden]
        )

    def consistency(self) -> List[Any]:
        """``c ⇓∅`` per instance — one value per batch member."""
        array = self.array
        if array.ndim > 1:
            array = self.lowering.plus.reduce(
                array, axis=tuple(range(1, array.ndim))
            )
        if array.shape[0] != self.batch:
            array = np.broadcast_to(array, (self.batch,))
        unlift = self.lowering.unlift
        return [unlift(value) for value in array]

    def member(self, index: int) -> DenseFactor:
        """Instance ``index`` as a standalone :class:`DenseFactor`."""
        if not 0 <= index < self.batch:
            raise KernelError(
                f"batch index {index} out of range for batch {self.batch}"
            )
        slice_index = 0 if self.array.shape[0] == 1 else index
        return DenseFactor(self.lowering, self.scope, self.array[slice_index])

    def split(self) -> List[DenseFactor]:
        """All instances, in batch order."""
        return [self.member(index) for index in range(self.batch)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchDenseFactor(batch={self.batch}, scope={self.support!r}, "
            f"shape={self.array.shape}, semiring={self.semiring.name})"
        )


def stack_factors(factors: Sequence[DenseFactor]) -> BatchDenseFactor:
    """Stack B same-support factors into one :class:`BatchDenseFactor`.

    Factors may list their scope variables in different orders; every
    array is aligned to the first factor's axis order before stacking.
    When the sequence is B references to one factor *object* the stack
    is stored as a length-1 leading axis (a broadcast view, no copy).
    """
    if not factors:
        raise KernelError("stack_factors needs at least one factor")
    head = factors[0]
    if all(factor is head for factor in factors[1:]):
        return BatchDenseFactor(
            head.lowering,
            head.scope,
            head.array[np.newaxis, ...],
            batch=len(factors),
        )
    support = set(head.support)
    for factor in factors[1:]:
        if set(factor.support) != support:
            raise KernelError(
                f"cannot stack factors over different scopes: "
                f"{sorted(support)} vs {sorted(factor.support)}"
            )
        if factor.lowering is not head.lowering:
            raise KernelError(
                "cannot stack factors lowered under different semirings"
            )
    array = np.stack([factor._aligned(head.scope) for factor in factors])
    return BatchDenseFactor(head.lowering, head.scope, array)


def split_results(batch: BatchDenseFactor) -> List[DenseFactor]:
    """The inverse of :func:`stack_factors` (post-solve): one
    :class:`DenseFactor` per batch member, in submission order."""
    return batch.split()


def combine_factors(
    factors: "Sequence[DenseFactor | BatchDenseFactor]",
) -> "DenseFactor | BatchDenseFactor":
    """``⊗`` over a non-empty sequence in one ufunc chain.

    The fold is left-to-right — the same association order as
    :func:`repro.constraints.operations.combine`, so non-idempotent
    ``×`` (Weighted's float add) rounds identically on both backends —
    but all scopes are merged *up front* and every step writes into one
    preallocated full-scope array (``out=``) instead of materializing a
    progressively wider broadcast intermediate per factor: peak memory
    in a wide bucket is one full-scope array, not two.  Elementwise the
    accumulator holds exactly the pairwise fold's values (earlier steps
    are merely replicated across axes later factors introduce), so the
    result is bit-identical to the old pairwise materialization.
    """
    if not factors:
        raise KernelError("combine_factors needs at least one factor")
    if len(factors) == 1:
        return factors[0]
    head = factors[0]
    lowering = head.lowering
    times = lowering.times
    scope = merge_scopes(*(factor.scope for factor in factors))
    dims = tuple(var.size for var in scope)
    views = [factor._aligned(scope) for factor in factors]
    batched = [
        factor for factor in factors if isinstance(factor, BatchDenseFactor)
    ]
    if batched:
        batch = max(factor.batch for factor in batched)
        lead = max(
            view.shape[0]
            for factor, view in zip(factors, views)
            if isinstance(factor, BatchDenseFactor)
        )
        out = np.empty((lead, *dims), dtype=lowering.dtype)
        times(views[0], views[1], out=out)
        for view in views[2:]:
            times(out, view, out=out)
        return BatchDenseFactor(lowering, scope, out, batch=batch)
    out = np.empty(dims, dtype=lowering.dtype)
    times(views[0], views[1], out=out)
    for view in views[2:]:
        times(out, view, out=out)
    return DenseFactor(lowering, scope, out)


def best_over_variable(
    constraint: SoftConstraint, pending: Variable, lowering: Lowering
) -> TableConstraint:
    """``c ⇓ (scope ∖ {pending})`` as an O(1)-lookup table.

    The branch & bound lookahead needs, per partially assigned
    constraint, its best value over the single unassigned variable; one
    plus-ufunc reduction precomputes that for every context at once.
    """
    factor = DenseFactor.from_constraint(constraint, lowering)
    return factor.hide(pending.name).to_table()


def _iter_keys(scope: Tuple[Variable, ...]):
    """Row-major tuples over the scope's domains (last variable fastest) —
    the same order ``iter_assignments`` walks and ndarrays flatten to."""
    return itertools.product(*(var.domain for var in scope))
