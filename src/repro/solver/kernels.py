"""Vectorized dense-factor kernels for totally ordered c-semirings.

The dict-of-tuples :class:`~repro.constraints.table.TableConstraint` pays
one virtual ``semiring.times`` call per assignment tuple.  For the four
classical totally ordered instances both semiring operations are NumPy
ufuncs, so a constraint can be *lowered* to an ndarray with one axis per
scope variable and the paper's two operators become broadcast array ops:

* ``⊗`` (:meth:`DenseFactor.combine`) — align scopes by broadcasting and
  apply the times-ufunc elementwise;
* ``⇓`` (:meth:`DenseFactor.project` / :meth:`DenseFactor.hide`) —
  ``plus_ufunc.reduce`` over the eliminated axes.

This is the standard lowering used by factor-graph and bucket-elimination
engines (cf. Dechter's bucket elimination); distributivity of ``×`` over
``+`` is what makes the axis-reduction exact.  The lowering table:

==============  =======  ==============  ==============
semiring        dtype    ``+`` (plus)    ``×`` (times)
==============  =======  ==============  ==============
Weighted        float64  ``minimum``     ``add``
Fuzzy           float64  ``maximum``     ``minimum``
Probabilistic   float64  ``maximum``     ``multiply``
Classical       bool     ``logical_or``  ``logical_and``
==============  =======  ==============  ==============

Set-based, product and bounded-weighted semirings do not lower (their
``×`` is not a plain ufunc, or their order is partial):
:func:`lower_semiring` returns ``None`` and callers fall back to the
dict path.  All four lowered operations are bit-identical to their
pure-Python counterparts — ``min``/``max`` select an operand, and
float64 ``add``/``multiply`` are the same IEEE-754 operations CPython
floats use — which is what lets the solvers switch backends without
changing any result.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..constraints.table import TableConstraint, to_table
from ..constraints.constraint import SoftConstraint
from ..constraints.variables import Variable, merge_scopes, scope_names
from ..semirings.base import Semiring
from ..semirings.boolean import BooleanSemiring
from ..semirings.fuzzy import FuzzySemiring
from ..semirings.probabilistic import ProbabilisticSemiring
from ..semirings.weighted import WeightedSemiring


class KernelError(Exception):
    """Raised when a semiring cannot be lowered but dense was requested."""


@dataclass(frozen=True)
class Lowering:
    """How one semiring maps onto NumPy: dtype plus the two ufuncs.

    ``unlift`` converts an array scalar back into the carrier's native
    Python type (``float``/``bool``) so tables round-tripped through a
    :class:`DenseFactor` compare equal to dict-path tables.
    """

    semiring: Semiring
    dtype: Any
    plus: np.ufunc
    times: np.ufunc
    unlift: Callable[[Any], Any]


#: semiring type → (dtype, plus ufunc, times ufunc, unlift)
_LOWERING_TABLE = {
    WeightedSemiring: (np.float64, np.minimum, np.add, float),
    FuzzySemiring: (np.float64, np.maximum, np.minimum, float),
    ProbabilisticSemiring: (np.float64, np.maximum, np.multiply, float),
    BooleanSemiring: (np.bool_, np.logical_or, np.logical_and, bool),
}


@lru_cache(maxsize=None)
def lower_semiring(semiring: Semiring) -> Optional[Lowering]:
    """The :class:`Lowering` of ``semiring``, or ``None`` when it has no
    ufunc pair (Set-based, products, bounded-weighted saturation)."""
    entry = _LOWERING_TABLE.get(type(semiring))
    if entry is None:
        return None
    dtype, plus, times, unlift = entry
    return Lowering(
        semiring=semiring, dtype=dtype, plus=plus, times=times, unlift=unlift
    )


def resolve_lowering(
    semiring: Semiring, backend: str = "auto"
) -> Optional[Lowering]:
    """Map a ``--solver-backend`` choice onto a lowering (or ``None``).

    ``"dict"`` always returns ``None``; ``"dense"`` raises
    :class:`KernelError` when the semiring does not lower; ``"auto"``
    lowers opportunistically.
    """
    if backend not in ("auto", "dict", "dense"):
        raise KernelError(
            f"unknown solver backend {backend!r}; known: auto, dict, dense"
        )
    if backend == "dict":
        return None
    lowering = lower_semiring(semiring)
    if lowering is None and backend == "dense":
        raise KernelError(
            f"semiring {semiring.name} does not lower to dense kernels "
            "(no ufunc pair); use the dict backend"
        )
    return lowering


class DenseFactor:
    """A soft constraint as an ndarray indexed by per-variable domain axes.

    ``array.shape == tuple(var.size for var in scope)``; axis ``i`` of the
    array enumerates ``scope[i].domain`` in domain order.  Factors are
    immutable: every operation returns a new factor and never writes into
    an existing array (which is what makes the per-table conversion memo
    safe to share).
    """

    __slots__ = ("semiring", "lowering", "scope", "array")

    def __init__(
        self,
        lowering: Lowering,
        scope: Sequence[Variable],
        array: np.ndarray,
    ) -> None:
        self.lowering = lowering
        self.semiring = lowering.semiring
        self.scope: Tuple[Variable, ...] = tuple(scope)
        self.array = array

    # ------------------------------------------------------------------
    # Converters
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls, table: TableConstraint, lowering: Lowering
    ) -> "DenseFactor":
        """Lower an extensional table: default-filled array plus the
        explicit tuples scattered in."""
        scope = table.scope
        shape = tuple(var.size for var in scope)
        array = np.full(shape, table.default, dtype=lowering.dtype)
        if table.table:
            indices = [
                {value: i for i, value in enumerate(var.domain)}
                for var in scope
            ]
            for key, value in table.table.items():
                idx = tuple(
                    index[part] for index, part in zip(indices, key)
                )
                array[idx] = value
        return cls(lowering, scope, array)

    @classmethod
    def from_constraint(
        cls, constraint: SoftConstraint, lowering: Lowering
    ) -> "DenseFactor":
        """Lower any constraint, memoizing the conversion on the
        materialized table so repeated solves over the same constraint
        objects (the broker/runtime hot path) lower exactly once."""
        if isinstance(constraint, DenseFactor):  # pragma: no cover - guard
            return constraint
        table = to_table(constraint)
        memo = getattr(table, "_dense_memo", None)
        if memo is not None and memo.lowering is lowering:
            return memo
        factor = cls.from_table(table, lowering)
        table._dense_memo = factor
        return factor

    def to_table(self, name: str = "") -> TableConstraint:
        """Raise back to an extensionally equal :class:`TableConstraint`.

        Every tuple is emitted explicitly (like
        :func:`~repro.constraints.table.to_table`), in row-major order —
        the same order ``iter_assignments`` enumerates — so downstream
        consumers observe identical iteration order on both backends.
        """
        unlift = self.lowering.unlift
        flat = self.array.reshape(-1)
        table: dict[Tuple[Any, ...], Any] = {}
        for position, key in enumerate(_iter_keys(self.scope)):
            table[key] = unlift(flat[position])
        return TableConstraint(
            self.semiring,
            self.scope,
            table,
            default=self.semiring.zero,
            name=name,
        )

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------

    @property
    def support(self) -> Tuple[str, ...]:
        return scope_names(self.scope)

    def _aligned(self, scope: Tuple[Variable, ...]) -> np.ndarray:
        """A view of the array broadcastable over ``scope`` (a superset
        of this factor's scope, in any order)."""
        position = {var.name: i for i, var in enumerate(scope)}
        mine = set(self.support)
        order = sorted(
            range(len(self.scope)),
            key=lambda axis: position[self.scope[axis].name],
        )
        array = self.array
        if order != list(range(len(self.scope))):
            array = array.transpose(order)
        shape = tuple(
            var.size if var.name in mine else 1 for var in scope
        )
        return array.reshape(shape)

    # ------------------------------------------------------------------
    # The paper's two operators, vectorized
    # ------------------------------------------------------------------

    def combine(self, other: "DenseFactor") -> "DenseFactor":
        """``c1 ⊗ c2`` — broadcast both arrays over the merged scope and
        apply the times-ufunc elementwise."""
        scope = merge_scopes(self.scope, other.scope)
        array = self.lowering.times(
            self._aligned(scope), other._aligned(scope)
        )
        return DenseFactor(self.lowering, scope, array)

    def project(self, keep: Iterable[str | Variable]) -> "DenseFactor":
        """``c ⇓ keep`` — plus-ufunc reduction over the eliminated axes.

        Names in ``keep`` that are not in scope are ignored, mirroring
        :meth:`SoftConstraint.project`.
        """
        keep_names = {
            item.name if isinstance(item, Variable) else item
            for item in keep
        }
        axes = tuple(
            i
            for i, var in enumerate(self.scope)
            if var.name not in keep_names
        )
        if not axes:
            return self
        kept = tuple(
            var for var in self.scope if var.name in keep_names
        )
        array = self.lowering.plus.reduce(self.array, axis=axes)
        return DenseFactor(self.lowering, kept, array)

    def hide(self, *names: str | Variable) -> "DenseFactor":
        """``∃x.c`` — project the named variables *out*."""
        hidden = {
            item.name if isinstance(item, Variable) else item
            for item in names
        }
        return self.project(
            [var for var in self.scope if var.name not in hidden]
        )

    def consistency(self) -> Any:
        """``c ⇓∅`` — plus-reduce every axis down to one scalar."""
        array = self.array
        if array.ndim:
            array = self.lowering.plus.reduce(
                array, axis=tuple(range(array.ndim))
            )
        return self.lowering.unlift(array[()])

    def value(self, assignment: dict) -> Any:
        """Point lookup (used by tests; solvers index the array directly)."""
        idx = tuple(
            var.domain.index(assignment[var.name]) for var in self.scope
        )
        return self.lowering.unlift(self.array[idx])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DenseFactor(scope={self.support!r}, shape={self.array.shape}, "
            f"semiring={self.semiring.name})"
        )


def combine_factors(factors: Sequence[DenseFactor]) -> DenseFactor:
    """``⊗`` over a non-empty sequence, folded pairwise left-to-right —
    the same association order as
    :func:`repro.constraints.operations.combine`, so non-idempotent
    ``×`` (Weighted's float add) rounds identically on both backends."""
    if not factors:
        raise KernelError("combine_factors needs at least one factor")
    combined = factors[0]
    for factor in factors[1:]:
        combined = combined.combine(factor)
    return combined


def best_over_variable(
    constraint: SoftConstraint, pending: Variable, lowering: Lowering
) -> TableConstraint:
    """``c ⇓ (scope ∖ {pending})`` as an O(1)-lookup table.

    The branch & bound lookahead needs, per partially assigned
    constraint, its best value over the single unassigned variable; one
    plus-ufunc reduction precomputes that for every context at once.
    """
    factor = DenseFactor.from_constraint(constraint, lowering)
    return factor.hide(pending.name).to_table()


def _iter_keys(scope: Tuple[Variable, ...]):
    """Row-major tuples over the scope's domains (last variable fastest) —
    the same order ``iter_assignments`` walks and ndarrays flatten to."""
    return itertools.product(*(var.domain for var in scope))
