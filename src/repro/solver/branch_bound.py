"""Depth-first branch & bound for totally ordered semirings.

Exploits ``×``-monotonicity (``a × b ≤S a``, the absorptive law): the
combined value of a completion can never beat the combination of the
constraints already fully instantiated, so that combination is a sound
upper bound and subtrees strictly worse than the incumbent are pruned.

Only valid when ``≤S`` is total (Boolean, Fuzzy, Probabilistic, Weighted);
for partial orders (Set-based, products) use exhaustive search or bucket
elimination.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..constraints.constraint import SoftConstraint
from ..constraints.variables import Variable
from ..telemetry import get_tracer
from .heuristics import OrderingFn, resolve_ordering
from .kernels import KernelError, best_over_variable, resolve_lowering
from .problem import (
    SCSP,
    ProblemError,
    SolverResult,
    SolverStats,
    record_solve_metrics,
)


def solve_branch_bound(
    problem: SCSP,
    ordering: str | OrderingFn = "max-degree",
    lookahead: bool = True,
    backend: str = "auto",
) -> SolverResult:
    """Find the blevel and all optimal ``con``-assignments by DFS + pruning.

    ``lookahead`` additionally bounds constraints with exactly one
    unassigned variable by their best value over that variable's domain,
    tightening the bound at the cost of extra evaluations (ablated in the
    E12 benchmark).  With the dense ``backend`` (the default whenever the
    semiring lowers, see :mod:`repro.solver.kernels`) those best-over-
    domain values are precomputed once per constraint by a plus-ufunc
    reduction instead of being re-evaluated in the inner search loop; the
    search itself, its statistics and its results are unchanged.
    """
    semiring = problem.semiring
    if not semiring.is_total_order():
        raise ProblemError(
            f"branch & bound needs a total order; {semiring.name} is partial"
        )
    try:
        lowering = resolve_lowering(semiring, backend)
    except KernelError as exc:
        raise ProblemError(str(exc)) from None
    started = time.perf_counter()

    order = resolve_ordering(ordering)(problem.variables, problem.constraints)
    stats = SolverStats()

    # For each prefix depth, which constraints become fully assigned when
    # the variable at that depth gets a value (and were not before).
    position = {var.name: depth for depth, var in enumerate(order)}
    activation: List[List[SoftConstraint]] = [[] for _ in order]
    one_left: List[List[tuple[SoftConstraint, Variable]]] = [
        [] for _ in order
    ]
    for constraint in problem.constraints:
        depths = [position[name] for name in constraint.support]
        last = max(depths) if depths else -1
        if last >= 0:
            activation[last].append(constraint)
            second_last = sorted(depths)[-2] if len(depths) > 1 else -1
            # After depth ``second_last`` the constraint has exactly
            # one unassigned variable: the one at depth ``last``.
            if second_last < last:
                pending_var = order[last]
                if second_last >= 0:
                    one_left[second_last].append(
                        (constraint, pending_var)
                    )

    empty_scope = [c for c in problem.constraints if not c.scope]
    base_value = semiring.prod(c.value({}) for c in empty_scope) if (
        empty_scope
    ) else semiring.one

    incumbent: Any = semiring.zero
    witnesses: List[Dict[str, Any]] = []
    assignment: Dict[str, Any] = {}
    con_set = set(problem.con)

    # Dense fast path: the best value of a one-variable-left constraint
    # over that variable's domain, for *every* context at once, is one
    # plus-ufunc reduction of its dense factor — an O(1) table lookup in
    # the search loop instead of a |domain|-wide re-evaluation.
    best_tables: Optional[List[List[Any]]] = None
    if lookahead and lowering is not None:
        best_tables = [
            [
                best_over_variable(constraint, pending, lowering)
                for constraint, pending in entries
            ]
            for entries in one_left
        ]

    def lookahead_bound(depth: int) -> Any:
        bound = semiring.one
        if best_tables is not None:
            for best_table in best_tables[depth]:
                bound = semiring.times(
                    bound, best_table.value(assignment)
                )
            return bound
        for constraint, pending in one_left[depth]:
            best = semiring.zero
            for value in pending.domain:
                assignment[pending.name] = value
                best = semiring.plus(best, constraint.value(assignment))
            del assignment[pending.name]
            bound = semiring.times(bound, best)
        return bound

    def descend(depth: int, accumulated: Any) -> None:
        nonlocal incumbent, witnesses
        if depth == len(order):
            stats.leaves_evaluated += 1
            if semiring.gt(accumulated, incumbent):
                incumbent = accumulated
                stats.incumbent_improvements += 1
                witnesses = [dict(assignment)]
            elif (
                semiring.equiv(accumulated, incumbent)
                and incumbent != semiring.zero
            ):
                # `equiv` (not raw `==`) so float semirings recognize ties
                # that differ by an ulp after long ⊗ chains.
                witnesses.append(dict(assignment))
            return
        var = order[depth]
        for value in var.domain:
            stats.nodes_expanded += 1
            assignment[var.name] = value
            bound = accumulated
            for constraint in activation[depth]:
                bound = semiring.times(bound, constraint.value(assignment))
            node_value = bound
            if lookahead and semiring.geq(bound, incumbent):
                bound = semiring.times(bound, lookahead_bound(depth))
            if semiring.lt(bound, incumbent):
                stats.prunes += 1
            else:
                descend(depth + 1, node_value)
            del assignment[var.name]

    with get_tracer().span(
        "solver.solve", method="branch-bound", problem=problem.name
    ):
        descend(0, base_value)
    record_solve_metrics(
        "branch-bound",
        stats,
        time.perf_counter() - started,
        backend="dict" if lowering is None else "dense",
    )

    blevel = incumbent
    seen: set = set()
    projected: List[Dict[str, Any]] = []
    for witness in witnesses:
        key = tuple(
            sorted((k, v) for k, v in witness.items() if k in con_set)
        )
        if key not in seen:
            seen.add(key)
            projected.append(dict(key))
    return SolverResult(
        problem=problem,
        blevel=blevel,
        frontier=[blevel],
        optima=[projected],
        method="branch-bound",
        stats=stats,
    )
