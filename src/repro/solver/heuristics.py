"""Variable-ordering heuristics shared by branch & bound and elimination.

Ordering drives both the size of bucket-elimination intermediates and the
amount of pruning branch & bound achieves; the ablation benchmark (E12 in
DESIGN.md) compares these policies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..constraints.constraint import SoftConstraint
from ..constraints.variables import Variable

OrderingFn = Callable[
    [Sequence[Variable], Sequence[SoftConstraint]], List[Variable]
]


def given_order(
    variables: Sequence[Variable], constraints: Sequence[SoftConstraint]
) -> List[Variable]:
    """Keep the declaration order."""
    return list(variables)


def min_domain_order(
    variables: Sequence[Variable], constraints: Sequence[SoftConstraint]
) -> List[Variable]:
    """Smallest domain first — classic fail-first for search."""
    return sorted(variables, key=lambda var: (var.size, var.name))


def _interaction_graph(
    variables: Sequence[Variable], constraints: Sequence[SoftConstraint]
) -> Dict[str, set]:
    """Primal graph: variables adjacent when they share a constraint."""
    adjacency: Dict[str, set] = {var.name: set() for var in variables}
    for constraint in constraints:
        names = constraint.support
        for name in names:
            adjacency.setdefault(name, set()).update(
                other for other in names if other != name
            )
    return adjacency


def min_degree_order(
    variables: Sequence[Variable], constraints: Sequence[SoftConstraint]
) -> List[Variable]:
    """Greedy min-degree elimination order on the primal graph.

    Repeatedly removes the variable with the fewest *remaining* neighbours
    and connects its neighbourhood (the standard fill-in simulation) —
    a good proxy for small bucket-elimination intermediates.
    """
    adjacency = _interaction_graph(variables, constraints)
    by_name = {var.name: var for var in variables}
    remaining = set(adjacency)
    order: List[Variable] = []
    while remaining:
        name = min(
            remaining,
            key=lambda n: (len(adjacency[n] & remaining), n),
        )
        neighbours = adjacency[name] & remaining
        for a in neighbours:
            adjacency[a].update(neighbours - {a})
        remaining.discard(name)
        order.append(by_name[name])
    return order


def max_degree_order(
    variables: Sequence[Variable], constraints: Sequence[SoftConstraint]
) -> List[Variable]:
    """Most-constrained variable first — a branching heuristic: assigning
    high-degree variables early makes more constraints fully instantiated
    sooner, tightening the branch & bound bound."""
    adjacency = _interaction_graph(variables, constraints)
    return sorted(
        variables,
        key=lambda var: (-len(adjacency[var.name]), var.size, var.name),
    )


ORDERINGS: Dict[str, OrderingFn] = {
    "given": given_order,
    "min-domain": min_domain_order,
    "min-degree": min_degree_order,
    "max-degree": max_degree_order,
}


def resolve_ordering(name_or_fn: str | OrderingFn) -> OrderingFn:
    """Look up a named ordering or pass a custom callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return ORDERINGS[name_or_fn]
    except KeyError:
        known = ", ".join(sorted(ORDERINGS))
        raise ValueError(
            f"unknown ordering {name_or_fn!r}; known: {known}"
        ) from None
