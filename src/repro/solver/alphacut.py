"""α-cuts: slicing a soft problem into crisp ones.

For a totally ordered semiring, the α-cut of a soft constraint keeps the
tuples whose preference is at least α.  This connects the soft framework
back to crisp CSPs: ``P`` is α-consistent at the best α for which the cut
problem stays satisfiable, and thresholds like the paper's checked
transitions ("at least a solution as good as a1") are cut queries.
"""

from __future__ import annotations

from typing import Any

from ..constraints.constraint import SoftConstraint
from ..constraints.table import TableConstraint, to_table
from ..semirings.boolean import BooleanSemiring
from .problem import SCSP, ProblemError

_BOOLEAN = BooleanSemiring()


def alpha_cut(constraint: SoftConstraint, alpha: Any) -> TableConstraint:
    """The crisp constraint keeping tuples with value ``≥S alpha``."""
    semiring = constraint.semiring
    if not semiring.is_total_order():
        raise ProblemError(
            f"alpha-cut needs a totally ordered semiring, got {semiring.name}"
        )
    table = to_table(constraint)
    cut = {
        key: semiring.geq(value, alpha) for key, value in table.items()
    }
    return TableConstraint(
        _BOOLEAN, table.scope, cut, default=False, name=f"cut@{alpha!r}"
    )


def alpha_cut_problem(problem: SCSP, alpha: Any) -> SCSP:
    """Cut every constraint of ``problem`` at ``alpha``.

    Note the subtlety: satisfiability of the cut problem is *necessary*
    but in general not sufficient for α-consistency when ``×`` is not
    idempotent (two tuples individually ≥ α can combine below α); cutting
    the *combined* constraint (:func:`alpha_cut` on ``problem.combined()``)
    is always exact.
    """
    cut_constraints = [alpha_cut(c, alpha) for c in problem.constraints]
    return SCSP(cut_constraints, con=problem.con, name=f"{problem.name}@cut")


def satisfiable_at(problem: SCSP, alpha: Any) -> bool:
    """Whether some complete assignment of ``⊗C`` reaches ``≥S alpha``.

    Exact for every semiring (cuts the combined constraint).
    """
    semiring = problem.semiring
    return semiring.geq(problem.blevel(), alpha)


def consistency_level_among(problem: SCSP, candidates) -> Any:
    """Best ``alpha`` among ``candidates`` at which ``problem`` is
    satisfiable — a bisection-style helper for threshold negotiation."""
    semiring = problem.semiring
    blevel = problem.blevel()
    best = semiring.zero
    for alpha in candidates:
        if semiring.geq(blevel, alpha) and semiring.geq(alpha, best):
            best = alpha
    return best
